# Convenience targets for the Altocumulus reproduction.

PYTHON ?= python

.PHONY: install test bench bench-gate artifacts examples smoke sweep-fast rack-fast chaos-fast datacenter-fast adaptive-fast fanout-fast contention-fast clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

## Run the perf microbenchmarks and record the results in a
## timestamped BENCH_<stamp>.json (pytest-benchmark JSON format; see
## docs/performance.md for how to read and compare them).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_$$(date -u +%Y%m%dT%H%M%SZ).json

## Regression gate: re-run the two gated microbenchmarks and fail if
## stats.min regressed >2% against BENCH_BASELINE (a same-machine
## pytest-benchmark JSON; defaults to the committed baseline).
BENCH_BASELINE ?= BENCH_20260809T004455Z.json
BENCH_GATED = test_event_heap_throughput,test_full_system_simulation_rate,test_bench_sharded_datacenter,test_bench_fanout_jobs
bench-gate:
	$(PYTHON) -m pytest benchmarks/test_engine_perf.py benchmarks/test_sharded.py \
		benchmarks/test_fanout.py \
		--benchmark-only -q \
		-k "event_heap_throughput or full_system_simulation_rate or bench_sharded_datacenter or bench_fanout_jobs" \
		--benchmark-json=BENCH_gate_candidate.json
	$(PYTHON) tools/compare_bench.py $(BENCH_BASELINE) \
		BENCH_gate_candidate.json --benchmarks $(BENCH_GATED)

## Full-scale regeneration of every paper artifact (30-45 min).
artifacts:
	$(PYTHON) -m repro.experiments.cli all --out results/

## Quick regeneration at reduced scale (~5 min).
smoke:
	$(PYTHON) -m repro.experiments.cli all --scale 0.1 --out results/

## Reduced-scale regeneration using every CPU and the result cache:
## a second invocation replays cached sweep points from disk.
sweep-fast:
	$(PYTHON) -m repro.experiments.cli all --scale 0.2 --jobs 0 --out results/

## Reduced-scale rack-tier steering sweep (the fig_rack experiment),
## fanned out over every CPU with cached sweep points.
rack-fast:
	$(PYTHON) -m repro.experiments.cli rack --scale 0.2 --jobs 0 --out results/

## Reduced-scale chaos study (the fig_chaos experiment): a mid-run
## server crash under three steering policies, every request driven
## through the retrying client.  See docs/faults.md.
chaos-fast:
	$(PYTHON) -m repro.experiments.cli chaos --scale 0.2 --out results/

## Reduced-scale datacenter-tier sweep (the fig_datacenter experiment):
## inter-rack steering policy x multi-tenant skew across a 4-rack
## spine-leaf fabric, fanned out over every CPU with cached points.
datacenter-fast:
	$(PYTHON) -m repro.experiments.cli datacenter --scale 0.2 --jobs 0 --out results/

## Reduced-scale adaptive control-plane study (the fig_adaptive
## experiment): every static steering policy vs the hysteresis and
## bandit controllers across three chaos scenarios and a drifting
## multi-tenant load.  Controllers force serial uncached execution.
adaptive-fast:
	$(PYTHON) -m repro.experiments.cli adaptive --scale 0.2 --jobs 1 --no-cache --out results/

## Reduced-scale job-model study (the fig_fanout experiment):
## scatter-gather p99 vs fan-out k across sibling-routing policies,
## plus gang admission waits across the zero-queueing boundary.
fanout-fast:
	$(PYTHON) -m repro.experiments.cli fanout --scale 0.2 --jobs 0 --out results/

## Reduced-scale data-layer contention study (the fig_contention
## experiment): ownership discipline x hot-key skew x migration
## threshold, showing where EREW+migration loses to CREW+multiversion.
contention-fast:
	$(PYTHON) -m repro.experiments.cli contention --scale 0.2 --jobs 0 --out results/

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
