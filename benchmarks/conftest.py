"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's figures/tables through the
experiment registry, times it with pytest-benchmark (single round: these
are minutes-scale simulations, not microbenchmarks), saves the rendered
table under ``results/`` and asserts the figure's headline qualitative
property.

Scale factors are tuned so the full suite finishes in minutes; run the
``altocumulus-exp`` CLI at scale 1.0 for the fully-sized reproduction.
"""

import os

import pytest

from repro.experiments.registry import get_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment under the benchmark timer and persist it."""

    def runner(exp_id, scale, seed=1):
        result = benchmark.pedantic(
            lambda: get_experiment(exp_id)(scale=scale, seed=seed),
            rounds=1,
            iterations=1,
        )
        result.save(RESULTS_DIR)
        return result

    return runner
