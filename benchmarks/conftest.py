"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's figures/tables through the
experiment registry, times it with pytest-benchmark (single round: these
are minutes-scale simulations, not microbenchmarks), saves the rendered
table under ``results/`` and asserts the figure's headline qualitative
property.

Scale factors are tuned so the full suite finishes in minutes; run the
``altocumulus-exp`` CLI at scale 1.0 for the fully-sized reproduction.

Environment knobs (defaults preserve serial, uncached timing runs):

* ``ALTOCUMULUS_JOBS`` -- worker processes per sweep (``0`` = one per
  CPU).  Parallel results are bit-identical to serial.
* ``ALTOCUMULUS_CACHE`` -- set to ``1`` to reuse cached sweep points
  across invocations (with ``ALTOCUMULUS_CACHE_DIR`` choosing where).
  Off by default: a benchmark that replays cached results measures the
  cache, not the simulator.
"""

import os

import pytest

from repro.experiments.registry import get_experiment
from repro.runner import overrides

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

_TRUTHY = {"1", "true", "yes", "on"}


def _runner_knobs():
    jobs = int(os.environ.get("ALTOCUMULUS_JOBS", "1"))
    use_cache = os.environ.get("ALTOCUMULUS_CACHE", "").lower() in _TRUTHY
    return {
        "jobs": jobs,
        "use_cache": use_cache,
        "cache_dir": os.environ.get("ALTOCUMULUS_CACHE_DIR"),
    }


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment under the benchmark timer and persist it."""

    def runner(exp_id, scale, seed=1):
        with overrides(**_runner_knobs()):
            result = benchmark.pedantic(
                lambda: get_experiment(exp_id)(scale=scale, seed=seed),
                rounds=1,
                iterations=1,
            )
        result.save(RESULTS_DIR)
        return result

    return runner
