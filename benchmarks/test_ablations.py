"""Ablation benches: isolate each Altocumulus design choice."""


def test_ablations(run_experiment):
    result = run_experiment("ablations", scale=0.25)
    rows = {(r[0], r[1]): r for r in result.rows}

    # Threshold trade-off (Sec. IV): the conservative k*L+1 bound
    # migrates the least but misses violations that the lower
    # thresholds (model, aggressive) catch.
    assert (rows[("threshold", "upper_bound")][4]
            < rows[("threshold", "model")][4])
    assert (rows[("threshold", "upper_bound")][4]
            < rows[("threshold", "aggressive_fixed")][4])
    assert (rows[("threshold", "upper_bound")][3]
            >= rows[("threshold", "model")][3])

    # At-most-once (Sec. V-B opt. 4): unbounded re-migration adds hops
    # without materially improving the tail.
    once = rows[("remigration", "at_most_once")]
    unbounded = rows[("remigration", "unbounded")]
    assert unbounded[5] >= once[5]
    assert once[2] <= unbounded[2] * 1.5 + 1.0

    # Messaging: hardware registers never lose to shared-cache software
    # messaging by more than noise (same decisions, cheaper transport).
    assert (rows[("messaging", "hw_registers")][2]
            <= rows[("messaging", "sw_caches")][2] * 1.5 + 1.0)

    # Local JBSQ depth: every bound conserves and completes the run.
    for bound in (1, 2, 4):
        assert rows[("worker_bound", f"jbsq({bound})")][2] > 0

    # NoC fidelity: scheduling traffic is light enough that modelling
    # per-link contention changes nothing material -- verifying the
    # paper's lightly-loaded-NoC assumption [58].
    ideal = rows[("noc", "ideal_links")]
    contended = rows[("noc", "contended_links")]
    assert contended[2] <= ideal[2] * 1.2 + 0.5  # p99 within 20%
