"""Performance benchmarks for the simulation substrate itself.

These are true microbenchmarks (multiple rounds): they track the event
throughput of the DES kernel and the end-to-end simulation rate of a
loaded system, so regressions in the hot paths show up in the benchmark
history rather than as mysteriously slow experiment runs.
"""

from repro.api import quick_run
from repro.sim.engine import Simulator


def test_event_heap_throughput(benchmark):
    """Raw schedule/fire cost of the event kernel."""

    def spin():
        sim = Simulator()
        count = 20_000

        def chain(remaining):
            if remaining:
                sim.schedule(1.0, chain, remaining - 1)

        chain(count)
        sim.run()
        return sim.events_processed

    events = benchmark(spin)
    assert events == 20_000


def test_full_system_simulation_rate(benchmark):
    """Requests simulated per wall-second through the busiest system
    (Altocumulus with migrations active)."""

    def run():
        return quick_run(system="altocumulus", n_cores=32, rate_rps=20e6,
                         mean_service_ns=1000, n_requests=5_000, seed=2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.latency.count > 0


# ----------------------------------------------------------------------
# Microbenchmarks for the individually optimized fast paths.  Each one
# isolates a hot path reworked by the kernel overhaul (free-list events,
# timer reuse, lazy-cancel compaction, memoized threshold math, ndarray
# latency accumulation, batched RNG prefetch, single-sort planning) so a
# regression in any of them is attributable from the benchmark history
# alone.
# ----------------------------------------------------------------------


def test_timer_reuse_throughput(benchmark):
    """Re-arming one Event via ``schedule_timer`` (the periodic-tick
    path) instead of allocating a fresh event per fire."""

    def spin():
        sim = Simulator()
        state = {"event": None, "remaining": 20_000}

        def tick():
            if state["remaining"]:
                state["remaining"] -= 1
                state["event"] = sim.schedule_timer(1.0, tick, event=state["event"])

        tick()
        sim.run()
        return sim.events_processed

    events = benchmark(spin)
    assert events == 20_000


def test_cancel_heavy_throughput(benchmark):
    """Schedule/cancel churn: most events die before firing, exercising
    lazy cancellation and dead-entry compaction."""

    def spin():
        sim = Simulator()
        fired = [0]

        def noop():
            fired[0] += 1

        for round_start in range(0, 20_000, 20):
            events = [sim.schedule(float(round_start + i), noop) for i in range(20)]
            for ev in events[1:]:  # keep 1 in 20
                sim.cancel(ev)
        sim.run()
        return fired[0]

    fired = benchmark(spin)
    assert fired == 1_000


def test_threshold_math_rate(benchmark):
    """Erlang-C / queue-length math under the tick loop's access pattern
    (a small working set of recurring (k, load) keys)."""
    from repro.core.prediction import erlang_c, expected_queue_length

    loads = [0.5 + 7.0 * (i % 97) / 96.0 for i in range(200)]

    def spin():
        acc = 0.0
        for _ in range(25):
            for load in loads:
                acc += erlang_c(8, load) + expected_queue_length(8, load)
        return acc

    result = benchmark(spin)
    assert result > 0


def test_latency_summary_rate(benchmark):
    """Percentile summary over a large completed-request population
    (ndarray accumulation instead of per-request Python lists)."""
    from repro.analysis.metrics import summarize_latencies
    from repro.workload.request import Request

    requests = [
        Request(req_id=i, arrival=float(i), service_time=100.0)
        for i in range(50_000)
    ]
    for r in requests:
        r.finished = r.arrival + 100.0 + (r.req_id % 977)

    summary = benchmark(summarize_latencies, requests)
    assert summary.count == 50_000


def test_workload_generation_rate(benchmark):
    """Open-loop generator throughput (batched RNG prefetch path)."""
    from repro.sim.rng import RandomStreams
    from repro.workload.arrivals import PoissonArrivals
    from repro.workload.generator import LoadGenerator
    from repro.workload.service import Exponential

    def spin():
        sim = Simulator()
        gen = LoadGenerator(
            sim=sim,
            streams=RandomStreams(99),
            arrivals=PoissonArrivals(20e6),
            service=Exponential(1000.0),
            sink=lambda req: None,
            n_requests=20_000,
        )
        gen.start()
        sim.run()
        return gen.emitted

    emitted = benchmark(spin)
    assert emitted == 20_000


def test_migration_plan_rate(benchmark):
    """Per-tick pattern classification + destination planning (single
    ranking sort shared by both)."""
    from repro.core.patterns import migration_plan

    vectors = [
        [(i * 7 + j * 13) % 40 for j in range(8)] for i in range(100)
    ]

    def spin():
        total = 0
        for q in vectors:
            for self_index in range(8):
                total += migration_plan(q, self_index, bulk=16, concurrency=2,
                                        threshold=24.0).migrates
        return total

    migrates = benchmark(spin)
    assert migrates >= 0
