"""Performance benchmarks for the simulation substrate itself.

These are true microbenchmarks (multiple rounds): they track the event
throughput of the DES kernel and the end-to-end simulation rate of a
loaded system, so regressions in the hot paths show up in the benchmark
history rather than as mysteriously slow experiment runs.
"""

from repro.api import quick_run
from repro.sim.engine import Simulator


def test_event_heap_throughput(benchmark):
    """Raw schedule/fire cost of the event kernel."""

    def spin():
        sim = Simulator()
        count = 20_000

        def chain(remaining):
            if remaining:
                sim.schedule(1.0, chain, remaining - 1)

        chain(count)
        sim.run()
        return sim.events_processed

    events = benchmark(spin)
    assert events == 20_000


def test_full_system_simulation_rate(benchmark):
    """Requests simulated per wall-second through the busiest system
    (Altocumulus with migrations active)."""

    def run():
        return quick_run(system="altocumulus", n_cores=32, rate_rps=20e6,
                         mean_service_ns=1000, n_requests=5_000, seed=2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.latency.count > 0
