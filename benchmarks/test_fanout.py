"""Job-model benchmarks: the scatter-gather path vs the flat path.

Three entries over the same rack shape (4 servers x 8 cores,
shortest-wait steering, exponential 1 us service at 65% sub-request
load), each offering the *same number of sub-requests* so their
``stats.min`` values are directly comparable in a committed
``BENCH_*.json``:

* ``flat`` -- the plain request path, the baseline;
* ``trivial`` -- the same workload passed through ``jobs=`` with a
  1-wide shape.  Trivial shapes compile down to the flat path by
  contract (``result.jobs is None``, bit-identical requests), so this
  entry measures that the job seam costs nothing when unused -- the
  run is asserted identical to the flat baseline;
* the headline ``test_bench_fanout_jobs`` -- 4-wide scatter-gather
  jobs through the full machinery (pre-drawn degrees, the job tracker's
  terminal hooks, gather-on-last bookkeeping).  This entry is gated in
  ``make bench-gate``: its ``stats.min`` must stay within 2% of the
  committed baseline, which is what pins the job path's overhead
  budget against refactors.
"""

from __future__ import annotations

import pytest

from repro.api import run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.jobs import FixedDegree, JobShape
from repro.workload.service import Exponential

N_SERVERS = 4
CORES_PER_SERVER = 8
SERVICE_NS = 1000.0
LOAD_FRACTION = 0.65
#: Sub-requests offered per entry; the job entries shrink the job count
#: by the fan-out so every benchmark simulates the same request volume.
N_SUBREQUESTS = 20_000
FANOUT = 4
SEED = 3

SUB_RATE_RPS = (
    LOAD_FRACTION * N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
)


def _run(jobs=None, fanout=1):
    streams = RandomStreams(SEED)
    sim = Simulator()
    rack = build_rack(sim, streams, RackConfig(
        n_servers=N_SERVERS,
        cores_per_server=CORES_PER_SERVER,
        policy="shortest_wait",
    ))
    return run_workload(
        rack,
        sim,
        streams,
        PoissonArrivals(SUB_RATE_RPS / fanout),
        Exponential(SERVICE_NS),
        n_requests=N_SUBREQUESTS // fanout,
        jobs=jobs,
    )


@pytest.fixture(scope="module")
def flat_reference():
    """One untimed flat run; the identity oracle for the trivial entry."""
    result = _run()
    return (result.latency.p99, result.throughput_rps, result.utilization,
            result.dropped)


def _assert_identical(result, reference):
    assert (result.latency.p99, result.throughput_rps, result.utilization,
            result.dropped) == reference


def test_bench_fanout_flat(benchmark, flat_reference):
    """The flat request path: the baseline the job seam is measured
    against."""
    result = benchmark.pedantic(_run, rounds=2, iterations=1)
    _assert_identical(result, flat_reference)


def test_bench_fanout_trivial_overhead(benchmark, flat_reference):
    """A 1-wide job shape compiles down to the flat path: same requests
    bit-for-bit, no job machinery in the event loop."""
    result = benchmark.pedantic(
        lambda: _run(jobs=JobShape(fanout=FixedDegree(1))),
        rounds=2, iterations=1,
    )
    assert result.jobs is None
    _assert_identical(result, flat_reference)


def test_bench_fanout_jobs(benchmark):
    """The headline (gated): 4-wide scatter-gather jobs, same offered
    sub-request volume as the flat baseline."""
    result = benchmark.pedantic(
        lambda: _run(
            jobs=JobShape(fanout=FixedDegree(FANOUT),
                          sibling_connections="shared"),
            fanout=FANOUT,
        ),
        rounds=2, iterations=1,
    )
    assert result.jobs is not None
    assert result.jobs.count == N_SUBREQUESTS // FANOUT
    assert result.jobs.subrequests == N_SUBREQUESTS
    benchmark.extra_info["jobs_completed"] = result.jobs.completed
    benchmark.extra_info["jobs_dropped"] = result.jobs.dropped
    benchmark.extra_info["job_p99_us"] = result.jobs.latency.p99 / 1000.0
