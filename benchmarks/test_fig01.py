"""Regenerate Fig. 1: on-CPU latency split (processing vs scheduling)."""


def test_fig01_stack_latency(run_experiment):
    result = run_experiment("fig01", scale=0.3)
    by_stack = {row[0]: row for row in result.rows}
    # Total on-CPU latency shrinks dramatically across stack generations.
    assert by_stack["tcpip"][3] > 10 * by_stack["erpc"][3]
    assert by_stack["erpc"][3] > 5 * by_stack["nanorpc"][3]
    # ...while the *scheduling share* of that latency grows: the paper's
    # thesis that the bottleneck moved from processing to scheduling.
    shares = [by_stack[s][4] for s in ("tcpip", "erpc", "nanorpc")]
    assert shares == sorted(shares)
    assert shares[-1] > 0.4
