"""Regenerate Fig. 3: throughput cost of scheduling overhead."""


def test_fig03_scheduling_overhead(run_experiment):
    result = run_experiment("fig03", scale=0.2)
    at_slo = result.series["throughput_at_slo"]
    # Sustainable load falls monotonically with overhead...
    overheads = sorted(at_slo)
    loads = [at_slo[o] for o in overheads]
    assert all(a >= b for a, b in zip(loads, loads[1:]))
    # ...and 5 ns vs 360 ns is a multi-x difference (paper: ~3x).
    assert at_slo[5.0] >= 1.8 * at_slo[360.0]
