"""Regenerate Fig. 7: SLO-violation prediction analysis."""

import math


def test_fig07_prediction(run_experiment):
    result = run_experiment("fig07", scale=0.3)
    t_lower = result.series["t_lower"]
    t_upper = 641.0  # 64 * 10 + 1

    # (1) Violations exist and begin at moderate occupancy -- well below
    # the naive k*L+1 threshold -- for the dispersive distribution.
    assert math.isfinite(t_lower["bimodal"])
    assert t_lower["bimodal"] < 0.8 * t_upper

    # (2) Violation ratio rises with queue length: for each distribution
    # the deepest populated bin violates more than the shallowest.
    by_dist = {}
    for dist, _load, lo, _hi, _n, ratio in result.rows:
        by_dist.setdefault(dist, []).append((lo, ratio))
    for dist, bins in by_dist.items():
        bins.sort()
        assert bins[-1][1] >= bins[0][1]
        assert bins[-1][1] > 0.5  # deep queues mostly violate

    # (3) The Eq. 2 calibration ran and reports a finite fit.
    assert "Eq.2 fit" in result.notes
