"""Regenerate Fig. 9: temporal load imbalance across NetRX queues."""


def test_fig09_imbalance(run_experiment):
    result = run_experiment("fig09", scale=0.3)
    spreads = {row[0]: row[5] for row in result.rows}
    # Every load-oblivious policy leaves a visible queue-length spread...
    assert all(spread > 0 for spread in spreads.values())
    # ...and flow-hash steering is by far the most skewed (hot flows
    # pin to one queue), as in the paper's 'Connection' bars.
    assert spreads["connection"] > spreads["round_robin"]
    assert spreads["connection"] > spreads["random"]
