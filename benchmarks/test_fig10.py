"""Regenerate Fig. 10: the seven-system latency-throughput comparison."""


def test_fig10_comparison(run_experiment):
    result = run_experiment("fig10", scale=0.15)
    at_slo = result.series["throughput_at_slo_mrps"]

    # The paper's qualitative ordering under the dispersive bimodal mix
    # with SLO below the long service time:
    # IX (d-FCFS, kernel stack) never meets the SLO...
    assert at_slo["ix"] <= at_slo["zygos"]
    # ...work stealing helps but cannot preempt...
    assert at_slo["zygos"] <= at_slo["shinjuku"] + 0.5
    # ...and the hardware schedulers sit at the top.
    top = max(at_slo.values())
    assert at_slo["nanopu"] >= 0.8 * top
    assert at_slo["nebula"] >= 0.8 * top
    # Altocumulus lands in the hardware class (within its 12.5% manager
    # sacrifice), far above the software baselines.
    assert at_slo["ac_rss"] >= 0.6 * top
    if at_slo["zygos"] > 0:
        assert at_slo["ac_rss"] >= at_slo["zygos"]
