"""Regenerate Fig. 11: migration Bulk and Period sensitivity."""


def test_fig11_parameters(run_experiment):
    result = run_experiment("fig11", scale=0.2)
    rows = {(row[0], row[1]): row for row in result.rows}
    baseline_violations = rows[("no_migration", "-")][2]
    baseline_p99 = rows[("no_migration", "-")][3]

    # Migration slashes SLO violations vs the no-migration baseline at
    # every Bulk setting (Fig. 11a's message).
    for bulk in (8, 16, 24, 32, 40):
        row = rows[("bulk_sweep", bulk)]
        assert row[2] < baseline_violations
        assert row[3] <= baseline_p99 + 1.0

    # Period is forgiving across 10-400 ns; only the laziest setting may
    # lose ground (Fig. 11b): no short period does worse than 1000 ns
    # by more than noise.
    fast = min(rows[("period_sweep", p)][2] for p in (10.0, 40.0, 100.0, 200.0))
    lazy = rows[("period_sweep", 1000.0)][2]
    assert fast <= lazy + max(3, int(0.2 * baseline_violations))

    # More migrated descriptors with shorter periods (more decision
    # opportunities).
    assert rows[("period_sweep", 10.0)][4] >= rows[("period_sweep", 1000.0)][4]
