"""Regenerate Fig. 12: group sizing and migration effectiveness."""


def test_fig12_effectiveness(run_experiment):
    result = run_experiment("fig12", scale=0.2)
    group_rows = [r for r in result.rows if r[0] == "group_size"]
    eff_rows = {r[1]: r for r in result.rows if r[0] == "effectiveness"}

    # (a) For AC_rss, one giant group collapses on the manager's
    # software-dispatch ceiling, and the paper's 4x16 beats both
    # extremes -- the reason the paper picks 16-core groups.
    rss = {r[2]: r[3] for r in group_rows if r[1] == "ac_rss"}
    assert rss["1x64"] < rss["4x16"]
    assert rss["8x8"] <= rss["4x16"] + 1.0

    # (b) Every period migrates a nonzero population and the replay is
    # classified into the four-way split.
    for row in eff_rows.values():
        migrated = row[2]
        assert migrated > 0
        assert row[3] + row[4] + row[5] + row[6] == migrated

    # (c) False (harmful) migrations are a small sliver of the migrated
    # population at every period (the paper's Fig. 12c shows up to a few
    # thousand of ~100K at non-optimal periods, i.e. low single digits
    # percent; 53 of 161K at the tuned point).
    for row in eff_rows.values():
        assert row[6] <= 0.03 * row[2] + 2
    assert min(row[6] for row in eff_rows.values()) <= 30

    # Lazy migration (1000 ns) strands deep-queued requests: its
    # ineffective-without-benefit share exceeds the eager settings'.
    assert eff_rows["period=1000ns"][5] >= eff_rows["period=40ns"][5]
