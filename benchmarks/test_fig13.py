"""Regenerate Fig. 13: MICA scalability, case studies, SLO sensitivity."""


def test_fig13_scalability(run_experiment):
    result = run_experiment("fig13", scale=0.12)
    panel_a = [r for r in result.rows if r[0] == "a"]
    panel_b = {r[3]: r[4] for r in result.rows if r[0] == "b"}
    panel_c = [r for r in result.rows if r[0] == "c"]

    # (a) Under real-world traffic, the tuned AC_int scales with cores
    # while the RSS baseline cannot adapt and falls away (the paper's
    # 2.8-7.4x claim, in our simulator's units).
    def value(pattern, cores, system):
        for row in panel_a:
            if row[1] == pattern and row[2] == cores and row[3] == system:
                return row[4]
        raise KeyError((pattern, cores, system))

    assert value("real_world", 256, "ac_int_opt") > value("real_world", 256, "rss")
    assert value("real_world", 256, "ac_int_opt") >= value(
        "real_world", 64, "ac_int_opt"
    )
    # Synthetic panel: everyone scales, AC at least matches RSS.
    assert value("poisson_fixed850", 256, "ac_int_opt") >= value(
        "poisson_fixed850", 256, "rss"
    )

    # (b) Case studies: every AC configuration beats the RSS baseline.
    for name, mrps in panel_b.items():
        if name != "rss":
            assert mrps >= panel_b["rss"]

    # (c) SLO sensitivity: AC's prediction accuracy meets or beats the
    # naive static predictor at the strict 5A target, and converges to
    # ~1 at the relaxed targets.
    acc = {(row[1], row[3]): row[4] for row in panel_c}
    assert acc[("slo=5A", "ac_int_opt")] >= acc[("slo=5A", "rss")] - 0.05
    assert acc[("slo=20A", "ac_int_opt")] > 0.9
    assert acc[("slo=20A", "ac_rss_opt")] > 0.9
