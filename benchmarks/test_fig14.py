"""Regenerate Fig. 14: end-to-end MICA over nanoRPC (64 cores)."""


def test_fig14_endtoend(run_experiment):
    result = run_experiment("fig14", scale=0.2)
    at_slo = result.series["throughput_at_slo_mrps"]

    # The pre-runtime baseline (generic RSS-fed groups, no prediction or
    # migration) shows severe queueing at even moderate load -- the
    # "kernel scheduling" comparison of Sec. IX-D.
    assert at_slo["ac_rss_isa"] > at_slo["ac_rss_norun"]

    # Custom ISA instructions beat (or at worst match) the ~100-cycle
    # MSR syscall interface: MSR stretches the runtime's cadence.
    assert at_slo["ac_rss_isa"] >= at_slo["ac_rss_msr"]

    # The MSR configuration's violation ratios are no better than ISA's
    # anywhere on the curve (stability claim of Sec. IX-D).
    by_system = {}
    for name, mrps, p99, vr, achieved in result.rows:
        by_system.setdefault(name, []).append((mrps, vr))
    isa = dict(by_system["ac_rss_isa"])
    msr = dict(by_system["ac_rss_msr"])
    worse = sum(1 for rate in isa if msr[rate] >= isa[rate] - 0.01)
    assert worse >= len(isa) * 0.7
