"""Benchmarks for the MICA data-layer hot path.

The ownership layer (``repro.kvs.ownership``) gates admission only for
the wired CREW/CRCW/d-CREW modes; plain EREW workloads never construct
an ``OwnershipTable`` and must pay nothing for the feature.  The first
benchmark pins the legacy EREW request path so any accidental coupling
shows up in the benchmark history; the second tracks the gated CREW
admission path itself so its own cost stays attributable.
"""

from repro.kvs.dataset import build_dataset
from repro.kvs.handlers import MicaServiceModel, MicaWorkload
from repro.kvs.ownership import OwnershipTable
from repro.workload.request import Request

N_REQUESTS = 10_000


def _drive_workload(workload):
    requests = []
    for i in range(N_REQUESTS):
        req = Request(req_id=i, arrival=float(i), service_time=0.0)
        workload.request_factory(req)
        requests.append(req)
    for req in requests:
        workload.execute(req)
    return workload.executed


def test_erew_request_path_rate(benchmark):
    """Legacy EREW draw + execute loop (no ownership table in play)."""

    def spin():
        dataset = build_dataset(n_partitions=4, n_keys=400, seed=3)
        workload = MicaWorkload(dataset, MicaServiceModel.nanorpc(),
                                n_groups=4, scan_fraction=0.005, seed=5)
        return _drive_workload(workload)

    executed = benchmark(spin)
    assert executed == N_REQUESTS


def test_crew_admission_rate(benchmark):
    """Raw admit/abort cost of the gated admission path under a skewed
    key population (every request consults the ownership table)."""

    def spin():
        table = OwnershipTable(n_partitions=4, mode="crew")
        waits = 0.0
        for i in range(N_REQUESTS):
            decision = table.admit(
                partition=i % 4,
                write=(i % 10 == 0),
                now=float(i) * 40.0,
                hold_ns=100.0,
                group=i % 3,
            )
            waits += decision.wait_ns
        return table.admissions, waits

    admissions, waits = benchmark(spin)
    assert admissions == N_REQUESTS
    assert waits >= 0.0
