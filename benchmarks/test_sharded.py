"""Datacenter-tier benchmarks: the sharded parallel-in-time fabric.

Three configurations of the same fig_datacenter-shaped workload (skewed
tenant mix, shortest-wait inter-rack steering, 4 racks x 4 servers x 8
cores at 70% load):

* ``serial`` -- the plain engine, the baseline every mode is measured
  against;
* ``overhead`` -- one in-process shard behind the window coordinator:
  the honest cost of the window/replay machinery itself, with zero
  transport and zero parallelism;
* the headline ``test_bench_sharded_datacenter`` -- 4 shards in worker
  processes, the speedup configuration.

Every sharded run is asserted bit-identical to the serial baseline
(that is the mode's contract; a fast wrong answer must fail the bench).
``extra_info`` records the ``shard.*`` overhead instruments (windows,
cross-shard messages, barrier-stall wall time) plus the host's usable
CPU count, so a committed ``BENCH_*.json`` explains any gap to linear
scaling by itself: on an N-CPU host the expected floor is roughly
``serial_time / min(4, N) + barrier overhead``, and on a single-CPU
host (this repo's recorded trajectory) process shards cannot overlap at
all, so the 4-shard entry measures pure synchronization overhead.
"""

from __future__ import annotations

import os

import pytest

from repro.api import run_workload
from repro.datacenter.sharded import build_sharded_topology
from repro.experiments.fig_datacenter import (
    CORES_PER_SERVER,
    LOAD_FRACTION,
    N_RACKS,
    N_SERVERS,
    SERVICE_NS,
    datacenter_builder,
    tenant_pool,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.sharded import ShardedSimulator

N_REQUESTS = 40_000
SEED = 3
RATE_RPS = (
    LOAD_FRACTION * N_RACKS * N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
)


def _run(shards=None, mode="process"):
    from repro.workload.arrivals import PoissonArrivals
    from repro.workload.service import Exponential

    streams = RandomStreams(SEED)
    if shards is None:
        sim = Simulator()
        system = datacenter_builder(sim, streams, mix="skewed")
    else:
        sim = ShardedSimulator()
        config = datacenter_builder(
            Simulator(), RandomStreams(SEED), mix="skewed"
        ).config
        system = build_sharded_topology(sim, streams, config, shards,
                                        mode=mode)
    return run_workload(
        system,
        sim,
        streams,
        PoissonArrivals(RATE_RPS),
        Exponential(SERVICE_NS),
        n_requests=N_REQUESTS,
        connections=tenant_pool("skewed"),
    )


@pytest.fixture(scope="module")
def serial_reference():
    """One untimed serial run; the bit-identity oracle for every mode."""
    result = _run()
    return (result.latency.p99, result.throughput_rps, result.utilization,
            result.dropped)


def _assert_identical(result, reference):
    assert (result.latency.p99, result.throughput_rps, result.utilization,
            result.dropped) == reference


def _record_overheads(benchmark, result):
    metrics = result.metrics
    benchmark.extra_info["shard_windows"] = metrics["shard.windows"]
    benchmark.extra_info["shard_messages_out"] = metrics["shard.messages_out"]
    benchmark.extra_info["shard_messages_in"] = metrics["shard.messages_in"]
    benchmark.extra_info["barrier_stall_s"] = (
        metrics["shard.barrier_stall_ns"] / 1e9
    )
    benchmark.extra_info["usable_cpus"] = len(os.sched_getaffinity(0))


def test_bench_sharded_datacenter_serial(benchmark, serial_reference):
    """The serial fabric baseline (also the datacenter tier's first
    entry in the bench trajectory)."""
    result = benchmark.pedantic(_run, rounds=2, iterations=1)
    _assert_identical(result, serial_reference)


def test_bench_sharded_datacenter_overhead(benchmark, serial_reference):
    """Single in-process shard: the window machinery's own cost.  The
    acceptance budget is <=5% over serial; in practice the per-rack
    event heaps are smaller than the serial engine's global heap, so
    this configuration tends to come in *under* the baseline."""
    result = benchmark.pedantic(
        lambda: _run(shards=1, mode="inprocess"), rounds=2, iterations=1
    )
    _assert_identical(result, serial_reference)


def test_bench_sharded_datacenter(benchmark, serial_reference):
    """The headline: 4 process shards, one per rack group."""
    result = benchmark.pedantic(
        lambda: _run(shards=4, mode="process"), rounds=2, iterations=1
    )
    _assert_identical(result, serial_reference)
    _record_overheads(benchmark, result)
