"""Regenerate Table I: the design-space comparison."""

import importlib


def _resolve(path):
    """Import a dotted path that may end in a module attribute."""
    try:
        return importlib.import_module(path)
    except ImportError:
        module, attr = path.rsplit(".", 1)
        return getattr(importlib.import_module(module), attr)


def test_tab1_comparison(run_experiment):
    result = run_experiment("tab1", scale=1.0)
    systems = [row[0] for row in result.rows]
    assert systems == ["ZygOS", "IX", "Shinjuku", "eRSS", "nanoPU",
                       "RPCValet", "Nebula", "Altocumulus"]
    # Every claimed implementation module/attribute actually resolves.
    for row in result.rows:
        assert _resolve(row[5]) is not None
