"""Regenerate Tables II & III from the implementation."""


def test_tab2_tab3(run_experiment):
    result = run_experiment("tab2_tab3", scale=1.0)
    table2 = [r for r in result.rows if r[0] == "II"]
    table3 = [r for r in result.rows if r[0] == "III"]
    # All four Table II message classes (+ NACK, which the paper folds
    # into ACK/NACK) and all four Table III instructions are present.
    assert {r[1] for r in table2} == {
        "predict_config", "migrate", "update", "ack", "nack",
    }
    assert len(table3) == 4
    assert all(r[1].startswith("altom_") for r in table3)
    # The descriptor math matches the paper: 14 B entries.
    migrate_row = next(r for r in table2 if r[1] == "migrate")
    assert "14B" in migrate_row[3]
