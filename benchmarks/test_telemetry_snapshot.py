"""Microbenchmarks for registry snapshots.

The control loop polls ``registry.snapshot("faults")`` every epoch, so
the namespaced read must stay far cheaper than serializing the whole
datacenter-sized hierarchy.  Both paths are benchmarked on the same
synthetic hierarchy (spine registry + racks + per-server children,
roughly the fig_datacenter shape) so the delta is visible in the
benchmark history.
"""

from repro.telemetry import MetricRegistry

#: Roughly the fig_datacenter registry shape: a spine root, 8 racks,
#: 16 servers each, ~40 instruments per server.
N_RACKS = 8
N_SERVERS = 16
N_INSTRUMENTS = 40


def _datacenter_sized_registry() -> MetricRegistry:
    root = MetricRegistry()
    root.counter("faults.requests_blackholed").inc(3)
    root.counter("faults.nic_burst_dropped").inc(5)
    root.counter("faults.responses_lost").inc(2)
    for name in ("dc.admitted", "dc.steer_decisions", "dc.slo_violations"):
        root.counter(name).inc(1000)
    for r in range(N_RACKS):
        rack = MetricRegistry()
        rack.counter("cluster.steer_decisions").inc(500)
        for s in range(N_SERVERS):
            server = MetricRegistry()
            for i in range(N_INSTRUMENTS):
                server.counter(f"system.metric{i}").inc(i)
            rack.attach_child(f"server{s}", server)
        root.attach_child(f"rack{r}", rack)
    return root


def test_full_snapshot(benchmark):
    """Baseline: serialize every instrument in the hierarchy."""
    registry = _datacenter_sized_registry()
    snap = benchmark(registry.snapshot)
    assert len(snap) > N_RACKS * N_SERVERS * N_INSTRUMENTS


def test_filtered_snapshot(benchmark):
    """The control loop's per-epoch read: one namespace, three values.

    Must not descend into the rack/server children at all -- the whole
    point of the filtered path."""
    registry = _datacenter_sized_registry()
    snap = benchmark(registry.snapshot, "faults")
    assert snap == {
        "faults.requests_blackholed": 3,
        "faults.nic_burst_dropped": 5,
        "faults.responses_lost": 2,
    }
