"""Gate the simulator against closed-form queueing theory."""


def test_queueing_validation(run_experiment):
    result = run_experiment("validation", scale=0.6)
    for model, k, rho, predicted, measured, rel_error in result.rows:
        assert rel_error < 0.15, (
            f"{model} (k={k}, rho={rho}): predicted {predicted:.0f} ns, "
            f"measured {measured:.0f} ns, error {rel_error:.1%}"
        )
    # The variance ordering must hold: M/D/1 waits ~half of M/M/1,
    # and the dispersive M/G/1 dwarfs both.
    waits = {row[0]: row[4] for row in result.rows}
    assert waits["M/D/1"] < waits["M/M/1"] < waits["M/G/1"]