#!/usr/bin/env python3
"""Extending the library with a custom scheduling policy.

The paper's closing observation: "the flexibility provided by the
Altocumulus software runtime can support a wide range of new scheduling
policies."  This example builds one -- *shortest-queue steering*, a NIC
that (unrealistically) reads per-core occupancy before steering -- as a
subclass of the RSS system, registers it beside the built-ins, and races
it against them.

Usage::

    python examples/custom_policy.py
"""

from repro.analysis.tables import format_table
from repro.api import build_system, register_system, run_workload
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.request import Request
from repro.workload.service import Bimodal


class ShortestQueueSystem(RssSystem):
    """d-FCFS queues with load-aware (oracle) steering.

    Identical hardware to RSS, but the steering step picks the queue
    with the least outstanding work instead of hashing the flow.  An
    idealisation -- a real NIC cannot see core occupancy for free --
    that bounds how much of RSS's problem is *steering* rather than
    queue structure.
    """

    name = "shortest-queue"

    def _deliver(self, request: Request) -> None:
        occupancy = [
            len(q) + (1 if self.cores[i].busy else 0)
            for i, q in enumerate(self.queues)
        ]
        idx = occupancy.index(min(occupancy))
        queue = self.queues[idx]
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = occupancy[idx]
        core = self.cores[idx]
        if not core.busy and not queue:
            self._start(core, request)
        else:
            queue.append(request)


def main() -> None:
    register_system(
        "shortest-queue",
        lambda sim, streams, n: ShortestQueueSystem(sim, streams, n),
    )

    service = Bimodal(500.0, 50_000.0, 0.005)
    rate = 0.8 * 16 / service.mean * 1e9  # 80% load on 16 cores
    rows = []
    for name in ("rss", "shortest-queue", "zygos", "altocumulus"):
        sim, streams = Simulator(), RandomStreams(21)
        system = build_system(name, sim, streams, 16)
        result = run_workload(
            system, sim, streams, PoissonArrivals(rate), service,
            n_requests=40_000,
        )
        rows.append([
            name,
            result.latency.p50 / 1000.0,
            result.latency.p99 / 1000.0,
            result.latency.p999 / 1000.0,
        ])
    print(format_table(
        ["system", "p50_us", "p99_us", "p99.9_us"],
        rows,
        title="Custom policy vs built-ins (16 cores, bimodal, 80% load)",
    ))
    print(
        "\nShortest-queue steering fixes RSS's imbalance but still cannot\n"
        "preempt or migrate, so the extreme tail (p99.9) stays hostage to\n"
        "long requests -- the gap Altocumulus's proactive migration and\n"
        "the nanoPU/Shinjuku preemption designs attack."
    )


if __name__ == "__main__":
    main()
