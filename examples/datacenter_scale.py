#!/usr/bin/env python3
"""Datacenter tour: a spine-leaf fabric serving multi-tenant traffic.

Builds a 4-rack fabric of Altocumulus servers (each rack internally
steered by power-of-2 choices) behind a spine switch and drives a
three-tenant mix through each inter-rack steering policy.  The hot
tenant keeps few connections at high Zipf skew and arrives as a
drifting burst (diurnal MMPP) superposed on Poisson background
tenants -- production-shaped load, not a uniform stream.

The rack tier's lesson repeats one level up: flow hashing pins the hot
tenant's connections to whichever racks they hash to, so those racks
saturate -- and the hot tenant misses its SLO -- while neighbouring
racks idle.  The load-aware inter-rack policies hold every tenant near
full attainment at the same offered load.

Usage::

    python examples/datacenter_scale.py
"""

from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.cluster import RackConfig
from repro.datacenter import DatacenterConfig, build_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import DriftingMMPPArrivals, PoissonArrivals
from repro.workload.service import Exponential
from repro.workload.tenants import (
    SuperposedArrivals,
    TenantClass,
    TenantConnectionPool,
    TenantMix,
)

TENANTS = (
    TenantClass("hot", share=0.5, slo_ns=10_000.0, zipf_s=1.3,
                n_connections=64),
    TenantClass("cache", share=0.3, slo_ns=10_000.0, zipf_s=1.1,
                n_connections=4096),
    TenantClass("batch", share=0.2, slo_ns=50_000.0, n_connections=4096),
)


def main() -> None:
    n_racks = 4
    n_servers = 4
    cores_per_server = 4
    mean_service_ns = 1_000.0
    rate_rps = 44.8e6  # 70% of the fabric's 64 MRPS aggregate capacity

    mix = TenantMix(TENANTS)
    rows = []
    for policy in ("hash", "power_of_d", "shortest_wait"):
        sim = Simulator()
        streams = RandomStreams(3)
        dc = build_topology(
            sim, streams,
            DatacenterConfig(
                n_racks=n_racks,
                rack=RackConfig(
                    n_servers=n_servers,
                    cores_per_server=cores_per_server,
                    system="altocumulus",
                    policy="power_of_d",
                ),
                policy=policy,
                tenants=TENANTS,
            ),
        )
        # The hot tenant bursts (drifting MMPP); the rest are Poisson.
        arrivals = SuperposedArrivals([
            DriftingMMPPArrivals(
                TENANTS[0].share * rate_rps, burst_factor=4.0,
                period_ns=2e5, amplitude=0.3,
            ),
            PoissonArrivals(TENANTS[1].share * rate_rps),
            PoissonArrivals(TENANTS[2].share * rate_rps),
        ])
        result = run_workload(
            dc, sim, streams,
            arrivals=arrivals,
            service=Exponential(mean_service_ns),
            n_requests=8_000,
            connections=TenantConnectionPool(mix),
        )
        rows.append([
            policy,
            result.latency.p50 / 1000.0,
            result.latency.p99 / 1000.0,
            result.extra["datacenter.imbalance_index"],
            " ".join(
                f"{name}={result.extra[f'tenant.{name}.attainment']:.3f}"
                for name in mix.names
            ),
        ])

    print(
        format_table(
            ["steering", "p50_us", "p99_us", "rack_imbalance",
             "slo_attainment"],
            rows,
            title=f"{n_racks}x{n_servers}x{cores_per_server}-core fabric, "
            f"{rate_rps / 1e6:.0f} MRPS offered, 3-tenant mix",
        )
    )
    print(
        "\nReading the table: rack_imbalance is max/mean of per-rack\n"
        "completions (1.0 = even).  Inter-rack flow hashing pins the hot\n"
        "tenant's few connections to whichever racks they hash to, so\n"
        "those racks saturate and the hot tenant's SLO attainment drops,\n"
        "even though every rack steers internally with power-of-2.  The\n"
        "load-aware inter-rack policies even out the racks and hold every\n"
        "tenant near full attainment at the same offered load."
    )


if __name__ == "__main__":
    main()
