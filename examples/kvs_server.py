#!/usr/bin/env python3
"""An in-memory key-value store served by Altocumulus (the paper's
end-to-end scenario, Sec. IX).

Builds a MICA-like EREW store with one partition per manager group,
offers Zipf-skewed GET/SET traffic with a sliver of long SCANs over
bursty arrivals, and reports both the *scheduling* outcome (latency,
migrations) and the *application* outcome (store hit rates, ops).

Usage::

    python examples/kvs_server.py
"""

from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import real_world_arrivals
from repro.kvs import MicaServiceModel, MicaWorkload, build_dataset
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.service import Fixed


def main() -> None:
    n_groups, group_size = 4, 16
    dataset = build_dataset(n_partitions=n_groups, n_keys=10_000, seed=7)
    workload = MicaWorkload(
        dataset,
        MicaServiceModel.nanorpc(),
        n_groups=n_groups,
        get_fraction=0.5,
        scan_fraction=0.005,
        zipf_s=0.9,  # hot keys -> one hot EREW partition
        seed=7,
    )

    sim, streams = Simulator(), RandomStreams(7)
    config = AltocumulusConfig(
        n_groups=n_groups,
        group_size=group_size,
        variant="rss",
        dispatch_mode="hw",
        period_ns=100.0,
        bulk=40,
        concurrency=3,
        slo_multiplier=10.0,
    )
    system = AltocumulusSystem(sim, streams, config,
                               execution_penalty=workload.execute)

    result = run_workload(
        system,
        sim,
        streams,
        real_world_arrivals(100e6),  # 100 MRPS of bursty cloud traffic
        Fixed(100.0),  # placeholder; the factory sets per-op times
        n_requests=60_000,
        request_factory=workload.request_factory,
    )

    print(format_table(
        ["metric", "value"],
        [
            ["p50 latency (us)", result.latency.p50 / 1000.0],
            ["p99 latency (us)", result.latency.p99 / 1000.0],
            ["throughput (MRPS)", result.throughput_rps / 1e6],
            ["requests migrated", system.total_migrated()],
            ["EREW remote accesses", workload.remote_accesses],
            ["ops executed", workload.executed],
        ],
        title="Altocumulus serving MICA (64 cores, 4 groups)",
    ))

    rows = []
    for partition in dataset.store.partitions:
        s = partition.stats
        rows.append([partition.partition_id, s.gets, s.sets, s.scans,
                     f"{s.hit_rate:.3f}"])
    print()
    print(format_table(
        ["partition", "gets", "sets", "scans", "hit_rate"],
        rows,
        title="Per-partition store activity (note the hot partition)",
    ))


if __name__ == "__main__":
    main()
