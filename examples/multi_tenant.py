#!/usr/bin/env python3
"""Multi-tenant isolation -- implementing the paper's future work.

Sec. XI: "our distributed software runtime offers the opportunity for
isolating different applications, which we leave as a study for future
work."  This example builds that study: a latency-critical (LC) service
with 100 ns handlers shares a 64-core Altocumulus machine with a batch
application running 20 us handlers.

Two configurations are compared under identical traffic:

* **shared** -- one global migration domain: batch backlog freely
  migrates into the LC groups;
* **isolated** -- ``migration_domains=[[0,1,2],[3]]``: the runtime's
  migrations never cross the application boundary.

Usage::

    python examples/multi_tenant.py
"""

from repro.analysis.tables import format_table
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.generator import LoadGenerator
from repro.workload.request import Request
from repro.workload.service import Exponential

N_GROUPS, GROUP_SIZE = 4, 16
LC_GROUPS = [0, 1, 2]  # latency-critical application
BATCH_GROUP = 3

LC_SERVICE = Exponential(100.0)
BATCH_SERVICE = Exponential(20_000.0)
LC_RATE = 300e6  # ~67% of the LC groups' capacity
BATCH_RATE = 1.5e6  # overloads the single batch group (migration bait)
N_REQUESTS = 60_000


def _connection_for_group(pool: ConnectionPool, group: int) -> int:
    conn = 0
    while pool.hash_to_queue(conn, N_GROUPS) != group:
        conn += 1
    return conn


def run_config(domains):
    sim, streams = Simulator(), RandomStreams(13)
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        period_ns=100.0,
        bulk=16,
        concurrency=3,
        migration_domains=domains,
    )
    system = AltocumulusSystem(sim, streams, config)
    pool = ConnectionPool(1 << 16)
    lc_conns = [_connection_for_group(pool, g) for g in LC_GROUPS]
    batch_conn = _connection_for_group(pool, BATCH_GROUP)
    rng = streams.get("tenants")

    def lc_factory(request: Request) -> None:
        request.connection = lc_conns[int(rng.integers(0, len(lc_conns)))]

    def batch_factory(request: Request) -> None:
        request.connection = batch_conn

    lc_gen = LoadGenerator(
        sim, streams.spawn("lc"), PoissonArrivals(LC_RATE), LC_SERVICE,
        sink=system.offer, n_requests=N_REQUESTS,
        request_factory=lc_factory,
    )
    batch_gen = LoadGenerator(
        sim, streams.spawn("batch"), PoissonArrivals(BATCH_RATE),
        BATCH_SERVICE, sink=system.offer,
        n_requests=max(200, int(N_REQUESTS * BATCH_RATE / LC_RATE)),
        request_factory=batch_factory,
    )
    system.expect(lc_gen.n_requests + batch_gen.n_requests)
    lc_gen.start()
    batch_gen.start()
    sim.run(until=10**15)
    system.shutdown()

    from repro.analysis.metrics import summarize_latencies

    lc = summarize_latencies([r for r in lc_gen.requests if r.completed])
    batch = summarize_latencies(
        [r for r in batch_gen.requests if r.completed]
    )
    batch_in_lc_groups = sum(
        1 for r in batch_gen.requests
        if r.completed and r.group_id in LC_GROUPS
    )
    return lc, batch, batch_in_lc_groups


def main() -> None:
    rows = []
    for label, domains in (
        ("shared", None),
        ("isolated", [LC_GROUPS, [BATCH_GROUP]]),
    ):
        lc, batch, leaked = run_config(domains)
        rows.append([
            label,
            lc.p99 / 1000.0,
            batch.p99 / 1000.0,
            leaked,
        ])
    print(format_table(
        ["config", "LC_p99_us", "batch_p99_us", "batch_reqs_in_LC_groups"],
        rows,
        title="Application isolation via migration domains (64 cores)",
    ))
    print(
        "\nWith one shared domain, the overloaded batch group exports its\n"
        "20 us requests into the latency-critical groups and inflates the\n"
        "LC tail.  Migration domains confine the batch application: zero\n"
        "of its requests execute on LC cores, at the cost of the batch\n"
        "tail (it can no longer borrow idle LC capacity)."
    )


if __name__ == "__main__":
    main()
