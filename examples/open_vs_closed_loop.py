#!/usr/bin/env python3
"""Open-loop vs closed-loop load generation -- the methodology trap.

The paper (like all tail-latency work) measures with an *open-loop*
generator: arrivals keep coming regardless of how slow the server is.
A *closed-loop* harness -- N clients, one outstanding request each --
self-throttles: when the server stalls, the clients stop sending, so
the measured tail looks fine even when the system is broken
(coordinated omission).

This example drives the identical RSS d-FCFS server under a dispersive
bimodal workload both ways at a matched average rate, and shows the
closed-loop harness underestimating the p99 by an order of magnitude.

Usage::

    python examples/open_vs_closed_loop.py
"""

from repro.analysis.metrics import summarize_latencies
from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.closed_loop import ClosedLoopGenerator
from repro.workload.service import Bimodal

N_CORES = 16
SERVICE = Bimodal(500.0, 100_000.0, 0.01)  # 1% x 100 us longs
N_REQUESTS = 40_000
TARGET_RATE = 0.8 * N_CORES / SERVICE.mean * 1e9  # 80% load


def open_loop():
    sim, streams = Simulator(), RandomStreams(17)
    system = RssSystem(sim, streams, N_CORES)
    result = run_workload(
        system, sim, streams, PoissonArrivals(TARGET_RATE), SERVICE,
        n_requests=N_REQUESTS,
    )
    return result.latency, result.throughput_rps


def closed_loop():
    sim, streams = Simulator(), RandomStreams(17)
    system = RssSystem(sim, streams, N_CORES)
    # Pick clients/think so the *intended* rate matches the open loop:
    # rate = n_clients / (service + think).
    n_clients = 64
    think_ns = n_clients / (TARGET_RATE / 1e9) - SERVICE.mean
    generator = ClosedLoopGenerator(
        sim, streams, system, SERVICE,
        n_clients=n_clients, n_requests=N_REQUESTS, think_ns=think_ns,
    )
    system.expect(N_REQUESTS)
    generator.start()
    sim.run(until=10**15)
    system.shutdown()
    done = generator.measured_requests()
    return summarize_latencies(done), generator.achieved_rate_rps()


def main() -> None:
    open_lat, open_rate = open_loop()
    closed_lat, closed_rate = closed_loop()
    print(format_table(
        ["harness", "rate_mrps", "p50_us", "p99_us", "p99.9_us"],
        [
            ["open-loop", open_rate / 1e6, open_lat.p50 / 1000,
             open_lat.p99 / 1000, open_lat.p999 / 1000],
            ["closed-loop", closed_rate / 1e6, closed_lat.p50 / 1000,
             closed_lat.p99 / 1000, closed_lat.p999 / 1000],
        ],
        title="Same server, same intended load, two harnesses",
    ))
    ratio = open_lat.p99 / max(closed_lat.p99, 1.0)
    print(
        f"\nThe closed-loop harness reports a p99 {ratio:.1f}x lower than\n"
        "the open-loop truth: whenever a 100 us request blocks a queue,\n"
        "the closed-loop clients behind it simply stop offering load\n"
        "(coordinated omission).  This is why the paper -- and every\n"
        "experiment in this repository -- measures open-loop."
    )


if __name__ == "__main__":
    main()
