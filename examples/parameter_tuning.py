#!/usr/bin/env python3
"""Tuning Altocumulus's migration parameters (the Sec. VI guidelines).

Sweeps the Period x Bulk grid for a 128-core AC_int system under bursty
skewed traffic and prints the p99 surface plus a throughput bar chart --
the workflow a cloud operator would run before deploying (the paper:
"Optimizing Altocumulus parameters for real-world traces requires
tuning a few parameters").

Usage::

    python examples/parameter_tuning.py
"""

from repro.analysis.ascii_plot import bar_chart
from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import gentle_bursts
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

N_GROUPS, GROUP_SIZE = 8, 16
SERVICE = Bimodal(500.0, 5_000.0, 0.029)
LOAD = 0.8
PERIODS_NS = [50.0, 200.0, 800.0]
BULKS = [8, 16, 32]
N_REQUESTS = 40_000


def run_point(period_ns: float, bulk: int):
    sim, streams = Simulator(), RandomStreams(23)
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        period_ns=period_ns,
        bulk=bulk,
        concurrency=min(7, max(1, bulk // 4)),
        offered_load=LOAD,
    )
    system = AltocumulusSystem(sim, streams, config)
    workers = config.n_workers
    rate = LOAD * workers / SERVICE.mean * 1e9
    result = run_workload(
        system, sim, streams, gentle_bursts(rate), SERVICE,
        n_requests=N_REQUESTS,
        connections=ConnectionPool.skewed(128, zipf_s=0.8),
    )
    return result, system


def main() -> None:
    rows = []
    p99_by_config = {}
    for period in PERIODS_NS:
        for bulk in BULKS:
            result, system = run_point(period, bulk)
            label = f"P={period:.0f}ns,B={bulk}"
            p99_by_config[label] = result.latency.p99 / 1000.0
            rows.append([
                period,
                bulk,
                result.latency.p99 / 1000.0,
                result.violation_ratio(10 * SERVICE.mean),
                system.total_migrated(),
            ])
    print(format_table(
        ["period_ns", "bulk", "p99_us", "violation_ratio", "migrated"],
        rows,
        title=f"Migration-parameter grid ({N_GROUPS}x{GROUP_SIZE} cores, "
              f"load {LOAD})",
        precision=3,
    ))
    best = min(p99_by_config, key=p99_by_config.get)
    print()
    print(bar_chart(p99_by_config, title="p99 by configuration (lower "
                                         "is better)", unit=" us"))
    print(f"\nBest configuration here: {best}.  The paper's guidance\n"
          "(Sec. VI) holds: sub-microsecond periods are all serviceable,\n"
          "larger periods pair with larger bulks, and the penalty for a\n"
          "mistuned grid point is bounded -- the runtime's line-8 guard\n"
          "prevents harmful migrations regardless.")


if __name__ == "__main__":
    main()
