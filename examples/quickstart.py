#!/usr/bin/env python3
"""Quickstart: simulate an RPC server under load and read its tail.

Runs the same Poisson / exponential-service workload through a commodity
RSS d-FCFS server and through Altocumulus, and prints the latency
distribution of each -- the one-minute tour of the library.

Usage::

    python examples/quickstart.py
"""

from repro import quick_run
from repro.analysis.tables import format_table


def main() -> None:
    n_cores = 16
    rate_rps = 10e6  # 10 MRPS offered
    mean_service_ns = 1_000.0  # 1 us RPC handlers

    rows = []
    for system in ("rss", "zygos", "shinjuku", "nebula", "altocumulus"):
        result = quick_run(
            system=system,
            n_cores=n_cores,
            rate_rps=rate_rps,
            mean_service_ns=mean_service_ns,
            n_requests=40_000,
            seed=1,
        )
        rows.append(
            [
                system,
                result.latency.p50 / 1000.0,
                result.latency.p99 / 1000.0,
                result.throughput_rps / 1e6,
                result.utilization,
            ]
        )

    print(
        format_table(
            ["system", "p50_us", "p99_us", "throughput_mrps", "utilization"],
            rows,
            title=f"{n_cores} cores, {rate_rps / 1e6:.0f} MRPS offered, "
            f"{mean_service_ns:.0f} ns mean service",
        )
    )
    print(
        "\nReading the table: d-FCFS (rss) shows the worst tail among the\n"
        "stable systems because a busy core's queue cannot be drained by\n"
        "idle peers; work stealing (zygos) closes most of that gap; the\n"
        "hardware schedulers (nebula, altocumulus) add almost nothing on\n"
        "top of raw service time.  Shinjuku is saturated outright: 10 MRPS\n"
        "offered exceeds its ~5 MRPS centralized-dispatcher ceiling -- the\n"
        "scalability wall that motivates decentralized designs."
    )


if __name__ == "__main__":
    main()
