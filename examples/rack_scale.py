#!/usr/bin/env python3
"""Rack-scale tour: one ToR switch, four servers, four steering policies.

Builds a rack of d-FCFS (RSS) servers behind the cluster tier's
top-of-rack switch and drives the same Zipf-skewed flow mix through each
inter-server steering policy.  The point of the exercise: with hot
flows, *where* a request lands in the rack dominates the tail long
before per-server scheduling does -- connection hashing pins the hot
flows to one server and its p99 explodes, while the load-aware policies
(power-of-2 choices, RackSched-style shortest expected wait) hold the
rack near its aggregate capacity.

Usage::

    python examples/rack_scale.py
"""

from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.cluster import RackConfig, build_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Exponential


def main() -> None:
    n_servers = 4
    cores_per_server = 4
    mean_service_ns = 1_000.0
    rate_rps = 12e6  # 75% of the rack's 16 MRPS aggregate capacity

    rows = []
    for policy in ("hash", "round_robin", "power_of_d", "shortest_wait"):
        sim = Simulator()
        streams = RandomStreams(3)
        rack = build_rack(
            sim, streams,
            RackConfig(
                n_servers=n_servers,
                cores_per_server=cores_per_server,
                system="rss",
                policy=policy,
            ),
        )
        result = run_workload(
            rack, sim, streams,
            arrivals=PoissonArrivals(rate_rps),
            service=Exponential(mean_service_ns),
            n_requests=6_000,
            connections=ConnectionPool.skewed(512, zipf_s=1.2),
        )
        rows.append([
            policy,
            result.latency.p50 / 1000.0,
            result.latency.p99 / 1000.0,
            result.throughput_rps / 1e6,
            result.extra["cluster.imbalance_index"],
        ])

    print(
        format_table(
            ["steering", "p50_us", "p99_us", "throughput_mrps", "imbalance"],
            rows,
            title=f"{n_servers}x{cores_per_server}-core rack, "
            f"{rate_rps / 1e6:.0f} MRPS offered, Zipf-skewed flows",
        )
    )
    print(
        "\nReading the table: imbalance is max/mean of per-server\n"
        "completions (1.0 = even).  Flow hashing concentrates the hot\n"
        "flows on one server, so its queue -- and the rack's p99 -- blows\n"
        "up while the other servers idle.  Round-robin evens out request\n"
        "counts but still ignores queue-depth skew from service-time\n"
        "variance.  The load-aware policies (power-of-2 sampled queues,\n"
        "periodically sampled shortest expected wait) keep every server\n"
        "busy and the tail an order of magnitude lower at the same load."
    )


if __name__ == "__main__":
    main()
