#!/usr/bin/env python3
"""Scheduler face-off: latency-throughput curves on a dispersive mix.

A miniature of the paper's Fig. 10: sweep offered load on a 16-core
server under the short/long bimodal workload and print each scheduler's
p99 curve plus its throughput@SLO.  Shows how to drive multi-point
sweeps with the public API.

Usage::

    python examples/scheduler_faceoff.py [--long-us 50]
"""

import argparse

from repro.analysis.tables import format_table
from repro.api import available_systems, build_system, run_workload
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Bimodal

SYSTEMS = ["ix", "zygos", "shinjuku", "nebula", "nanopu", "altocumulus"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--long-us", type=float, default=50.0,
                        help="long-request service time in microseconds")
    parser.add_argument("--requests", type=int, default=30_000)
    args = parser.parse_args()

    service = Bimodal(500.0, args.long_us * 1_000.0, 0.005)
    slo_ns = 10.0 * service.mean
    n_cores = 16
    capacity_mrps = n_cores / service.mean * 1e3

    fractions = [0.3, 0.5, 0.7, 0.85, 0.95]
    rows = []
    at_slo = {}
    for name in SYSTEMS:
        assert name in available_systems()
        best = 0.0
        for fraction in fractions:
            rate = fraction * capacity_mrps * 1e6
            sim, streams = Simulator(), RandomStreams(3)
            system = build_system(name, sim, streams, n_cores)
            result = run_workload(
                system, sim, streams, PoissonArrivals(rate), service,
                n_requests=args.requests,
            )
            p99_us = result.latency.p99 / 1000.0
            rows.append([name, fraction, rate / 1e6, p99_us])
            if result.latency.p99 <= slo_ns:
                best = max(best, rate / 1e6)
        at_slo[name] = best

    print(format_table(
        ["system", "load", "offered_mrps", "p99_us"],
        rows,
        title=(f"16 cores, bimodal 0.5us / {args.long_us:.0f}us (0.5%), "
               f"SLO p99 < {slo_ns / 1000:.1f} us"),
    ))
    print("\nthroughput@SLO (MRPS):")
    for name, mrps in sorted(at_slo.items(), key=lambda kv: kv[1]):
        bar = "#" * int(mrps / max(at_slo.values()) * 40) if mrps else ""
        print(f"  {name:12s} {mrps:7.2f}  {bar}")


if __name__ == "__main__":
    main()
