#!/usr/bin/env python3
"""Debugging a latency tail with per-request timelines.

Percentiles tell you a tail exists; timelines tell you *why*.  This
example runs an RSS d-FCFS server under a dispersive workload, attaches
a :class:`~repro.analysis.timeline.TimelineRecorder` through the
completion hook, and prints the life of the slowest requests -- which
turn out (predictably) to be shorts that queued behind a long request
on a hashed-hot core.

Usage::

    python examples/tail_debugging.py
"""

from repro.analysis.timeline import TimelineRecorder
from repro.api import run_workload
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Bimodal


def main() -> None:
    sim, streams = Simulator(), RandomStreams(31)
    system = RssSystem(sim, streams, 8)
    recorder = TimelineRecorder(max_requests=100_000)
    system.completion_hooks.append(recorder.record_lifecycle)

    service = Bimodal(500.0, 200_000.0, 0.005)  # 0.5% x 200 us longs
    result = run_workload(
        system, sim, streams,
        PoissonArrivals(0.6 * 8 / service.mean * 1e9), service,
        n_requests=30_000,
    )
    print(f"p50 = {result.latency.p50 / 1000:.2f} us, "
          f"p99 = {result.latency.p99 / 1000:.2f} us, "
          f"max = {result.latency.maximum / 1000:.2f} us\n")
    print("The three slowest requests, step by step:\n")
    for timeline in recorder.slowest(3):
        print(timeline.render())
        print()
    print(
        "Reading the timelines: each victim enqueued behind a deep queue\n"
        "(see queue_len at 'enqueued') and only 'started' after the long\n"
        "request ahead of it drained -- head-of-line blocking, the\n"
        "pathology every scheduler in this repository beyond plain RSS\n"
        "exists to fix."
    )


if __name__ == "__main__":
    main()
