#!/usr/bin/env python3
"""Calibrating the SLO-violation threshold model (the paper's offline
component, Sec. IV / Fig. 7d).

1. Simulate a c-FCFS server across a band of near-saturation loads.
2. Record, per load, the queue length at which the first SLO violation
   arrived (T_lower).
3. Least-squares fit the Eq. 2 linear transformation of the Erlang-C
   expected queue length.
4. Plug the fitted model into an Altocumulus config and show the
   runtime-computed thresholds.

Usage::

    python examples/threshold_calibration.py
"""

from repro.analysis.tables import format_table
from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.prediction import (
    calibrate_threshold_model,
    expected_queue_length,
    first_violation_threshold,
)
from repro.schedulers.jbsq import ideal_cfcfs
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Fixed

K = 32  # cores
SERVICE_NS = 1_000.0
L = 3.0  # calibration SLO multiplier (see EXPERIMENTS.md)
LOADS = [0.95, 0.97, 0.985, 0.995]


def measure_t_lower(load: float, seed: int) -> float:
    sim, streams = Simulator(), RandomStreams(seed)
    system = ideal_cfcfs(sim, streams, K)
    result = run_workload(
        system, sim, streams,
        PoissonArrivals(load * K / SERVICE_NS * 1e9), Fixed(SERVICE_NS),
        n_requests=120_000, warmup_fraction=0.05,
    )
    slo_ns = L * SERVICE_NS
    qlens = [r.queue_len_at_arrival for r in result.requests]
    violated = [r.latency > slo_ns for r in result.requests]
    t, count = first_violation_threshold(qlens, violated)
    print(f"  load {load:.3f}: {count:5d} violations, T_lower = {t:.0f}")
    return t


def main() -> None:
    print(f"Measuring first-violation thresholds ({K}-core c-FCFS, L={L:g}):")
    measured = {load: measure_t_lower(load, seed=41 + i)
                for i, load in enumerate(LOADS)}
    finite = {a: t for a, t in measured.items() if t != float("inf")}
    model = calibrate_threshold_model(
        [a * K for a in finite], list(finite.values()), K, name="example"
    )
    print(f"\nEq. 2 fit: E[T] = {model.a:.3f} * E[Nq] + {model.b:.1f}")

    rows = []
    for load in LOADS:
        nq = expected_queue_length(K, load * K)
        rows.append([load, nq, measured[load], model.threshold(K, load * K)])
    print(format_table(
        ["load", "erlang_E[Nq]", "T_measured", "T_model"],
        rows,
        title="Measured vs modelled thresholds",
    ))

    config = AltocumulusConfig(
        n_groups=4, group_size=8, threshold_model=model, slo_multiplier=L
    )
    print(
        "\nThe fitted model now drives an AltocumulusConfig: at the "
        "runtime's estimated\nload it yields the migration threshold each "
        f"manager compares its NetRX against\n(config: {config.n_groups} "
        f"groups x {config.group_size} cores, model "
        f"a={config.threshold_model.a:.3f})."
    )


if __name__ == "__main__":
    main()
