"""Setuptools shim so `pip install -e .` works in offline environments
that lack the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
