"""Altocumulus reproduction: scalable scheduling for nanosecond-scale RPCs.

A full Python reimplementation of the MICRO 2022 paper "ALTOCUMULUS:
Scalable Scheduling for Nanosecond-Scale Remote Procedure Calls" (Zhao
et al.), built on a discrete-event simulation of a multicore RPC server.

Quick start::

    from repro import quick_run

    result = quick_run(system="altocumulus", n_cores=16,
                       rate_rps=2e6, n_requests=20_000)
    print(result.latency.p99 / 1000, "us p99")

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-figure reproduction harnesses.
"""

from repro.api import SimulationResult, build_system, quick_run, run_workload

__version__ = "1.0.0"

__all__ = [
    "build_system",
    "quick_run",
    "run_workload",
    "SimulationResult",
    "__version__",
]
