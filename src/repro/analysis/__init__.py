"""Measurement and reporting: latency statistics, throughput@SLO,
SLO-violation accounting, the migration-effectiveness breakdown of
Fig. 12, and plain-text table rendering for the benchmark harness.
"""

from repro.analysis.metrics import LatencySummary, summarize_latencies
from repro.analysis.slo import (
    SloPolicy,
    find_throughput_at_slo,
    prediction_accuracy,
    violation_ratio,
)
from repro.analysis.effectiveness import (
    EffectivenessBreakdown,
    MigrationClass,
    classify_migrations,
)
from repro.analysis.tables import format_table
from repro.analysis.ascii_plot import bar_chart, line_chart
from repro.analysis.timeline import RequestTimeline, TimelineRecorder
from repro.analysis.validation import validate_simulator
from repro.analysis.stats import confidence_interval, overlapping, seed_sweep

__all__ = [
    "LatencySummary",
    "summarize_latencies",
    "SloPolicy",
    "find_throughput_at_slo",
    "violation_ratio",
    "prediction_accuracy",
    "MigrationClass",
    "EffectivenessBreakdown",
    "classify_migrations",
    "format_table",
    "bar_chart",
    "line_chart",
    "TimelineRecorder",
    "RequestTimeline",
    "validate_simulator",
    "confidence_interval",
    "seed_sweep",
    "overlapping",
]
