"""Terminal-friendly ASCII charts.

The reproduction environment has no plotting stack, so the experiment
harness renders its "figures" as tables plus these ASCII charts: a
scatter/line canvas for latency-throughput curves and a horizontal bar
chart for the grouped-bar figures (Figs. 11-13).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def _nice_label(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render multiple (x, y) series on one ASCII canvas.

    Each series gets a marker from a fixed cycle; a legend maps markers
    back to names.  ``log_y`` plots log10(y), the natural scale for
    tail-latency curves.
    """
    if not series:
        raise ValueError("need at least one series")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    if log_y and any(y <= 0 for _, y in points):
        raise ValueError("log_y requires strictly positive y values")

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [x for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((ty(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = _nice_label(10**y_hi if log_y else y_hi)
    y_bot = _nice_label(10**y_lo if log_y else y_lo)
    lines.append(f"{y_label}{' (log)' if log_y else ''}: "
                 f"{y_bot} .. {y_top}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {_nice_label(x_lo)} .. {_nice_label(x_hi)}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a horizontal bar chart of name -> value."""
    if not values:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values.values()):
        raise ValueError("bars must be non-negative")
    peak = max(values.values()) or 1.0
    label_width = max(len(name) for name in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * int(round(value / peak * width))
        lines.append(
            f"{name.ljust(label_width)} |{bar.ljust(width)}| "
            f"{_nice_label(value)}{unit}"
        )
    return "\n".join(lines)
