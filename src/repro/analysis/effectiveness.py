"""Migration-effectiveness breakdown (Sec. VIII-D / Fig. 12).

Every migrated request carries a counterfactual: the completion time it
was headed for when the runtime pulled it off the source queue
(``no_migration_eta``).  Crossing that against the actual outcome gives
the paper's four classes:

=====================  ==========================  =======================
class                  without migration           with migration
=====================  ==========================  =======================
``EFF``                would violate SLO           meets SLO  (saved!)
``INEFF_NO_HARM``      meets SLO                   meets SLO  (wasted move,
                                                   but queueing reduced)
``INEFF_NO_BENEFIT``   would violate               still violates
``FALSE``              meets SLO                   violates (harmful!)
=====================  ==========================  =======================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.workload.request import Request


class MigrationClass(enum.Enum):
    """The four-way outcome classes of Sec. VIII-D."""
    EFF = "eff"
    INEFF_NO_HARM = "ineff_no_harm"
    INEFF_NO_BENEFIT = "ineff_no_benefit"
    FALSE = "false"


@dataclass
class EffectivenessBreakdown:
    """Counts of migrated requests per class."""

    counts: Dict[MigrationClass, int] = field(
        default_factory=lambda: {c: 0 for c in MigrationClass}
    )

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def ratio(self, cls: MigrationClass) -> float:
        if self.total == 0:
            return 0.0
        return self.counts[cls] / self.total

    @property
    def effective_ratio(self) -> float:
        """The paper's headline: Eff. / all migrated."""
        return self.ratio(MigrationClass.EFF)

    @property
    def false_count(self) -> int:
        return self.counts[MigrationClass.FALSE]

    def as_dict(self) -> Dict[str, int]:
        return {c.value: n for c, n in self.counts.items()}


def classify_one(request: Request, slo_ns: float) -> MigrationClass:
    """Classify a single migrated request."""
    if request.no_migration_eta is None:
        raise ValueError(
            f"request {request.req_id} has no counterfactual; was it migrated?"
        )
    if not request.completed:
        raise ValueError(f"request {request.req_id} has not completed")
    would_violate = (request.no_migration_eta - request.arrival) > slo_ns
    did_violate = request.latency > slo_ns
    if would_violate and not did_violate:
        return MigrationClass.EFF
    if not would_violate and not did_violate:
        return MigrationClass.INEFF_NO_HARM
    if would_violate and did_violate:
        return MigrationClass.INEFF_NO_BENEFIT
    return MigrationClass.FALSE


def classify_migrations(
    requests: Iterable[Request], slo_ns: float
) -> EffectivenessBreakdown:
    """Break down every migrated, completed request in a run."""
    breakdown = EffectivenessBreakdown()
    for r in requests:
        if r.migrations > 0 and r.completed and not r.dropped:
            breakdown.counts[classify_one(r, slo_ns)] += 1
    return breakdown


def migrated_requests(requests: Iterable[Request]) -> List[Request]:
    """The subset of a run's requests that experienced migration."""
    return [r for r in requests if r.migrations > 0]
