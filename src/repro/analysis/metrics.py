"""Latency statistics.

The paper's headline metric is the 99th percentile (Sec. II-A); all
summaries here report exact empirical percentiles over the completed
requests of a run (no streaming approximation -- runs are finite and
the tail is what matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.workload.request import Request


@dataclass(frozen=True)
class LatencySummary:
    """Empirical latency summary of one run (all values in ns)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "p50_ns": self.p50,
            "p90_ns": self.p90,
            "p99_ns": self.p99,
            "p999_ns": self.p999,
            "max_ns": self.maximum,
        }


def latencies_of(requests: Iterable[Request]) -> np.ndarray:
    """Latency array (ns) over completed, non-dropped requests.

    Accumulates straight into an ndarray (``np.fromiter``) instead of
    materializing an intermediate per-request Python list -- measurably
    cheaper at sweep scale, value-identical.
    """
    return np.fromiter(
        (
            r.finished - r.arrival
            for r in requests
            if r.finished is not None and not r.dropped
        ),
        dtype=float,
    )


def summarize_latencies(requests: Sequence[Request]) -> LatencySummary:
    """Exact percentile summary of a request population."""
    lat = latencies_of(requests)
    if lat.size == 0:
        return LatencySummary.empty()
    # One vectorized percentile call over all quantiles: identical values
    # to per-quantile calls, one sort instead of four.
    p50, p90, p99, p999 = np.percentile(lat, (50, 90, 99, 99.9))
    return LatencySummary(
        count=int(lat.size),
        mean=float(lat.mean()),
        p50=float(p50),
        p90=float(p90),
        p99=float(p99),
        p999=float(p999),
        maximum=float(lat.max()),
    )


def percentile(requests: Sequence[Request], q: float) -> float:
    """One latency percentile (ns) over completed requests."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0,100], got {q}")
    lat = latencies_of(requests)
    if lat.size == 0:
        raise ValueError("no completed requests to summarize")
    return float(np.percentile(lat, q))


def achieved_throughput_rps(requests: Sequence[Request]) -> float:
    """Completed requests per second over the span of the run."""
    count = 0
    start = float("inf")
    end = float("-inf")
    for r in requests:
        finished = r.finished
        if finished is None:
            continue
        count += 1
        if r.arrival < start:
            start = r.arrival
        if finished > end:
            end = finished
    if count < 2 or end <= start:
        return 0.0
    return count / (end - start) * 1e9
