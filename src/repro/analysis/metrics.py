"""Latency statistics.

The paper's headline metric is the 99th percentile (Sec. II-A); all
summaries here report exact empirical percentiles over the completed
requests of a run (no streaming approximation -- runs are finite and
the tail is what matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.workload.request import Request


@dataclass(frozen=True)
class LatencySummary:
    """Empirical latency summary of one run (all values in ns)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ns": self.mean,
            "p50_ns": self.p50,
            "p90_ns": self.p90,
            "p99_ns": self.p99,
            "p999_ns": self.p999,
            "max_ns": self.maximum,
        }


def latencies_of(requests: Iterable[Request]) -> np.ndarray:
    """Latency array (ns) over completed, non-dropped requests."""
    return np.array(
        [r.latency for r in requests if r.completed and not r.dropped], dtype=float
    )


def summarize_latencies(requests: Sequence[Request]) -> LatencySummary:
    """Exact percentile summary of a request population."""
    lat = latencies_of(requests)
    if lat.size == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=int(lat.size),
        mean=float(lat.mean()),
        p50=float(np.percentile(lat, 50)),
        p90=float(np.percentile(lat, 90)),
        p99=float(np.percentile(lat, 99)),
        p999=float(np.percentile(lat, 99.9)),
        maximum=float(lat.max()),
    )


def percentile(requests: Sequence[Request], q: float) -> float:
    """One latency percentile (ns) over completed requests."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0,100], got {q}")
    lat = latencies_of(requests)
    if lat.size == 0:
        raise ValueError("no completed requests to summarize")
    return float(np.percentile(lat, q))


def achieved_throughput_rps(requests: Sequence[Request]) -> float:
    """Completed requests per second over the span of the run."""
    done: List[Request] = [r for r in requests if r.completed]
    if len(done) < 2:
        return 0.0
    start = min(r.arrival for r in done)
    end = max(r.finished for r in done)  # type: ignore[type-var]
    if end <= start:
        return 0.0
    return len(done) / (end - start) * 1e9
