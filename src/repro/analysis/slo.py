"""SLO accounting: violation ratios, throughput@SLO, prediction accuracy.

* **throughput@SLO** (Sec. II-A): the highest offered load whose
  measured 99th-percentile latency stays within the SLO target --
  located by sweeping a load grid (the experiment harness supplies the
  run function).
* **prediction accuracy** (Secs. IV, VIII-E): correctly predicted SLO
  violations over total SLO violations.  With migrations active, a
  "violation" means *would have violated without intervention*: either
  it actually violated, or its no-migration counterfactual does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Set, Tuple

from repro.analysis.metrics import percentile
from repro.workload.request import Request


@dataclass(frozen=True)
class SloPolicy:
    """An SLO: latency target at a percentile (default p99, per paper)."""

    target_ns: float
    percentile: float = 99.0

    def __post_init__(self) -> None:
        if self.target_ns <= 0:
            raise ValueError(f"SLO target must be positive, got {self.target_ns}")
        if not 0 < self.percentile < 100:
            raise ValueError(
                f"percentile must be in (0,100), got {self.percentile}"
            )

    @staticmethod
    def from_multiplier(mean_service_ns: float, multiplier: float = 10.0) -> "SloPolicy":
        """The paper's default: p99 target of ``L x`` mean service time."""
        if mean_service_ns <= 0 or multiplier <= 0:
            raise ValueError("mean service and multiplier must be positive")
        return SloPolicy(target_ns=mean_service_ns * multiplier)

    def met_by(self, requests: Sequence[Request]) -> bool:
        """Does the population's tail satisfy the SLO?"""
        return percentile(requests, self.percentile) <= self.target_ns


def violation_ratio(requests: Iterable[Request], slo_ns: float) -> float:
    """Fraction of completed requests whose latency exceeds the target."""
    total = 0
    bad = 0
    for r in requests:
        if not r.completed or r.dropped:
            continue
        total += 1
        if r.latency > slo_ns:
            bad += 1
    if total == 0:
        return 0.0
    return bad / total


def counterfactual_violators(
    requests: Iterable[Request], slo_ns: float
) -> Set[int]:
    """Requests that violated, or would have violated without migration.

    A migrated request whose stamped ``no_migration_eta`` implies a
    latency beyond the SLO counts as a (prevented) violator.
    """
    bad: Set[int] = set()
    for r in requests:
        if not r.completed or r.dropped:
            continue
        if r.latency > slo_ns:
            bad.add(r.req_id)
        elif r.no_migration_eta is not None:
            if (r.no_migration_eta - r.arrival) > slo_ns:
                bad.add(r.req_id)
    return bad


def prediction_accuracy(
    requests: Sequence[Request],
    predicted_ids: Set[int],
    slo_ns: float,
) -> float:
    """Correctly predicted violations / total (counterfactual) violations.

    Returns 1.0 when there were no violations to predict (vacuous truth,
    matching how ">95% accuracy" is reported for the relaxed SLO=20A
    case in Fig. 13c).
    """
    violators = counterfactual_violators(requests, slo_ns)
    if not violators:
        return 1.0
    caught = len(violators & predicted_ids)
    return caught / len(violators)


def find_throughput_at_slo(
    run_at_load: Callable[[float], Sequence[Request]],
    slo: SloPolicy,
    loads: Sequence[float],
) -> Tuple[float, dict]:
    """Sweep ``loads`` (ascending offered rates, requests/s) and return
    the largest one meeting the SLO, plus the per-load p99 map.

    ``run_at_load(rate_rps)`` executes one simulation and returns its
    measured requests.  The sweep runs every point (no early exit) so
    callers can plot the full latency-throughput curve, exactly like the
    Fig. 10 axes.
    """
    if not loads:
        raise ValueError("need at least one load point")
    best = 0.0
    curve: dict = {}
    for rate in loads:
        requests = run_at_load(rate)
        if not any(r.completed for r in requests):
            curve[rate] = float("inf")
            continue
        p = percentile(requests, slo.percentile)
        curve[rate] = p
        if p <= slo.target_ns and rate > best:
            best = rate
    return best, curve
