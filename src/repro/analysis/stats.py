"""Multi-seed statistics for simulation studies.

One seed is an anecdote.  These helpers run a measurement across seeds
and report mean, standard deviation and a Student-t confidence interval
-- the minimum honest reporting for any number that goes in a table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class SeedSweepResult:
    """Aggregate of one metric measured across seeds."""

    values: tuple
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"{self.mean:.4g} +/- {self.ci_half_width:.2g} "
                f"({self.confidence:.0%} CI, n={self.n})")


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> SeedSweepResult:
    """Student-t confidence interval for the mean of ``values``."""
    if len(values) < 2:
        raise ValueError("need at least two values for an interval")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half = t_crit * std / math.sqrt(n)
    return SeedSweepResult(
        values=tuple(values),
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def seed_sweep(
    measure: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> SeedSweepResult:
    """Run ``measure(seed)`` for each seed and aggregate.

    >>> result = seed_sweep(lambda s: float(s % 3), seeds=range(6))
    >>> result.n
    6
    """
    if len(seeds) < 2:
        raise ValueError("need at least two seeds")
    values: List[float] = [float(measure(seed)) for seed in seeds]
    return confidence_interval(values, confidence)


def overlapping(a: SeedSweepResult, b: SeedSweepResult) -> bool:
    """Do two confidence intervals overlap?  (A non-overlap is the
    usual quick screen for 'this difference is probably real'.)"""
    return a.ci_low <= b.ci_high and b.ci_low <= a.ci_high
