"""Plain-text table rendering for benchmark/experiment output.

Every figure/table harness prints its rows through :func:`format_table`
so the regenerated artifacts look uniform and diff cleanly run-to-run.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5]], precision=1))
    a | b
    --+----
    1 | 2.5
    """
    rendered: List[List[str]] = [[_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
