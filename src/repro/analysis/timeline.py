"""Per-request event timelines (opt-in telemetry).

When chasing a tail-latency mystery, percentiles are not enough -- you
want to see *one slow request's life*: when it was steered, how long it
sat in the NetRX, whether it migrated, which worker ran it.  This
module provides a lightweight recorder that systems (or user code) can
feed events into, keyed by request id, plus rendering helpers.

It is deliberately decoupled from the systems: you attach it through
the hooks that already exist (``completion_hooks``, request factories,
or manual ``record`` calls in custom policies), so zero cost is paid
when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.request import Request


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped step in a request's life."""

    time_ns: float
    what: str
    detail: str = ""


@dataclass
class RequestTimeline:
    """All recorded events of one request, in insertion order."""

    req_id: int
    events: List[TimelineEvent] = field(default_factory=list)

    def add(self, time_ns: float, what: str, detail: str = "") -> None:
        self.events.append(TimelineEvent(time_ns, what, detail))

    @property
    def span_ns(self) -> float:
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].time_ns - self.events[0].time_ns

    def render(self) -> str:
        """Human-readable listing with inter-event deltas."""
        lines = [f"request #{self.req_id} ({self.span_ns:.0f} ns total)"]
        previous: Optional[float] = None
        for event in self.events:
            delta = "" if previous is None else f" (+{event.time_ns - previous:.0f})"
            detail = f"  {event.detail}" if event.detail else ""
            lines.append(f"  {event.time_ns:12.1f} ns{delta:>12s}  "
                         f"{event.what}{detail}")
            previous = event.time_ns
        return "\n".join(lines)


class TimelineRecorder:
    """Collects timelines for a (bounded) set of requests.

    ``watch`` limits recording to specific request ids; without it,
    everything is recorded up to ``max_requests`` (memory guard).
    """

    def __init__(self, max_requests: int = 10_000,
                 watch: Optional[set] = None) -> None:
        if max_requests <= 0:
            raise ValueError("max_requests must be positive")
        self.max_requests = int(max_requests)
        self.watch = watch
        self._timelines: Dict[int, RequestTimeline] = {}
        self.dropped = 0

    # ------------------------------------------------------------------
    def _timeline(self, req_id: int) -> Optional[RequestTimeline]:
        if self.watch is not None and req_id not in self.watch:
            return None
        timeline = self._timelines.get(req_id)
        if timeline is None:
            if len(self._timelines) >= self.max_requests:
                self.dropped += 1
                return None
            timeline = RequestTimeline(req_id)
            self._timelines[req_id] = timeline
        return timeline

    def record(self, req_id: int, time_ns: float, what: str,
               detail: str = "") -> None:
        timeline = self._timeline(req_id)
        if timeline is not None:
            timeline.add(time_ns, what, detail)

    def record_lifecycle(self, request: Request) -> None:
        """Back-fill the standard lifecycle from a completed request's
        timestamps (arrival / enqueued / started / finished plus
        migration count) -- the one-call integration for completion
        hooks."""
        timeline = self._timeline(request.req_id)
        if timeline is None:
            return
        timeline.add(request.arrival, "nic_arrival")
        if request.enqueued is not None:
            timeline.add(request.enqueued, "enqueued",
                         f"queue_len={request.queue_len_at_arrival}")
        if request.migrations:
            timeline.add(request.enqueued or request.arrival, "migrated",
                         f"hops={request.migrations}")
        if request.started is not None:
            timeline.add(request.started, "started",
                         f"core={request.core_id}")
        if request.finished is not None:
            timeline.add(request.finished, "finished",
                         f"latency={request.latency:.0f}ns")

    # ------------------------------------------------------------------
    def get(self, req_id: int) -> Optional[RequestTimeline]:
        return self._timelines.get(req_id)

    def slowest(self, n: int = 5) -> List[RequestTimeline]:
        """The n longest-spanning recorded timelines (tail suspects)."""
        if n <= 0:
            raise ValueError("n must be positive")
        return sorted(self._timelines.values(),
                      key=lambda t: -t.span_ns)[:n]

    def __len__(self) -> int:
        return len(self._timelines)
