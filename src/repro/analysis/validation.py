"""Simulator validation against closed-form queueing theory.

A scheduling simulator is only as credible as its queueing behaviour.
This module pins the DES against textbook results:

* **M/M/1** mean wait: ``rho/(1-rho) * S``
* **M/D/1** (Pollaczek-Khinchine with CV^2=0): half the M/M/1 wait
* **M/G/1** (P-K): ``rho/(1-rho) * (1+CV^2)/2 * S``
* **M/M/k** (Erlang-C): ``C_k(A)/(k*(1-rho)) * S``

:func:`validate_simulator` runs each canonical configuration through
the ideal c-FCFS substrate and reports measured-vs-predicted mean waits
with relative errors.  The benchmark suite gates on these errors, so a
regression in the engine's queueing fidelity fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.prediction import erlang_c
from repro.workload.service import (
    Bimodal,
    Exponential,
    Fixed,
    ServiceDistribution,
)


def mm1_mean_wait_ns(rho: float, mean_service_ns: float) -> float:
    """M/M/1 mean queueing delay."""
    _check(rho, mean_service_ns)
    return rho / (1.0 - rho) * mean_service_ns


def mg1_mean_wait_ns(rho: float, mean_service_ns: float,
                     squared_cv: float) -> float:
    """Pollaczek-Khinchine: M/G/1 mean queueing delay."""
    _check(rho, mean_service_ns)
    if squared_cv < 0:
        raise ValueError(f"squared CV must be >= 0, got {squared_cv}")
    return rho / (1.0 - rho) * (1.0 + squared_cv) / 2.0 * mean_service_ns


def md1_mean_wait_ns(rho: float, mean_service_ns: float) -> float:
    """M/D/1 mean queueing delay (P-K at CV^2 = 0)."""
    return mg1_mean_wait_ns(rho, mean_service_ns, 0.0)


def mmk_mean_wait_ns(k: int, rho: float, mean_service_ns: float) -> float:
    """Erlang-C: M/M/k mean queueing delay."""
    _check(rho, mean_service_ns)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    load = rho * k
    return erlang_c(k, load) / (k * (1.0 - rho)) * mean_service_ns


def _check(rho: float, mean_service_ns: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0,1), got {rho}")
    if mean_service_ns <= 0:
        raise ValueError(f"mean service must be positive, got {mean_service_ns}")


@dataclass(frozen=True)
class ValidationPoint:
    """One measured-vs-theory comparison."""

    model: str
    k: int
    rho: float
    predicted_wait_ns: float
    measured_wait_ns: float

    @property
    def relative_error(self) -> float:
        if self.predicted_wait_ns == 0:
            return 0.0 if self.measured_wait_ns == 0 else float("inf")
        return abs(self.measured_wait_ns - self.predicted_wait_ns) / (
            self.predicted_wait_ns
        )


def _measure_wait(
    k: int, rho: float, service: ServiceDistribution, n_requests: int,
    seed: int,
) -> float:
    from repro.api import run_workload
    from repro.schedulers.jbsq import ideal_cfcfs
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.workload.arrivals import PoissonArrivals

    sim, streams = Simulator(), RandomStreams(seed)
    system = ideal_cfcfs(sim, streams, k)
    rate = rho * k / service.mean * 1e9
    result = run_workload(
        system, sim, streams, PoissonArrivals(rate), service,
        n_requests=n_requests, warmup_fraction=0.2,
    )
    # Wait = latency - service - NIC delivery (30 ns hw-terminated).
    waits = [r.latency - r.service_time - 30.0 for r in result.requests]
    return sum(waits) / len(waits)


def validate_simulator(n_requests: int = 120_000,
                       seed: int = 29) -> List[ValidationPoint]:
    """Run the canonical queueing configurations and compare.

    Returns one :class:`ValidationPoint` per model; relative errors of
    a healthy simulator sit well under 10% at this sample size.
    """
    service_ns = 1_000.0
    bimodal = Bimodal(500.0, 5_500.0, 0.1)
    cases = [
        ("M/M/1", 1, 0.7, Exponential(service_ns),
         mm1_mean_wait_ns(0.7, service_ns)),
        ("M/D/1", 1, 0.7, Fixed(service_ns),
         md1_mean_wait_ns(0.7, service_ns)),
        ("M/G/1", 1, 0.7, bimodal,
         mg1_mean_wait_ns(0.7, bimodal.mean, bimodal.squared_cv)),
        ("M/M/8", 8, 0.8, Exponential(service_ns),
         mmk_mean_wait_ns(8, 0.8, service_ns)),
        ("M/M/64", 64, 0.9, Exponential(service_ns),
         mmk_mean_wait_ns(64, 0.9, service_ns)),
    ]
    points: List[ValidationPoint] = []
    for name, k, rho, service, predicted in cases:
        measured = _measure_wait(k, rho, service, n_requests, seed)
        points.append(ValidationPoint(
            model=name, k=k, rho=rho,
            predicted_wait_ns=predicted, measured_wait_ns=measured,
        ))
    return points
