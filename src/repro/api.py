"""The public facade: build a system, run a workload, get measurements.

This module is the supported entry point for downstream users.  It hides
the wiring (simulator + RNG streams + NIC + scheduler + load generator)
behind three calls:

* :func:`build_system` -- construct any scheduler by name.
* :func:`run_workload` -- drive a workload through a system and return a
  :class:`SimulationResult`.
* :func:`quick_run` -- one-call convenience for the common case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from repro.analysis.metrics import (
    LatencySummary,
    achieved_throughput_rps,
    summarize_latencies,
)
from repro.analysis.slo import violation_ratio
from repro.core.config import AltocumulusConfig
from repro.control import ControlConfig, ControlLoop, active_control_config
from repro.faults import FaultInjector, FaultPlan, RetryClient, active_fault_plan
from repro.core.scheduler import AltocumulusSystem
from repro.hw.constants import DEFAULT_CONSTANTS
from repro.hw.nic import PcieDelivery
from repro.schedulers.base import RpcSystem
from repro.schedulers.centralized import ShinjukuSystem
from repro.schedulers.jbsq import ideal_cfcfs, nanopu, nebula, rpcvalet
from repro.schedulers.rss import IxSystem, RssSystem
from repro.schedulers.rss_plus_plus import RssPlusPlusSystem
from repro.schedulers.work_stealing import ZygosSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import record_run
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.generator import LoadGenerator
from repro.workload.jobs import (
    Job,
    JobLoadGenerator,
    JobShape,
    JobTracker,
    system_supports_gang,
)
from repro.kvs.ownership import KvsSpec
from repro.kvs.wiring import wire_kvs
from repro.workload.request import Request
from repro.workload.service import Exponential, ServiceDistribution

#: A very long horizon; runs normally stop on request-count completion.
_MAX_HORIZON_NS = 10**15


@dataclass
class JobRunSummary:
    """Job-level outcome of a job-structured run (``None`` otherwise).

    The same numbers also travel flat under the ``job.*`` namespace of
    ``SimulationResult.extra`` so they cross the sweep runner's process
    boundary and cache without any schema change.
    """

    #: Jobs emitted / completed (all siblings ok) / dropped (any failed).
    count: int
    completed: int
    dropped: int
    #: Total sub-requests scattered (what the system's ``expect`` saw).
    subrequests: int
    mean_fanout: float
    mean_core_demand: float
    #: Job latency (scatter to last sibling response), post-warmup.
    latency: LatencySummary
    #: Per-job records, for job-level analysis hooks.
    records: Sequence[Job] = field(default_factory=tuple)


@dataclass
class SimulationResult:
    """Everything a caller needs after one run."""

    system_name: str
    requests: Sequence[Request]
    latency: LatencySummary
    throughput_rps: float
    offered_rps: float
    sim_time_ns: float
    utilization: float
    dropped: int
    extra: Dict[str, float] = field(default_factory=dict)
    #: Flat snapshot of the system's telemetry registry at shutdown
    #: (``system.*``, ``noc.*``, ``messaging.m<i>.*``, ``cluster.*``...).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The system instance, for post-run introspection (e.g. the
    #: Altocumulus ``predicted_ids`` set feeding prediction accuracy).
    system: Optional[RpcSystem] = None
    #: Job-level summary for job-structured runs (``None`` when the
    #: workload was flat or its job shape was trivial).
    jobs: Optional[JobRunSummary] = None

    def violation_ratio(self, slo_ns: float) -> float:
        """Fraction of measured requests exceeding ``slo_ns``."""
        return violation_ratio(self.requests, slo_ns)


SystemFactory = Callable[[Simulator, RandomStreams, int], RpcSystem]

_BUILDERS: Dict[str, SystemFactory] = {}


def register_system(name: str, factory: SystemFactory) -> None:
    """Register a custom system under ``name`` for :func:`build_system`."""
    if name in _BUILDERS:
        raise ValueError(f"system {name!r} is already registered")
    _BUILDERS[name] = factory


def _register_defaults() -> None:
    c = DEFAULT_CONSTANTS
    _BUILDERS.update(
        {
            "rss": lambda s, r, n: RssSystem(s, r, n, delivery=PcieDelivery(c)),
            "rsspp": lambda s, r, n: RssPlusPlusSystem(
                s, r, n, delivery=PcieDelivery(c)
            ),
            "ix": lambda s, r, n: IxSystem(s, r, n, delivery=PcieDelivery(c)),
            "zygos": lambda s, r, n: ZygosSystem(s, r, n, delivery=PcieDelivery(c)),
            "shinjuku": lambda s, r, n: ShinjukuSystem(
                s, r, n, delivery=PcieDelivery(c)
            ),
            "rpcvalet": lambda s, r, n: rpcvalet(s, r, n),
            "nebula": lambda s, r, n: nebula(s, r, n),
            "nanopu": lambda s, r, n: nanopu(s, r, n),
            "cfcfs": lambda s, r, n: ideal_cfcfs(s, r, n),
            "altocumulus": lambda s, r, n: AltocumulusSystem(
                s, r, _default_ac_config(n)
            ),
            "rack": _default_rack,
            "datacenter": _default_datacenter,
        }
    )


def _default_rack(sim: Simulator, streams: RandomStreams, n_cores: int):
    """The cluster tier behind the one-server API: ``n_cores`` total
    cores split over four Altocumulus servers (one server when the count
    doesn't divide), steered by power-of-two-choices.  Full control over
    rack shape lives in :mod:`repro.cluster`."""
    from repro.cluster.topology import RackConfig, build_rack

    n_servers = 4 if n_cores % 4 == 0 and n_cores >= 8 else 1
    config = RackConfig(
        n_servers=n_servers,
        cores_per_server=n_cores // n_servers,
        system="altocumulus",
        policy="power_of_d",
        d=2,
    )
    return build_rack(sim, streams, config)


def _default_datacenter_config(n_cores: int):
    """Fabric shape behind the one-server API: ``n_cores`` total cores
    split over 2 racks x 2 Altocumulus servers (one rack of one server
    when the count doesn't divide), with power-of-two steering inside
    each rack and shortest-expected-wait steering across racks."""
    from repro.cluster.topology import RackConfig
    from repro.datacenter.topology import DatacenterConfig

    n_racks, n_servers = (2, 2) if n_cores % 4 == 0 and n_cores >= 8 else (1, 1)
    return DatacenterConfig(
        n_racks=n_racks,
        rack=RackConfig(
            n_servers=n_servers,
            cores_per_server=n_cores // (n_racks * n_servers),
            system="altocumulus",
            policy="power_of_d",
            d=2,
        ),
        policy="shortest_wait",
    )


def _default_datacenter(sim: Simulator, streams: RandomStreams, n_cores: int):
    """The fabric tier behind the one-server API; full control over
    fabric shape lives in :mod:`repro.datacenter`."""
    from repro.datacenter.topology import build_topology

    return build_topology(sim, streams, _default_datacenter_config(n_cores))


def _default_ac_config(n_cores: int) -> AltocumulusConfig:
    """Split ``n_cores`` into 16-core groups (the paper's tuned size)."""
    if n_cores % 16 == 0 and n_cores > 16:
        return AltocumulusConfig(n_groups=n_cores // 16, group_size=16)
    return AltocumulusConfig(n_groups=1, group_size=n_cores)


def available_systems() -> Sequence[str]:
    """Names accepted by :func:`build_system`."""
    return sorted(_BUILDERS)


def build_system(
    name: str,
    sim: Simulator,
    streams: RandomStreams,
    n_cores: int,
) -> RpcSystem:
    """Construct a registered scheduling system."""
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown system {name!r}; available: {', '.join(available_systems())}"
        )
    return _BUILDERS[name](sim, streams, n_cores)


def run_workload(
    system: RpcSystem,
    sim: Simulator,
    streams: RandomStreams,
    arrivals: ArrivalProcess,
    service: ServiceDistribution,
    n_requests: int,
    warmup_fraction: float = 0.1,
    connections: Optional[ConnectionPool] = None,
    request_factory: Optional[Callable[[Request], None]] = None,
    size_bytes: int = 300,
    faults: Optional[FaultPlan] = None,
    control: Optional[ControlConfig] = None,
    jobs: Optional[JobShape] = None,
    kvs: Optional[KvsSpec] = None,
) -> SimulationResult:
    """Drive a workload through ``system`` to completion and measure it.

    With a :class:`~repro.kvs.KvsSpec`, a MICA store + ownership table +
    workload are built (deterministically from the streams' master seed)
    and wired into every leaf of ``system``: the workload supplies the
    ``request_factory`` and its ``execute`` hook runs each op against
    the store under the spec's concurrency discipline, surfacing
    ``kvs.*`` and ``kvs.ownership.*`` instruments in ``metrics``.
    Mutually exclusive with an explicit ``request_factory``.

    With a non-trivial :class:`~repro.workload.jobs.JobShape`,
    ``n_requests`` counts *jobs*: each scatters its fan-out of sibling
    sub-requests at one arrival instant (completing on the last
    response) and/or demands multiple cores simultaneously (gang
    admission -- the system must declare ``supports_gang``).  The
    trivial shape (fan-out 1, demand 1) and ``jobs=None`` compile down
    to the flat ``Request`` path bit-identically: no ``"jobs"`` stream
    draw, no tracker, nothing.

    With a :class:`~repro.faults.FaultPlan` (passed explicitly, or
    ambient via :func:`repro.faults.use_fault_plan`), a
    :class:`~repro.faults.FaultInjector` drives the plan into the system
    and a :class:`~repro.faults.RetryClient` sits between the generator
    and the system: it owns delivery (timeouts, capped-backoff retries,
    duplicate detection) *and* termination, since one logical request may
    cost several attempts.  Without a plan this function is byte-for-byte
    the fault-free fast path.

    With a :class:`~repro.control.ControlConfig` (passed explicitly, or
    ambient via :func:`repro.control.use_controller`), a
    :class:`~repro.control.ControlLoop` senses the system's telemetry
    every control epoch and lets the configured controller actuate
    steering, threshold, drain, and capacity knobs mid-run.
    """
    if kvs is not None:
        if request_factory is not None:
            raise ValueError(
                "pass either kvs= or request_factory=, not both"
            )
        workload = wire_kvs(system, sim, kvs, seed=streams.master_seed)
        request_factory = workload.request_factory
    plan = faults if faults is not None else active_fault_plan()
    injector: Optional[FaultInjector] = None
    client: Optional[RetryClient] = None
    if plan is not None:
        injector = FaultInjector(sim, streams, plan, system)
        client = RetryClient(
            sim,
            streams,
            system,
            plan.retry,
            ingress=injector.ingress,
            response_delivered=injector.response_delivered,
        )
    control_cfg = control if control is not None else active_control_config()
    loop: Optional[ControlLoop] = None
    if control_cfg is not None:
        # Built after the injector so the loop senses the fault
        # instruments, before the generator so epoch 0 starts at t=0.
        loop = ControlLoop(sim, streams, control_cfg, system)
    sink = client.send if client is not None else system.offer
    tracker: Optional[JobTracker] = None
    if jobs is not None and not jobs.is_trivial:
        if jobs.core_demand.max_value > 1 and not system_supports_gang(system):
            raise ValueError(
                f"system {system.name!r} does not support multi-core gang "
                "jobs (core_demand > 1); use a gang-capable scheduler "
                "(altocumulus, jbsq variants) at every leaf"
            )
        tracker = JobTracker(sim, trace=getattr(system, "trace", None))
        generator = JobLoadGenerator(
            sim,
            streams,
            arrivals,
            service,
            sink=sink,
            n_jobs=n_requests,
            shape=jobs,
            tracker=tracker,
            size_bytes=size_bytes,
            connections=connections,
            request_factory=request_factory,
            warmup_fraction=warmup_fraction,
        )
        expected = generator.total_subrequests
        if client is not None:
            tracker.attach_client(client)
            client.expect(expected)
        else:
            tracker.attach_system(system)
            system.expect(expected)
    else:
        generator = LoadGenerator(
            sim,
            streams,
            arrivals,
            service,
            sink=sink,
            n_requests=n_requests,
            size_bytes=size_bytes,
            connections=connections,
            request_factory=request_factory,
            warmup_fraction=warmup_fraction,
        )
        if client is not None:
            client.expect(n_requests)
        else:
            system.expect(n_requests)
    generator.start()
    sim.run(until=_MAX_HORIZON_NS)
    if injector is not None:
        injector.finalize()
    if client is not None:
        client.finalize()
    if loop is not None:
        loop.finalize()
    system.shutdown()
    measured = generator.measured_requests()
    job_summary: Optional[JobRunSummary] = None
    if tracker is not None:
        # Distill the job-level outcome into the ``job.*`` namespace
        # (after shutdown's own scoped writes, before the registry
        # snapshot, so it rides ``extra`` through the sweep cache).
        measured_jobs = generator.measured_jobs()
        job_latency = summarize_latencies(measured_jobs)
        n_jobs = len(generator.jobs)
        job_summary = JobRunSummary(
            count=n_jobs,
            completed=tracker.completed_jobs,
            dropped=tracker.dropped_jobs,
            subrequests=generator.total_subrequests,
            mean_fanout=generator.total_subrequests / n_jobs,
            mean_core_demand=sum(generator._demands) / n_jobs,
            latency=job_latency,
            records=tuple(generator.jobs),
        )
        scoped = system.stats.scoped("job")
        scoped.put("count", job_summary.count)
        scoped.put("completed", job_summary.completed)
        scoped.put("dropped", job_summary.dropped)
        scoped.put("subrequests", job_summary.subrequests)
        scoped.put("measured", job_latency.count)
        scoped.put("mean_fanout", job_summary.mean_fanout)
        scoped.put("mean_core_demand", job_summary.mean_core_demand)
        if job_latency.count:
            scoped.put("mean_ns", job_latency.mean)
            scoped.put("p50_ns", job_latency.p50)
            scoped.put("p99_ns", job_latency.p99)
            scoped.put("max_ns", job_latency.maximum)
    registry = getattr(system, "metrics", None)
    metrics_snapshot = registry.snapshot() if registry is not None else {}
    record_run(system.name, metrics_snapshot)
    return SimulationResult(
        system_name=system.name,
        requests=measured,
        latency=summarize_latencies(measured),
        throughput_rps=achieved_throughput_rps(measured),
        offered_rps=arrivals.mean_rate * 1e9,
        sim_time_ns=sim.now,
        utilization=system.utilization(sim.now),
        dropped=system.stats.dropped,
        extra=dict(system.stats.extra),
        metrics=metrics_snapshot,
        system=system,
        jobs=job_summary,
    )


def quick_run(
    system: str = "altocumulus",
    n_cores: int = 16,
    rate_rps: float = 1e6,
    mean_service_ns: float = 1000.0,
    n_requests: int = 50_000,
    seed: int = 1,
    service: Optional[ServiceDistribution] = None,
    faults: Optional[FaultPlan] = None,
    shards: Optional[int] = None,
    shard_mode: str = "process",
    control: Optional[ControlConfig] = None,
    jobs: Optional[JobShape] = None,
    kvs: Optional[KvsSpec] = None,
) -> SimulationResult:
    """One-call simulation: Poisson arrivals, exponential service by
    default, 10% warmup discarded.

    ``shards`` switches the datacenter tier to sharded parallel-in-time
    execution (see :mod:`repro.datacenter.sharded`); results are
    bit-identical to the serial run.  ``shards=1`` is the sharded
    machinery with one shard (the overhead baseline), ``None`` (default)
    is the plain serial engine.  ``shard_mode`` is ``"process"`` or
    ``"inprocess"``.  ``control`` attaches an adaptive control loop; it
    does not compose with sharded execution (a controller's global
    actuations would break the shards' conservative-lookahead contract).
    """
    streams = RandomStreams(seed)
    if shards is not None:
        if kvs is not None:
            raise ValueError(
                "a KvsSpec does not compose with sharded execution: the "
                "shared store would break the shards' isolation; pass "
                "shards=None when kvs is set"
            )
        if control is not None:
            raise ValueError(
                "controllers do not compose with sharded execution: "
                "pass shards=None when a ControlConfig is attached"
            )
        if system != "datacenter":
            raise ValueError(
                f"shards is only supported for system='datacenter', "
                f"got {system!r}"
            )
        from repro.datacenter.sharded import build_sharded_topology
        from repro.sim.sharded import ShardedSimulator

        sim = ShardedSimulator()
        built = build_sharded_topology(
            sim, streams, _default_datacenter_config(n_cores),
            shards, mode=shard_mode,
        )
    else:
        sim = Simulator()
        built = build_system(system, sim, streams, n_cores)
    return run_workload(
        built,
        sim,
        streams,
        arrivals=PoissonArrivals(rate_rps),
        service=service or Exponential(mean_service_ns),
        n_requests=n_requests,
        faults=faults,
        control=control,
        jobs=jobs,
        kvs=kvs,
    )


_register_defaults()
