"""The rack-scale cluster tier: many servers behind one ToR switch.

Altocumulus schedules nanosecond-scale RPCs *within* one server; this
package scales the reproduction to a rack of such servers fronted by a
top-of-rack switch model and a pluggable inter-server steering layer
(the RackSched/Rain design point).  A :class:`RackCluster` quacks like a
single :class:`~repro.schedulers.base.RpcSystem`, so the whole existing
stack -- :func:`repro.api.run_workload`, the sweep runner and its cache,
the analysis layer -- drives a rack unchanged::

    from repro import quick_run

    result = quick_run(system="rack", n_cores=64)   # 4 servers x 16

or, with full control::

    from repro.cluster import RackConfig, build_rack

    rack = build_rack(sim, streams, RackConfig(
        n_servers=8, cores_per_server=16, system="altocumulus",
        policy="power_of_d", d=2, staleness_ns=5_000.0))
"""

from repro.cluster.metrics import (
    cluster_summary,
    imbalance_index,
    per_server_completed,
    per_server_latency,
    per_server_utilization,
)
from repro.cluster.policies import (
    POLICY_NAMES,
    ConnectionHashSteering,
    PowerOfDSteering,
    RoundRobinSteering,
    ShortestExpectedWaitSteering,
    SteeringPolicy,
    make_policy,
)
from repro.cluster.switch import ToRSwitch
from repro.cluster.topology import RackCluster, RackConfig, build_rack

__all__ = [
    "ConnectionHashSteering",
    "POLICY_NAMES",
    "PowerOfDSteering",
    "RackCluster",
    "RackConfig",
    "RoundRobinSteering",
    "ShortestExpectedWaitSteering",
    "SteeringPolicy",
    "ToRSwitch",
    "build_rack",
    "cluster_summary",
    "imbalance_index",
    "make_policy",
    "per_server_completed",
    "per_server_latency",
    "per_server_utilization",
]
