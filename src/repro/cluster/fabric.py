"""Shared completion/in-flight bookkeeping for fabric tiers.

:class:`RackCluster` and :class:`Datacenter` both present the
:class:`~repro.schedulers.base.RpcSystem` duck interface over a set of
member systems, and both used to re-implement the same terminal
accounting: count member completions and drops into their own
``SystemStats``, fan the terminals out to attached hooks (the retry
client, the job tracker), and stop the simulator once ``expect(n)``
terminals have been observed.  :class:`FabricBookkeeping` is that logic,
once.

A tier mixes it in, calls :meth:`_init_fabric` during construction, and
wires its members' ``completion_hooks``/``drop_hooks`` (and its switch
drop callback) to :meth:`_member_completed` / :meth:`_member_dropped`.
Tier-specific per-completion accounting (the datacenter's tenant SLO
attainment) goes in the :meth:`_account_completion` override -- a no-op
here, so the rack tier pays nothing for the seam.
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.request import Request


class FabricBookkeeping:
    """Terminal accounting shared by the rack and datacenter tiers.

    Expects the host class to provide ``sim`` (the simulator) and
    ``stats`` (a :class:`~repro.schedulers.base.SystemStats`).
    """

    def _init_fabric(self) -> None:
        """Initialize terminal-accounting state (call in ``__init__``)."""
        self._expected: Optional[int] = None
        #: Tier-level terminal hooks, mirroring RpcSystem's: fired after
        #: the tier's own accounting for every member completion, member
        #: drop, and switch tail-drop.  The fault-injection retry client
        #: and the job tracker attach here.
        self.completion_hooks: List[object] = []
        self.drop_hooks: List[object] = []

    # ------------------------------------------------------------------
    def expect(self, n_requests: int) -> None:
        """Stop the simulation once ``n_requests`` terminate anywhere in
        the fabric (completed at a member, dropped at a member, or
        dropped at this tier's switch)."""
        if n_requests <= 0:
            raise ValueError(
                f"expected count must be positive, got {n_requests}"
            )
        self._expected = n_requests

    # ------------------------------------------------------------------
    def _account_completion(self, request: Request) -> None:
        """Tier-specific per-completion accounting (template method)."""

    def _member_completed(self, request: Request) -> None:
        self.stats.completed += 1
        self._account_completion(request)
        for hook in self.completion_hooks:
            hook(request)
        self._check_done()

    def _member_dropped(self, request: Request) -> None:
        self.stats.dropped += 1
        for hook in self.drop_hooks:
            hook(request)
        self._check_done()

    def _switch_dropped(self, request: Request, port: int) -> None:
        """Tail-drop callback for this tier's switch (port is unused by
        the accounting but part of the switch's drop signature)."""
        self._member_dropped(request)

    def _check_done(self) -> None:
        if (
            self._expected is not None
            and self.stats.completed + self.stats.dropped >= self._expected
        ):
            self.sim.stop()


__all__ = ["FabricBookkeeping"]
