"""Cluster-wide measurement: aggregation, imbalance, steering counters.

The rack tier's evaluation questions are distributional -- how unevenly
did load land across servers, where did the tail come from, what did
steering decide -- so this module turns a finished
:class:`~repro.cluster.topology.RackCluster` into small summaries:

* :func:`imbalance_index` -- max/mean of any per-server quantity (1.0 is
  perfect balance; N is everything-on-one-server for an N-server rack).
* :func:`per_server_latency` -- one :class:`LatencySummary` per server.
* :func:`cluster_summary` -- the flat ``dict`` of floats the rack stuffs
  into ``stats.extra`` at shutdown, so every sweep point carries its
  cluster metrics through the runner cache for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.analysis.metrics import LatencySummary, summarize_latencies

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.topology import RackCluster


def imbalance_index(counts: Sequence[float]) -> float:
    """Max-over-mean of a per-server quantity.

    1.0 means perfectly balanced; ``len(counts)`` means one server took
    everything.  0.0 when the rack saw no traffic at all.
    """
    if not counts:
        return 0.0
    total = float(sum(counts))
    if total <= 0:
        return 0.0
    mean = total / len(counts)
    return max(counts) / mean


def per_server_completed(rack: "RackCluster") -> List[int]:
    """Completed-request count per server."""
    return [server.stats.completed for server in rack.servers]


def per_server_latency(rack: "RackCluster") -> List[LatencySummary]:
    """Latency summary of each server's completed requests."""
    return [
        summarize_latencies(server.finished_requests)
        for server in rack.servers
    ]


def per_server_utilization(rack: "RackCluster", elapsed_ns: float) -> List[float]:
    """Mean core utilization per server over ``elapsed_ns``."""
    return [server.utilization(elapsed_ns) for server in rack.servers]


def cluster_summary(rack: "RackCluster") -> Dict[str, float]:
    """Flat float-valued metrics for ``stats.extra`` (runner-cacheable).

    Keys:

    * ``imbalance_index`` -- max/mean of per-server completions.
    * ``steer_imbalance`` -- max/mean of steering decisions (how uneven
      the *policy* was, before any queueing happened).
    * ``steer_srv<i>`` -- requests steered to each server.
    * ``switch_dropped`` / ``switch_queue_wait_ns`` -- ToR accounting.
    * ``steer_refreshes`` (power-of-d) / ``steer_samples``
      (shortest-wait) -- how much telemetry the policy consumed.
    """
    summary: Dict[str, float] = {
        "imbalance_index": imbalance_index(per_server_completed(rack)),
        "steer_imbalance": imbalance_index(rack.policy.decisions),
        "switch_dropped": float(rack.switch.dropped),
        "switch_queue_wait_ns": rack.switch.queue_wait_ns,
    }
    for i, count in enumerate(rack.policy.decisions):
        summary[f"steer_srv{i}"] = float(count)
    refreshes = getattr(rack.policy, "refreshes", None)
    if refreshes is not None:
        summary["steer_refreshes"] = float(refreshes)
    samples = getattr(rack.policy, "samples_taken", None)
    if samples is not None:
        summary["steer_samples"] = float(samples)
    return summary
