"""Cluster-wide measurement: aggregation, imbalance, steering counters.

The rack tier's evaluation questions are distributional -- how unevenly
did load land across servers, where did the tail come from, what did
steering decide -- so this module turns a finished
:class:`~repro.cluster.topology.RackCluster` into small summaries:

* :func:`imbalance_index` -- max/mean of any per-server quantity (1.0 is
  perfect balance; N is everything-on-one-server for an N-server rack).
* :func:`per_server_latency` -- one :class:`LatencySummary` per server.
* :func:`register_cluster_instruments` -- bind the same quantities into
  the rack's :class:`~repro.telemetry.MetricRegistry` as live
  ``cluster.*`` instruments.
* :func:`cluster_summary` -- the flat ``dict`` the rack writes through
  its ``stats.scoped("cluster")`` adapter at shutdown, so every sweep
  point carries its cluster metrics through the runner cache for free.
  Pure counts stay ints; only genuinely fractional quantities are
  floats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Union

from repro.analysis.metrics import LatencySummary, summarize_latencies

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.topology import RackCluster
    from repro.telemetry import MetricRegistry


def imbalance_index(counts: Sequence[float]) -> float:
    """Max-over-mean of a per-server quantity.

    1.0 means perfectly balanced; ``len(counts)`` means one server took
    everything.  0.0 when the rack saw no traffic at all.
    """
    if not counts:
        return 0.0
    total = float(sum(counts))
    if total <= 0:
        return 0.0
    mean = total / len(counts)
    return max(counts) / mean


def per_server_completed(rack: "RackCluster") -> List[int]:
    """Completed-request count per server."""
    return [server.stats.completed for server in rack.servers]


def per_server_latency(rack: "RackCluster") -> List[LatencySummary]:
    """Latency summary of each server's completed requests."""
    return [
        summarize_latencies(server.finished_requests)
        for server in rack.servers
    ]


def per_server_utilization(rack: "RackCluster", elapsed_ns: float) -> List[float]:
    """Mean core utilization per server over ``elapsed_ns``."""
    return [server.utilization(elapsed_ns) for server in rack.servers]


def cluster_summary(rack: "RackCluster") -> Dict[str, Union[int, float]]:
    """Flat metrics the rack writes via ``stats.scoped("cluster")``.

    Keys:

    * ``imbalance_index`` -- max/mean of per-server completions.
    * ``steer_imbalance`` -- max/mean of steering decisions (how uneven
      the *policy* was, before any queueing happened).
    * ``steer_srv<i>`` -- requests steered to each server.
    * ``switch_dropped`` / ``switch_queue_wait_ns`` -- ToR accounting.
    * ``steer_refreshes`` (power-of-d) / ``steer_samples``
      (shortest-wait) -- how much telemetry the policy consumed.

    Counts are ints (a JSON reader sees ``steer_srv0: 812``, not
    ``812.0``); ratios and cumulative times are floats.
    """
    summary: Dict[str, Union[int, float]] = {
        "imbalance_index": imbalance_index(per_server_completed(rack)),
        "steer_imbalance": imbalance_index(rack.policy.decisions),
        "switch_dropped": int(rack.switch.dropped),
        "switch_queue_wait_ns": rack.switch.queue_wait_ns,
    }
    for i, count in enumerate(rack.policy.decisions):
        summary[f"steer_srv{i}"] = int(count)
    refreshes = getattr(rack.policy, "refreshes", None)
    if refreshes is not None:
        summary["steer_refreshes"] = int(refreshes)
    samples = getattr(rack.policy, "samples_taken", None)
    if samples is not None:
        summary["steer_samples"] = int(samples)
    return summary


def register_cluster_instruments(
    rack: "RackCluster", registry: "MetricRegistry"
) -> None:
    """Bind live ``cluster.*`` instruments for a rack into ``registry``.

    Complements :func:`cluster_summary`: the summary is a one-shot dict
    for the legacy ``extra`` channel, while these instruments read the
    same live state at every registry snapshot.
    """
    registry.gauge(
        "cluster.imbalance_index",
        fn=lambda: imbalance_index(per_server_completed(rack)),
    )
    registry.gauge(
        "cluster.steer_imbalance",
        fn=lambda: imbalance_index(rack.policy.decisions),
    )
    for i in range(len(rack.servers)):
        registry.counter(
            f"cluster.steer_srv{i}",
            fn=lambda i=i: int(rack.policy.decisions[i]),
        )
    refreshes = getattr(rack.policy, "refreshes", None)
    if refreshes is not None:
        registry.counter(
            "cluster.steer_refreshes",
            fn=lambda: int(rack.policy.refreshes),
        )
    samples = getattr(rack.policy, "samples_taken", None)
    if samples is not None:
        registry.counter(
            "cluster.steer_samples",
            fn=lambda: int(rack.policy.samples_taken),
        )
