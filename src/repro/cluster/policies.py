"""Inter-server steering policies for the rack tier.

These decide, per arriving request, which server in the rack receives
it -- the rack-level analogue of the per-server NIC steering in
:class:`repro.hw.nic.RssSteering`.  RackSched's observation (and the
reason this tier exists) is that nanosecond-scale intra-server
scheduling cannot bound rack tails on its own: a load-oblivious
inter-server layer can pin a hot flow to one server and overload it
while its neighbours idle, no matter how well each server schedules
internally.

Six policies span the design space (four load-(un)aware classics plus
the two job-sibling routing endpoints, :class:`StickyJobSteering` and
:class:`SpreadJobSteering`):

* :class:`ConnectionHashSteering` -- hash the flow id to a server (what
  an ECMP/RSS-style fabric does today).  Load-oblivious; hot flows pin.
* :class:`RoundRobinSteering` -- strict rotation.  Balanced in request
  *count* but blind to service-time and queue-depth skew.
* :class:`PowerOfDSteering` -- join-the-shortest-queue over ``d``
  uniformly sampled servers ("power of d choices"), driven by queue
  estimates that may be configurably stale, modelling an in-network
  agent whose per-server state refreshes at telemetry granularity
  rather than per packet (the Rain/RackSched in-network sampling
  regime).  Between refreshes the policy tracks its own sends
  optimistically, as RackSched's request counters do.
* :class:`ShortestExpectedWaitSteering` -- RackSched's inter-server
  policy: periodic load samples of *every* server, steering to the
  minimum expected wait (outstanding work normalized by service
  capacity), with optimistic in-flight tracking between samples.

Policies observe server load through a ``probe`` callable supplied by
the rack (outstanding = offered - completed - dropped); they never
reach into scheduler internals, so any registered per-server system
works behind any policy.

Health awareness: every policy holds a ``health`` view
(:data:`repro.faults.health.ALL_HEALTHY` until a fault plan replaces it
with a live :class:`~repro.faults.health.HealthView`).  Load-aware
policies (round-robin, power-of-d, shortest-wait) route around downed
servers and bias away from degraded ones -- RackSched's switch-side
failure handling.  Connection-hash deliberately stays oblivious: a real
ECMP/RSS fabric has no health feedback, and the chaos experiment exists
to show what that costs.  The healthy path is guarded by a single
``health.impaired`` attribute check, so fault-free runs remain
bit-identical to the pre-fault engine.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional

import numpy as np

from repro.faults.health import ALL_HEALTHY
from repro.sim.engine import Event, Simulator
from repro.workload.request import Request

#: Policy-name registry; values are the constructor names accepted by
#: :func:`make_policy` and :class:`repro.cluster.topology.RackConfig`.
POLICY_NAMES = (
    "hash", "round_robin", "power_of_d", "shortest_wait", "sticky", "spread",
)

#: Default number of sampled servers for power-of-d choices.
DEFAULT_D = 2

#: Default period between RackSched-style full load samples.
DEFAULT_SAMPLE_PERIOD_NS = 2_000.0

ProbeFn = Callable[[int], float]


class SteeringPolicy(abc.ABC):
    """Base class: picks a destination server per request and counts
    its own decisions (the cluster metrics read ``decisions``)."""

    #: Short policy name, overridden by subclasses.
    name = "abstract"

    def __init__(self, n_servers: int) -> None:
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        self.n_servers = int(n_servers)
        #: Requests steered to each server.
        self.decisions: List[int] = [0] * self.n_servers
        #: Liveness/degradation view; the fault injector swaps in a live
        #: HealthView when a plan is attached.  ALL_HEALTHY's class-level
        #: ``impaired = False`` keeps the healthy path allocation-free.
        self.health = ALL_HEALTHY

    def pick_server(self, request: Request) -> int:
        """Choose the destination server for ``request``."""
        server = self._pick(request)
        self.decisions[server] += 1
        return server

    @abc.abstractmethod
    def _pick(self, request: Request) -> int:
        """Policy-specific choice (template method)."""

    def start(self) -> None:
        """Begin any periodic machinery (load sampling timers)."""

    def shutdown(self) -> None:
        """Cancel any periodic machinery."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} servers={self.n_servers}>"


class ConnectionHashSteering(SteeringPolicy):
    """Hash the flow id to a server, the rack-level RSS/ECMP analogue.

    The same Fibonacci multiplicative hash the NIC-level
    :meth:`~repro.workload.connections.ConnectionPool.hash_to_queue`
    uses: stable per flow, pseudo-random across flows -- and therefore
    exactly as vulnerable to hot flows as real RSS."""

    name = "hash"

    def _pick(self, request: Request) -> int:
        return (request.connection * 2654435761) % (2**32) % self.n_servers


class StickyJobSteering(SteeringPolicy):
    """Hash the *job* id to a server: every sibling sub-request of a
    scatter-gather job lands on the same destination.

    The job-affinity end of the sibling-routing spectrum: one queue
    absorbs the whole scatter, so a k-wide job behaves like a k-request
    burst on one server -- cache/state locality at the cost of the
    self-inflicted incast the spread policy avoids.  Flat requests
    (``job_id is None``) degrade to connection hashing, making this a
    strict generalization of :class:`ConnectionHashSteering`.
    """

    name = "sticky"

    def _pick(self, request: Request) -> int:
        key = request.job_id if request.job_id is not None else request.connection
        return (key * 2654435761) % (2**32) % self.n_servers


class SpreadJobSteering(SteeringPolicy):
    """Stride a job's siblings across distinct servers.

    The anti-affinity end of the spectrum: sibling ``i`` goes to
    ``(job_hash + i) mod n``, so a k <= n scatter touches k distinct
    servers and no single queue absorbs the burst -- the static
    mitigation of the hash blow-up that load-aware policies achieve
    dynamically.  Flat requests degrade to connection hashing.
    """

    name = "spread"

    def _pick(self, request: Request) -> int:
        if request.job_id is None:
            return (request.connection * 2654435761) % (2**32) % self.n_servers
        base = (request.job_id * 2654435761) % (2**32)
        return (base + request.sibling_index) % self.n_servers


class RoundRobinSteering(SteeringPolicy):
    """Strict rotation across servers (load-oblivious but count-balanced)."""

    name = "round_robin"

    def __init__(self, n_servers: int) -> None:
        super().__init__(n_servers)
        self._next = 0

    def _pick(self, request: Request) -> int:
        server = self._next
        self._next = (server + 1) % self.n_servers
        health = self.health
        if health.impaired and not health.usable(server):
            # Skip downed servers, keeping the rotation anchored at the
            # natural slot so recovery resumes the original cadence.
            for offset in range(1, self.n_servers):
                candidate = (server + offset) % self.n_servers
                if health.usable(candidate):
                    return candidate
        return server


class PowerOfDSteering(SteeringPolicy):
    """JSQ over ``d`` sampled servers with configurably-stale estimates.

    With ``staleness_ns == 0`` every decision reads the sampled servers'
    true outstanding load (ideal power-of-d).  With a positive
    staleness, a server's estimate is only re-probed once it is older
    than ``staleness_ns``; in between, the policy adds its own sends to
    the cached value -- the optimistic request-counter tracking that
    keeps stale-sample herding (every decision dog-piling the server
    that *was* shortest) from re-creating the imbalance the policy is
    meant to fix.
    """

    name = "power_of_d"

    def __init__(
        self,
        n_servers: int,
        probe: ProbeFn,
        rng: np.random.Generator,
        sim: Simulator,
        d: int = DEFAULT_D,
        staleness_ns: float = 0.0,
    ) -> None:
        super().__init__(n_servers)
        if not 1 <= d:
            raise ValueError(f"d must be >= 1, got {d}")
        if staleness_ns < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness_ns}")
        self.probe = probe
        self.rng = rng
        self.sim = sim
        self.d = min(int(d), self.n_servers)
        self.staleness_ns = float(staleness_ns)
        self._estimates: List[float] = [0.0] * self.n_servers
        self._sampled_at: List[float] = [float("-inf")] * self.n_servers
        #: Fresh probes issued (the telemetry cost a real fabric pays).
        self.refreshes: int = 0

    # -- runtime-mutable knobs (control-plane actuation) ----------------
    def set_staleness(self, staleness_ns: float) -> None:
        """Retune estimate staleness mid-run.

        Takes effect on the next estimate read: tightening the knob
        makes cached estimates older than the new bound re-probe
        immediately; loosening extends the life of whatever is cached.
        """
        if staleness_ns < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness_ns}")
        self.staleness_ns = float(staleness_ns)

    def set_d(self, d: int) -> None:
        """Retune the per-decision sample width mid-run (clamped to the
        server count, like the constructor)."""
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = min(int(d), self.n_servers)

    def _candidates(self) -> List[int]:
        if self.d >= self.n_servers:
            return list(range(self.n_servers))
        return [
            int(i)
            for i in self.rng.choice(self.n_servers, size=self.d, replace=False)
        ]

    def _estimate(self, server: int) -> float:
        now = self.sim.now
        if now - self._sampled_at[server] >= self.staleness_ns:
            self._estimates[server] = self.probe(server)
            self._sampled_at[server] = now
            self.refreshes += 1
        return self._estimates[server]

    def _usable_candidates(self, health) -> List[int]:
        """Sample ``d`` servers from the usable subset (fault mode)."""
        usable = health.usable_servers()
        if not usable:
            # Whole rack down: sample as usual and let admission
            # blackhole the request (the client timeout observes it).
            return self._candidates()
        if self.d >= len(usable):
            return usable
        return [
            usable[int(i)]
            for i in self.rng.choice(len(usable), size=self.d, replace=False)
        ]

    def _pick(self, request: Request) -> int:
        health = self.health
        impaired = health.impaired
        candidates = (
            self._usable_candidates(health) if impaired else self._candidates()
        )
        best = -1
        best_load = float("inf")
        for server in candidates:
            load = self._estimate(server)
            if impaired:
                load += health.penalty(server)
            if load < best_load:
                best = server
                best_load = load
        # Track our own send so consecutive decisions inside one
        # staleness window don't all see the same short queue.
        self._estimates[best] += 1.0
        return best


class ShortestExpectedWaitSteering(SteeringPolicy):
    """RackSched-style steering from periodic full load samples.

    A timer samples every server's outstanding work each
    ``sample_period_ns``; decisions steer to the minimum *expected wait*
    -- (sampled outstanding + requests we sent since the sample),
    normalized by the server's core count, so a half-size server with
    the same queue correctly looks twice as slow.  Ties rotate, keeping
    an idle rack from hammering server 0.
    """

    name = "shortest_wait"

    def __init__(
        self,
        n_servers: int,
        probe: ProbeFn,
        sim: Simulator,
        cores_per_server: int,
        sample_period_ns: float = DEFAULT_SAMPLE_PERIOD_NS,
    ) -> None:
        super().__init__(n_servers)
        if sample_period_ns <= 0:
            raise ValueError(
                f"sample period must be positive, got {sample_period_ns}"
            )
        if cores_per_server <= 0:
            raise ValueError(
                f"cores per server must be positive, got {cores_per_server}"
            )
        self.probe = probe
        self.sim = sim
        self.cores_per_server = int(cores_per_server)
        self.sample_period_ns = float(sample_period_ns)
        self._samples: List[float] = [0.0] * self.n_servers
        self._sent_since_sample: List[int] = [0] * self.n_servers
        self._tie_start = 0
        self._timer: Optional[Event] = None
        self.samples_taken: int = 0

    # -- runtime-mutable knobs (control-plane actuation) ----------------
    def set_sample_period(self, sample_period_ns: float) -> None:
        """Retune the sampling cadence mid-run.

        The sampling timer re-arms itself with the live period after
        each firing, so the new cadence takes effect at the next sample
        without cancelling or reordering the pending timer event.
        """
        if sample_period_ns <= 0:
            raise ValueError(
                f"sample period must be positive, got {sample_period_ns}"
            )
        self.sample_period_ns = float(sample_period_ns)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._sample()

    def shutdown(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None

    def _sample(self) -> None:
        for server in range(self.n_servers):
            self._samples[server] = self.probe(server)
            self._sent_since_sample[server] = 0
        self.samples_taken += 1
        self._timer = self.sim.schedule_timer(
            self.sample_period_ns, self._sample, event=self._timer
        )

    # ------------------------------------------------------------------
    def expected_wait(self, server: int) -> float:
        """Outstanding work per core at ``server``, per the last sample
        plus our own sends since (in requests-per-core units)."""
        outstanding = self._samples[server] + self._sent_since_sample[server]
        return outstanding / self.cores_per_server

    def _pick(self, request: Request) -> int:
        start = self._tie_start
        n = self.n_servers
        health = self.health
        if health.impaired:
            best = -1
            best_wait = float("inf")
            for offset in range(n):
                server = (start + offset) % n
                if not health.usable(server):
                    continue
                wait = self.expected_wait(server) + health.penalty(server)
                if wait < best_wait:
                    best = server
                    best_wait = wait
            if best < 0:
                # Whole rack down: fall back to the rotation slot and let
                # admission blackhole (observable only via client timeout).
                best = start
            self._tie_start = (start + 1) % n
            self._sent_since_sample[best] += 1
            return best
        best = start
        best_wait = self.expected_wait(start)
        for offset in range(1, n):
            server = (start + offset) % n
            wait = self.expected_wait(server)
            if wait < best_wait:
                best = server
                best_wait = wait
        self._tie_start = (start + 1) % n
        self._sent_since_sample[best] += 1
        return best


def make_policy(
    name: str,
    n_servers: int,
    probe: ProbeFn,
    sim: Simulator,
    rng: np.random.Generator,
    cores_per_server: int,
    d: int = DEFAULT_D,
    staleness_ns: float = 0.0,
    sample_period_ns: float = DEFAULT_SAMPLE_PERIOD_NS,
) -> SteeringPolicy:
    """Construct a steering policy by registry name."""
    if name == "hash":
        return ConnectionHashSteering(n_servers)
    if name == "sticky":
        return StickyJobSteering(n_servers)
    if name == "spread":
        return SpreadJobSteering(n_servers)
    if name == "round_robin":
        return RoundRobinSteering(n_servers)
    if name == "power_of_d":
        return PowerOfDSteering(
            n_servers, probe, rng, sim, d=d, staleness_ns=staleness_ns
        )
    if name == "shortest_wait":
        return ShortestExpectedWaitSteering(
            n_servers, probe, sim, cores_per_server,
            sample_period_ns=sample_period_ns,
        )
    raise ValueError(
        f"unknown steering policy {name!r}; pick from {POLICY_NAMES}"
    )
