"""Switch-port models: a shared store-and-forward core plus the ToR.

A switch sits between a load source and N downstream ports.  Every
request forwarded through it pays:

* **store-and-forward serialization** on the egress port -- the wire
  time of the request's bytes at the configured port bandwidth
  (requests to the same port serialize behind each other), and
* **a fixed per-port forwarding latency** -- the switching pipeline plus
  propagation to the downstream NIC (commodity cut-through latency is a
  few hundred nanoseconds).

Each egress port buffers at most ``port_queue_depth`` requests; arrivals
beyond that are tail-dropped and accounted per port, in the style of the
drop accounting :mod:`repro.hw.nic` does for bounded receive queues.
Switches deliberately model only the downstream direction: response
traffic leaves the latency measurement at the server (the paper measures
server-side latency), so modelling it would only dilute the signal the
cluster and datacenter tiers study.

:class:`SwitchCore` carries the whole mechanism; the concrete tiers
differ only in trace labels, default metric prefix, and port-speed
defaults.  :class:`ToRSwitch` (rack downlinks, this module) and
:class:`repro.datacenter.spine.SpineSwitch` (rack-facing spine ports)
are both thin parameterizations of the same core, so their timing and
drop semantics can never drift apart.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.telemetry import trace_sink
from repro.workload.request import Request

#: Default downlink bandwidth: a 100 GbE port moves one bit per
#: hundredth of a nanosecond, i.e. a 300 B request serializes in 24 ns.
DEFAULT_BANDWIDTH_GBPS = 100.0

#: Default port-to-port forwarding latency (cut-through ToR class).
DEFAULT_FORWARD_LATENCY_NS = 250.0

#: Default per-port buffer, in requests.
DEFAULT_PORT_QUEUE_DEPTH = 256

DeliverFn = Callable[[Request], None]
DropFn = Callable[[Request, int], None]


class SwitchCore:
    """An output-queued switch stage with bounded per-port buffers.

    Subclasses parameterize the trace vocabulary (``track``,
    ``queue_mark``, ``tx_mark``) and the default metrics prefix; the
    forwarding mechanics -- serialization, queueing, tail-drop,
    partition blackholing, fault knobs -- live here once.

    Parameters
    ----------
    sim:
        The shared simulation kernel.
    n_ports:
        Number of downstream-facing egress ports.
    bandwidth_gbps:
        Bandwidth per port; sets the serialization time of each
        forwarded request (``size_bytes * 8 / bandwidth_gbps`` ns).
    forward_latency_ns:
        Fixed switching-pipeline + propagation latency added after the
        request finishes serializing.
    port_queue_depth:
        Maximum requests buffered per egress port (``None`` =
        unbounded).  Arrivals to a full port are tail-dropped.
    on_drop:
        Called as ``on_drop(request, port)`` for every tail-dropped
        request, after the switch's own accounting.
    """

    #: Trace span track and mark names; subclasses override so a mixed
    #: ToR+spine trace stays readable.
    track = "switch"
    queue_mark = "switch_queue"
    tx_mark = "switch_tx"
    #: Default instrument prefix for :meth:`register_metrics`.
    metrics_prefix = "switch"

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS,
        forward_latency_ns: float = DEFAULT_FORWARD_LATENCY_NS,
        port_queue_depth: Optional[int] = DEFAULT_PORT_QUEUE_DEPTH,
        on_drop: Optional[DropFn] = None,
    ) -> None:
        if n_ports <= 0:
            raise ValueError(f"need at least one port, got {n_ports}")
        if bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
        if forward_latency_ns < 0:
            raise ValueError(
                f"forwarding latency must be >= 0, got {forward_latency_ns}"
            )
        if port_queue_depth is not None and port_queue_depth <= 0:
            raise ValueError(
                f"port queue depth must be positive (or None), got {port_queue_depth}"
            )
        self.sim = sim
        self.n_ports = int(n_ports)
        self.bandwidth_gbps = float(bandwidth_gbps)
        self.forward_latency_ns = float(forward_latency_ns)
        self.port_queue_depth = port_queue_depth
        self.on_drop = on_drop
        #: Time each port's serializer frees up.
        self._free_at: List[float] = [0.0] * self.n_ports
        #: Fault-injection state: per-port bandwidth factor (1.0 =
        #: healthy; a degraded port serializes slower by 1/factor) and
        #: partition flags (a partitioned port silently blackholes).
        self._bw_factor: List[float] = [1.0] * self.n_ports
        self._partitioned: List[bool] = [False] * self.n_ports
        self.partition_dropped: int = 0
        #: Called as ``on_partition_drop(request, port)`` per blackholed
        #: request (the fault injector's accounting hook); distinct from
        #: ``on_drop`` because a partition loss is *silent* -- it must
        #: not count as a visible rack terminal.
        self.on_partition_drop: Optional[DropFn] = None
        #: Requests currently buffered (queued or serializing) per port.
        self._occupancy: List[int] = [0] * self.n_ports
        self.forwarded: int = 0
        self.dropped: int = 0
        self.dropped_per_port: List[int] = [0] * self.n_ports
        #: Cumulative ns requests spent waiting for their port serializer.
        self.queue_wait_ns: float = 0.0
        self._trace = trace_sink()

    def register_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Register bound switch accounting instruments into ``registry``."""
        if prefix is None:
            prefix = self.metrics_prefix
        registry.counter(f"{prefix}.forwarded", fn=lambda: self.forwarded)
        registry.counter(f"{prefix}.dropped", fn=lambda: self.dropped)
        registry.counter(
            f"{prefix}.queue_wait_ns", fn=lambda: self.queue_wait_ns
        )
        registry.gauge(
            f"{prefix}.dropped_per_port",
            fn=lambda: list(self.dropped_per_port),
        )

    # ------------------------------------------------------------------
    def serialization_ns(self, size_bytes: int, port: Optional[int] = None) -> float:
        """Wire time of ``size_bytes`` at the port bandwidth, in ns.

        A degraded port (fault injection) serializes slower by its
        bandwidth factor; the healthy path skips the divide so fault-free
        runs stay bit-identical.
        """
        base = size_bytes * 8.0 / self.bandwidth_gbps
        if port is not None:
            factor = self._bw_factor[port]
            if factor != 1.0:
                return base / factor
        return base

    def set_port_bandwidth_factor(self, port: int, factor: float) -> None:
        """Throttle (or restore) one port: 0 < factor <= 1."""
        if not 0 < factor <= 1.0:
            raise ValueError(f"bandwidth factor must be in (0, 1], got {factor}")
        self._bw_factor[port] = float(factor)

    def set_port_partitioned(self, port: int, partitioned: bool) -> None:
        """Partition (or heal) one port; partitioned ports blackhole."""
        self._partitioned[port] = bool(partitioned)

    def port_partitioned(self, port: int) -> bool:
        return self._partitioned[port]

    def occupancy(self, port: int) -> int:
        """Requests currently buffered on ``port`` (incl. serializing)."""
        return self._occupancy[port]

    # ------------------------------------------------------------------
    def forward(self, request: Request, port: int, deliver: DeliverFn) -> bool:
        """Forward ``request`` out of ``port``; ``deliver`` fires when it
        reaches the downstream NIC.  Returns False when tail-dropped."""
        if not 0 <= port < self.n_ports:
            raise ValueError(f"port {port} out of range [0, {self.n_ports})")
        if self._partitioned[port]:
            # Silent in-fabric loss: no tail-drop accounting, no visible
            # terminal -- only the client's timeout can observe it.
            self.partition_dropped += 1
            if self.on_partition_drop is not None:
                self.on_partition_drop(request, port)
            return False
        if (
            self.port_queue_depth is not None
            and self._occupancy[port] >= self.port_queue_depth
        ):
            self.dropped += 1
            self.dropped_per_port[port] += 1
            request.dropped = True
            trace = self._trace
            if trace.enabled and trace.sampled(request.req_id):
                trace.mark(request.req_id, "dropped", self.sim.now)
            if self.on_drop is not None:
                self.on_drop(request, port)
            return False
        now = self.sim.now
        start = self._free_at[port]
        if start < now:
            start = now
        self.queue_wait_ns += start - now
        done = start + self.serialization_ns(request.size_bytes, port)
        self._free_at[port] = done
        self._occupancy[port] += 1
        trace = self._trace
        if trace.enabled:
            # Every endpoint of this request's switch transit is known
            # here; the downstream marks pick up at delivery time.
            if trace.sampled(request.req_id):
                trace.mark(request.req_id, self.queue_mark, now)
                trace.mark(request.req_id, self.tx_mark, start)
            trace.span(self.track, port, "tx", start, done)
        self.sim.schedule(done - now, self._tx_done, request, port, deliver)
        return True

    def _tx_done(self, request: Request, port: int, deliver: DeliverFn) -> None:
        """Serialization finished: free the buffer slot, then deliver
        after the forwarding pipeline."""
        self._occupancy[port] -= 1
        self.forwarded += 1
        self._dispatch(request, port, deliver)

    def _dispatch(self, request: Request, port: int, deliver: DeliverFn) -> None:
        """Hand a fully serialized request to the forwarding pipeline.

        The seam the sharded datacenter overrides: the default schedules
        ``deliver`` after the fixed pipeline latency on this switch's
        simulator; a shard-boundary switch instead exports the message
        to the remote shard's window batch.  Serialization, queueing and
        drop accounting have already happened by the time this runs, so
        an override changes *where* the request goes, never *when* the
        fabric model says it arrives.
        """
        self.sim.schedule(self.forward_latency_ns, deliver, request)

    # ------------------------------------------------------------------
    def min_transit_ns(self, size_bytes: int = 0) -> float:
        """Guaranteed lower bound on this switch's fabric transit time.

        A request entering :meth:`forward` at time ``t`` is delivered no
        earlier than ``t + min_transit_ns(size)``: it must serialize for
        at least the healthy-rate wire time (fault injection only ever
        *lowers* port bandwidth -- ``set_port_bandwidth_factor`` accepts
        factors in (0, 1] -- so the healthy rate bounds every port state)
        and then cross the fixed forwarding pipeline.  Queueing and
        degraded ports only add to that.  This is the conservative-PDES
        lookahead the sharded runtime advances on: with ``size_bytes=0``
        the bound holds for every message regardless of payload.
        """
        return self.forward_latency_ns + self.serialization_ns(size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} ports={self.n_ports} "
            f"forwarded={self.forwarded} dropped={self.dropped}>"
        )


class ToRSwitch(SwitchCore):
    """The top-of-rack switch: the core with ToR trace/metric labels.

    Sits between the rack's load generator and its N servers; each
    egress port is one server downlink.  Constructor, defaults, and
    timing are exactly the shared core's -- this subclass only names
    things, so pre-refactor rack fingerprints are byte-identical.
    """

    track = "tor"
    queue_mark = "tor_queue"
    tx_mark = "tor_tx"
    metrics_prefix = "cluster.switch"
