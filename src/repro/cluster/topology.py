"""Rack topology: N scheduler systems behind one ToR switch.

:class:`RackConfig` describes a rack declaratively (how many servers,
which per-server scheduling system, which inter-server steering policy,
switch parameters); :func:`build_rack` wires it into a live
:class:`RackCluster` on a shared simulator.

A :class:`RackCluster` presents the same duck interface as a single
:class:`~repro.schedulers.base.RpcSystem` (``offer`` / ``expect`` /
``shutdown`` / ``utilization`` / ``stats``), so everything built for one
server -- :func:`repro.api.run_workload`, :func:`repro.api.quick_run`,
the :mod:`repro.runner` sweep machinery, the analysis layer -- drives a
whole rack unchanged.  Request flow::

    load generator --offer--> steering policy picks server
        --> ToR switch (serialization + queueing + forwarding latency)
        --> server's own NIC delivery --> server's scheduler --> core

Determinism: each server gets RNG streams spawned from the master
streams under a stable per-server name, and the steering policy draws
from its own named stream, so rack simulations are bit-identical for a
fixed seed regardless of server count or process placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster import metrics as cluster_metrics
from repro.cluster.fabric import FabricBookkeeping
from repro.cluster.policies import (
    DEFAULT_D,
    DEFAULT_SAMPLE_PERIOD_NS,
    POLICY_NAMES,
    SteeringPolicy,
    make_policy,
)
from repro.cluster.switch import (
    DEFAULT_BANDWIDTH_GBPS,
    DEFAULT_FORWARD_LATENCY_NS,
    DEFAULT_PORT_QUEUE_DEPTH,
    ToRSwitch,
)
from repro.schedulers.base import RpcSystem, SystemStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry
from repro.workload.request import Request


@dataclass(frozen=True)
class RackConfig:
    """Declarative description of one rack.

    Attributes
    ----------
    n_servers, cores_per_server:
        Rack shape.  Total capacity is the product.
    system:
        Per-server scheduling system, any name accepted by
        :func:`repro.api.build_system` ("altocumulus", "rss", ...).
    policy:
        Inter-server steering policy name (see
        :data:`repro.cluster.policies.POLICY_NAMES`).
    d, staleness_ns:
        Power-of-d parameters: sampled servers per decision and how old
        a cached load estimate may get before it is re-probed.
    sample_period_ns:
        RackSched-style policies: period of the full load sample.
    forward_latency_ns, bandwidth_gbps, port_queue_depth:
        ToR switch model (see :class:`repro.cluster.switch.ToRSwitch`).
    """

    n_servers: int = 4
    cores_per_server: int = 16
    system: str = "altocumulus"
    policy: str = "power_of_d"
    d: int = DEFAULT_D
    staleness_ns: float = 0.0
    sample_period_ns: float = DEFAULT_SAMPLE_PERIOD_NS
    forward_latency_ns: float = DEFAULT_FORWARD_LATENCY_NS
    bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS
    port_queue_depth: Optional[int] = DEFAULT_PORT_QUEUE_DEPTH

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError(f"need at least one server, got {self.n_servers}")
        if self.cores_per_server <= 0:
            raise ValueError(
                f"need at least one core per server, got {self.cores_per_server}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown steering policy {self.policy!r}; "
                f"pick from {POLICY_NAMES}"
            )

    @property
    def total_cores(self) -> int:
        return self.n_servers * self.cores_per_server

    def capacity_rps(self, mean_service_ns: float) -> float:
        """Aggregate service capacity at a given mean service time."""
        return self.total_cores / mean_service_ns * 1e9


class RackCluster(FabricBookkeeping):
    """N independent scheduler systems behind one switch and one policy.

    Implements the system duck interface :func:`repro.api.run_workload`
    expects, so a rack can be driven (and cached, and fanned out by the
    sweep runner) exactly like a single server.  Terminal accounting
    (``expect`` / completion and drop hooks / end-of-run detection) is
    the shared :class:`~repro.cluster.fabric.FabricBookkeeping`.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: RackConfig,
        servers: List[RpcSystem],
    ) -> None:
        self.sim = sim
        self.config = config
        self.servers = servers
        self.name = (
            f"rack[{config.n_servers}x{config.system}"
            f"x{config.cores_per_server}/{config.policy}]"
        )
        self.metrics = MetricRegistry()
        sim.register_metrics(self.metrics)
        self.stats = SystemStats(self.metrics)
        self.switch = ToRSwitch(
            sim,
            n_ports=config.n_servers,
            bandwidth_gbps=config.bandwidth_gbps,
            forward_latency_ns=config.forward_latency_ns,
            port_queue_depth=config.port_queue_depth,
            on_drop=self._switch_dropped,
        )
        self.policy: SteeringPolicy = make_policy(
            config.policy,
            n_servers=config.n_servers,
            probe=self.outstanding,
            sim=sim,
            rng=streams.get("steering"),
            cores_per_server=config.cores_per_server,
            d=config.d,
            staleness_ns=config.staleness_ns,
            sample_period_ns=config.sample_period_ns,
        )
        self._init_fabric()
        self._deliver = [server.offer for server in self.servers]
        #: Liveness view; the fault injector swaps in a live HealthView
        #: (shared with ``policy.health``) when a plan is attached.
        self.health = self.policy.health
        self.switch.register_metrics(self.metrics)
        cluster_metrics.register_cluster_instruments(self, self.metrics)
        for i, server in enumerate(self.servers):
            server.completion_hooks.append(self._member_completed)
            server.drop_hooks.append(self._member_dropped)
            child = getattr(server, "metrics", None)
            if child is not None:
                self.metrics.attach_child(f"srv{i}", child)
        self.policy.start()

    # ------------------------------------------------------------------
    # Load-generator interface (duck-compatible with RpcSystem)
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Rack ingress: steer, then forward through the ToR switch."""
        self.stats.offered += 1
        server = self.policy.pick_server(request)
        self.switch.forward(request, server, self._deliver[server])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self, server: int) -> float:
        """Requests in flight inside ``server`` (its NIC delivery, its
        queues, its cores) -- the load signal steering policies probe."""
        stats = self.servers[server].stats
        return float(stats.offered - stats.completed - stats.dropped)

    @property
    def finished_requests(self) -> List[Request]:
        """All completed requests, in per-server completion order."""
        merged: List[Request] = []
        for server in self.servers:
            merged.extend(server.finished_requests)
        return merged

    def utilization(self, elapsed_ns: float) -> float:
        """Mean core utilization across every core in the rack."""
        if elapsed_ns <= 0:
            return 0.0
        total_cores = sum(len(server.cores) for server in self.servers)
        if total_cores == 0:
            return 0.0
        busy = sum(
            core.busy_ns for server in self.servers for core in server.cores
        )
        return busy / (elapsed_ns * total_cores)

    def shutdown(self) -> None:
        """Stop periodic machinery and distill cluster metrics into the
        ``cluster.*`` namespace of ``stats.extra`` (they travel with
        every sweep result)."""
        self.policy.shutdown()
        for server in self.servers:
            server.shutdown()
        scoped = self.stats.scoped("cluster")
        for key, value in cluster_metrics.cluster_summary(self).items():
            scoped.put(key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RackCluster {self.name} "
            f"done={self.stats.completed}/{self.stats.offered}>"
        )


def build_rack(
    sim: Simulator, streams: RandomStreams, config: RackConfig
) -> RackCluster:
    """Instantiate a rack: N per-server systems plus switch and policy.

    Imported lazily by :mod:`repro.api` (which registers the ``"rack"``
    system name); importing it here at module scope would be circular.
    """
    from repro.api import build_system

    servers = [
        build_system(
            config.system,
            sim,
            streams.spawn(f"rack-server-{i}"),
            config.cores_per_server,
        )
        for i in range(config.n_servers)
    ]
    return RackCluster(sim, streams, config, servers)
