"""Telemetry-driven adaptive control plane for the Altocumulus repro.

The reproduction's metric registry was historically write-only at
runtime: instruments observed the run, nothing acted on them.  This
package closes the loop.  A :class:`ControlLoop` (built by
:func:`repro.api.run_workload` when a :class:`ControlConfig` is
attached) senses the system every control epoch on the simulated clock
and hands the observation to a :class:`Controller`, which actuates
construction-frozen knobs through the :class:`Actuators` facade:
migration thresholds and predictor recalibration, steering-policy
selection and telemetry knobs (rack and spine level), worker<->manager
group reassignment, and rack autoscaling via admin drains.

Everything is deterministic: a fixed seed plus a fixed
:class:`ControlConfig` reproduces every decision bit-for-bit, and the
``static`` controller leaves runs bit-identical to uncontrolled ones
(both pinned by the golden determinism gate).  See
``docs/architecture.md`` for the sensing -> decision -> actuation
contract.
"""

from repro.control.actuators import Actuators, AdminHealthView
from repro.control.config import (
    CONTROLLER_NAMES,
    ControlConfig,
    DEFAULT_CONTROL_EPOCH_NS,
)
from repro.control.controllers import (
    BanditController,
    Controller,
    EpochObservation,
    HysteresisController,
    StaticController,
    make_controller,
)
from repro.control.loop import ControlLoop
from repro.control.runtime import active_control_config, use_controller

__all__ = [
    "Actuators",
    "AdminHealthView",
    "BanditController",
    "CONTROLLER_NAMES",
    "ControlConfig",
    "ControlLoop",
    "Controller",
    "DEFAULT_CONTROL_EPOCH_NS",
    "EpochObservation",
    "HysteresisController",
    "StaticController",
    "active_control_config",
    "make_controller",
    "use_controller",
]
