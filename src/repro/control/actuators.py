"""The actuation surface of the control plane.

:class:`Actuators` is the only object controllers mutate the system
through.  It duck-detects the tier it was attached to (single server,
rack, or datacenter) exactly the way :class:`repro.faults.FaultInjector`
does, exposes every runtime-mutable knob behind one facade, and accounts
each actuation -- a ``control.*`` instrument bump plus a TraceSink span
on the ``"control"`` track -- so every decision is auditable after the
run.

Admin drains (the scale-in half of rack autoscaling, and the rule
controllers' response to degradation) are implemented as
:class:`AdminHealthView`: a wrapper composed over the policy's existing
health view.  Steering stops picking a drained unit, but -- unlike a
fault -- nothing is blackholed: the injector's NIC-edge admission still
consults the *raw* :class:`~repro.faults.health.HealthView`, so
in-flight work on a drained unit completes normally.  The wrapper is
installed lazily on the first drain, which keeps never-draining runs
structurally identical to uncontrolled ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.policies import SteeringPolicy, make_policy
from repro.control.config import ControlConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry

#: Floor for escalated shortest-wait sampling (ns); sampling faster than
#: this models telemetry the fabric cannot physically deliver.
MIN_SAMPLE_PERIOD_NS = 250.0


class AdminHealthView:
    """Admin-drain overlay over a policy's health view.

    Read surface mirrors :class:`~repro.faults.health.HealthView` (the
    superset every policy consults): ``usable`` is the inner view's
    verdict AND-ed with the admin state; degradation/penalty pass
    through untouched so the controller's drains never mask fault
    signals.
    """

    def __init__(self, inner, n_units: int) -> None:
        self.inner = inner
        self.n_units = int(n_units)
        self._admin_down: List[bool] = [False] * self.n_units
        self._n_admin_down = 0

    # -- admin write side ----------------------------------------------
    def set_admin_down(self, unit: int, down: bool) -> bool:
        """Returns True when the flag actually changed."""
        if not 0 <= unit < self.n_units:
            raise ValueError(f"unit {unit} out of range [0, {self.n_units})")
        if self._admin_down[unit] == down:
            return False
        self._admin_down[unit] = down
        self._n_admin_down += 1 if down else -1
        return True

    def admin_down(self, unit: int) -> bool:
        return self._admin_down[unit]

    @property
    def n_admin_down(self) -> int:
        return self._n_admin_down

    # -- policy read side ----------------------------------------------
    @property
    def impaired(self) -> bool:
        return self._n_admin_down > 0 or self.inner.impaired

    def usable(self, unit: int) -> bool:
        return not self._admin_down[unit] and self.inner.usable(unit)

    def penalty(self, unit: int) -> float:
        return self.inner.penalty(unit)

    def usable_servers(self) -> List[int]:
        return [u for u in range(self.n_units) if self.usable(u)]

    def down(self, unit: int) -> bool:
        inner_down = getattr(self.inner, "down", None)
        return self._admin_down[unit] or (
            inner_down(unit) if inner_down is not None else False
        )

    def degraded(self, unit: int) -> bool:
        inner_degraded = getattr(self.inner, "degraded", None)
        return inner_degraded(unit) if inner_degraded is not None else False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        drained = [u for u, d in enumerate(self._admin_down) if d]
        return f"<AdminHealthView drained={drained} inner={self.inner!r}>"


def _carry_policy_state(old: SteeringPolicy, new: SteeringPolicy) -> None:
    """Preserve cumulative accounting across a runtime policy swap.

    The cluster/datacenter registries bind ``steer_*`` instruments to
    ``<system>.policy`` at construction (``decisions`` by index, plus
    ``refreshes`` / ``samples_taken`` when the *initial* policy had
    them), so the replacement must keep every bound read valid and
    monotonic: decisions carry over as the new policy's starting counts,
    and telemetry counters the new policy lacks are frozen onto it as
    plain attributes.
    """
    new.decisions = list(old.decisions)
    for attr in ("refreshes", "samples_taken"):
        carried = getattr(old, attr, None)
        if carried is None:
            continue
        native = getattr(new, attr, None)
        setattr(new, attr, carried + (native or 0))


class Actuators:
    """Every runtime-mutable knob of one system, behind one facade."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        system,
        config: ControlConfig,
        registry: MetricRegistry,
        trace=None,
    ) -> None:
        self.sim = sim
        self.system = system
        self.config = config
        self.trace = trace
        self._streams = streams
        # Tier detection by duck attributes, mirroring the injector: a
        # rack/datacenter exposes `servers` and a SteeringPolicy under
        # `policy`; a datacenter additionally exposes `racks`.
        servers = getattr(system, "servers", None)
        self._units = list(servers) if servers is not None else []
        self._racks = getattr(system, "racks", None)
        policy = getattr(system, "policy", None)
        self._has_policy = isinstance(policy, SteeringPolicy)
        #: Construction-time policy name -- what a controller swaps back
        #: to when an escalation episode ends.
        self.base_policy_name = policy.name if self._has_policy else ""
        #: Altocumulus instances reachable from this system (threshold
        #: and predictor actuation targets): the system itself, a rack's
        #: servers, or every server of every rack.
        self._ac_servers = [
            s for s in (self._flat_servers() or [system])
            if hasattr(s, "runtimes")
        ]
        #: Per-policy construction-time knob baseline for the
        #: escalation ladder (captured lazily; keyed by policy identity,
        #: refreshed across swaps).
        self._knob_base: Dict[int, Dict[str, float]] = {}
        self._admin: Optional[AdminHealthView] = None
        self._open_drains: Dict[int, float] = {}
        self.level = 0
        #: Cores per steerable unit (a server's cores, or a whole
        #: rack's at the datacenter tier) -- the autoscaler's capacity
        #: normalizer.
        sys_config = getattr(system, "config", None)
        unit_cores = getattr(sys_config, "cores_per_server", None)
        if unit_cores is None and hasattr(sys_config, "rack"):
            unit_cores = sys_config.rack.total_cores
        self.unit_cores = int(unit_cores) if unit_cores else 1

        counter = registry.counter
        self._m_actuations = counter("control.actuations")
        self._m_drains = counter("control.drains")
        self._m_restores = counter("control.restores")
        self._m_policy_swaps = counter("control.policy_swaps")
        self._m_knob_updates = counter("control.knob_updates")
        self._m_threshold_updates = counter("control.threshold_updates")
        self._m_worker_moves = counter("control.worker_moves")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_units(self) -> int:
        """Steerable units below this system (servers or racks)."""
        return len(self._units)

    def active_units(self) -> int:
        """Units not currently admin-drained."""
        drained = self._admin.n_admin_down if self._admin is not None else 0
        return len(self._units) - drained

    def is_drained(self, unit: int) -> bool:
        return self._admin is not None and self._admin.admin_down(unit)

    def _flat_servers(self) -> List[object]:
        if self._racks is not None:
            return [s for rack in self._racks for s in rack.servers]
        return list(self._units)

    def _live_policies(self) -> List[SteeringPolicy]:
        """Every steering policy below this system, top level first."""
        policies: List[SteeringPolicy] = []
        top = getattr(self.system, "policy", None)
        if isinstance(top, SteeringPolicy):
            policies.append(top)
        if self._racks is not None:
            policies.extend(
                rack.policy for rack in self._racks
                if isinstance(getattr(rack, "policy", None), SteeringPolicy)
            )
        return policies

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _span(self, lane: int, name: str, start: Optional[float] = None) -> None:
        trace = self.trace
        if trace is not None and trace.enabled:
            now = self.sim.now
            trace.span("control", lane, name,
                       now if start is None else start, now)

    def _record(self, counter, lane: int, name: str) -> None:
        counter.value += 1
        self._m_actuations.value += 1
        self._span(lane, name)

    # ------------------------------------------------------------------
    # Steering knob ladder (staleness / d / sample period)
    # ------------------------------------------------------------------
    def _base_knobs(self, policy: SteeringPolicy) -> Dict[str, float]:
        base = self._knob_base.get(id(policy))
        if base is None:
            base = {}
            for attr in ("d", "staleness_ns", "sample_period_ns"):
                value = getattr(policy, attr, None)
                if value is not None:
                    base[attr] = value
            self._knob_base[id(policy)] = base
        return base

    def apply_level(self, level: int) -> bool:
        """Set the telemetry-escalation ladder rung.

        Rung 0 is the construction-time knobs; each higher rung samples
        one more server per power-of-d decision, halves estimate
        staleness, and halves the shortest-wait sample period -- fresher
        (costlier) steering telemetry in exchange for tighter tails.
        Returns True when any knob actually moved.
        """
        level = max(0, min(int(level), self.config.max_level))
        changed = False
        for policy in self._live_policies():
            base = self._base_knobs(policy)
            if "d" in base:
                d = min(policy.n_servers, int(base["d"]) + level)
                if policy.d != d:
                    policy.set_d(d)
                    changed = True
            if "staleness_ns" in base:
                staleness = base["staleness_ns"] / (2.0 ** level)
                if policy.staleness_ns != staleness:
                    policy.set_staleness(staleness)
                    changed = True
            if "sample_period_ns" in base:
                period = max(
                    MIN_SAMPLE_PERIOD_NS, base["sample_period_ns"] / (2.0 ** level)
                )
                if policy.sample_period_ns != period:
                    policy.set_sample_period(period)
                    changed = True
        self.level = level
        if changed:
            self._record(self._m_knob_updates, 0, f"level{level}")
        return changed

    # ------------------------------------------------------------------
    # Migration threshold / predictor actuation (Altocumulus servers)
    # ------------------------------------------------------------------
    def set_threshold_epsilon(self, epsilon: float) -> bool:
        """Retune the threshold-cache epsilon on every reachable
        Altocumulus server (read live by ``current_threshold``)."""
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        changed = False
        for server in self._ac_servers:
            if server.config.threshold_epsilon != epsilon:
                server.config.threshold_epsilon = float(epsilon)
                changed = True
        if changed:
            self._record(self._m_threshold_updates, 0, "threshold_epsilon")
        return changed

    def recalibrate_predictors(self) -> int:
        """Invalidate every manager's cached model threshold, forcing a
        fresh Erlang-C evaluation at the next tick."""
        count = 0
        for server in self._ac_servers:
            for runtime in server.runtimes:
                runtime.invalidate_threshold_cache()
                count += 1
        if count:
            self._record(self._m_threshold_updates, 0, "recalibrate")
        return count

    # ------------------------------------------------------------------
    # Admin drain / restore (rack autoscaling, degradation response)
    # ------------------------------------------------------------------
    def _ensure_admin(self) -> AdminHealthView:
        if self._admin is None:
            policy = self.system.policy
            self._admin = AdminHealthView(policy.health, len(self._units))
            policy.health = self._admin
            self.system.health = self._admin
        return self._admin

    def drain(self, unit: int) -> bool:
        """Remove ``unit`` from the steering set (in-flight work still
        completes; nothing is blackholed).  No-op below ``min_active``."""
        if not self._has_policy or not self._units:
            return False
        if self.active_units() <= self.config.min_active:
            return False
        admin = self._ensure_admin()
        if not admin.set_admin_down(unit, True):
            return False
        self._open_drains[unit] = self.sim.now
        self._record(self._m_drains, unit, "drain")
        return True

    def restore(self, unit: int) -> bool:
        """Return a drained unit to the steering set."""
        if self._admin is None or not self._admin.set_admin_down(unit, False):
            return False
        start = self._open_drains.pop(unit, None)
        self._m_restores.value += 1
        self._m_actuations.value += 1
        self._span(unit, "drained", start)
        return True

    # ------------------------------------------------------------------
    # Steering policy swap (rack / spine level)
    # ------------------------------------------------------------------
    def swap_policy(self, name: str) -> bool:
        """Replace the system's top-level steering policy at runtime.

        Rebuilt through the same :func:`make_policy` registry and the
        same ``"steering"`` RNG stream the construction-time policy
        used; cumulative decision counts and telemetry counters carry
        over so bound ``steer_*`` instruments stay valid and monotonic,
        and the current health view (admin overlay included) transplants
        onto the replacement.
        """
        if not self._has_policy:
            return False
        old = self.system.policy
        if old.name == name:
            return False
        config = self.system.config
        cores = getattr(config, "cores_per_server", None)
        if cores is None:  # datacenter: a unit is a whole rack
            cores = config.rack.total_cores
        # Construct from the *base* (construction-time) knobs, not the
        # old policy's possibly-escalated live ones, then re-apply the
        # current ladder rung so swaps compose with the knob ladder.
        base = self._base_knobs(old)
        new = make_policy(
            name,
            n_servers=len(self._units),
            probe=self.system.outstanding,
            sim=self.sim,
            rng=self._streams.get("steering"),
            cores_per_server=cores,
            d=int(base.get("d", getattr(config, "d", 2))),
            staleness_ns=base.get("staleness_ns", config.staleness_ns),
            sample_period_ns=base.get(
                "sample_period_ns", config.sample_period_ns
            ),
        )
        _carry_policy_state(old, new)
        new.health = old.health
        old.shutdown()
        self.system.policy = new
        new.start()
        self._knob_base.pop(id(old), None)
        self._record(self._m_policy_swaps, 0, f"swap:{name}")
        return True

    # ------------------------------------------------------------------
    # Worker <-> manager group reassignment (Altocumulus tier)
    # ------------------------------------------------------------------
    def reassign_worker(self, src_group: int, dst_group: int) -> bool:
        """Move one idle worker between manager groups (single-server
        Altocumulus systems only; False elsewhere or when no worker of
        ``src_group`` is currently drained/idle)."""
        move = getattr(self.system, "reassign_worker", None)
        if move is None:
            return False
        if not move(src_group, dst_group):
            return False
        self._record(self._m_worker_moves, dst_group,
                     f"worker:{src_group}->{dst_group}")
        return True

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close still-open drain spans (call after ``sim.run``)."""
        for unit, start in self._open_drains.items():
            self._span(unit, "drained", start)
        self._open_drains.clear()
