"""Frozen configuration for the adaptive control plane.

:class:`ControlConfig` is the whole identity of a controller run: a
frozen dataclass of primitives, so it pickles across runner worker
processes, content-hashes stably into the result-cache key
(:func:`repro.runner.spec.fingerprint`), and -- together with the
master seed -- fully determines the control loop's behavior.  Two runs
with the same workload, seed, and ``ControlConfig`` are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Controller registry names (see :mod:`repro.control.controllers`).
CONTROLLER_NAMES = ("static", "hysteresis", "bandit")

#: Default control epoch: 20 us.  Long enough that an epoch at the
#: experiments' offered rates observes hundreds of completions (a stable
#: p99 estimate), short enough to react several times within a chaos
#: fault window.
DEFAULT_CONTROL_EPOCH_NS = 20_000.0


@dataclass(frozen=True)
class ControlConfig:
    """Everything the control plane needs, as plain frozen data."""

    #: Registry name of the decision policy (``CONTROLLER_NAMES``).
    controller: str = "static"
    #: Sensing/decision period in simulated nanoseconds.
    epoch_ns: float = DEFAULT_CONTROL_EPOCH_NS
    #: Consecutive epochs a unit must be degraded before it is
    #: admin-drained (scaled in) by the rule controllers.
    drain_after_epochs: int = 2
    #: Consecutive healthy epochs before a drained unit is restored.
    restore_after_epochs: int = 2
    #: Escalate the steering-telemetry ladder when the epoch p99 exceeds
    #: ``escalate_ratio`` x the slow baseline.
    escalate_ratio: float = 1.5
    #: De-escalate when the epoch p99 falls back under ``relax_ratio`` x
    #: the slow baseline for ``relax_after_epochs`` epochs.
    relax_ratio: float = 1.1
    relax_after_epochs: int = 4
    #: Highest rung of the escalation ladder (0 = construction knobs).
    max_level: int = 3
    #: EWMA smoothing for the controllers' p99 baseline.
    baseline_alpha: float = 0.1
    #: Threshold-cache epsilon pushed to Altocumulus servers while the
    #: fabric is relaxed (cheaper manager ticks); escalation resets it
    #: to 0.0 and recalibrates the predictors.
    relaxed_threshold_epsilon: float = 0.05
    #: Steering policy the hysteresis controller swaps the top level to
    #: while the fabric is impaired (a unit is fault-drained) or the
    #: pressure ladder reaches ``swap_at_level``; the construction-time
    #: policy is restored when the episode ends.  Empty string disables
    #: swapping.
    swap_policy: str = "shortest_wait"
    swap_at_level: int = 2
    #: Bandit exploration probability (epsilon-greedy over the ladder).
    explore: float = 0.1
    #: Reward smoothing for the bandit's per-arm estimates.
    reward_alpha: float = 0.3
    #: Rack autoscaling at the datacenter tier: scale-in (admin-drain a
    #: rack) when mean outstanding per active rack stays below
    #: ``autoscale_low`` for ``drain_after_epochs`` epochs; scale-out on
    #: the first epoch above ``autoscale_high``.  Off by default.
    autoscale: bool = False
    autoscale_low: float = 0.25
    autoscale_high: float = 0.75
    #: Autoscaling never drains below this many active units.
    min_active: int = 1
    #: Rebalance worker<->manager group assignment (single-server
    #: Altocumulus tier only) when per-group outstanding skew exceeds
    #: ``rebalance_ratio``; at most one move per ``rebalance_cooldown``
    #: epochs.
    rebalance_workers: bool = True
    rebalance_ratio: float = 3.0
    rebalance_cooldown: int = 8

    def __post_init__(self) -> None:
        if self.controller not in CONTROLLER_NAMES:
            raise ValueError(
                f"unknown controller {self.controller!r}; "
                f"pick from {CONTROLLER_NAMES}"
            )
        if self.epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be > 0, got {self.epoch_ns}")
        if self.drain_after_epochs < 1 or self.restore_after_epochs < 1:
            raise ValueError("drain/restore epoch counts must be >= 1")
        if not self.escalate_ratio > self.relax_ratio > 0:
            raise ValueError(
                "need escalate_ratio > relax_ratio > 0, got "
                f"{self.escalate_ratio} / {self.relax_ratio}"
            )
        if self.max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {self.max_level}")
        if not 0 < self.baseline_alpha <= 1:
            raise ValueError("baseline_alpha must be in (0, 1]")
        if not 0 <= self.explore <= 1:
            raise ValueError(f"explore must be in [0, 1], got {self.explore}")
        if not 0 < self.reward_alpha <= 1:
            raise ValueError("reward_alpha must be in (0, 1]")
        if self.relaxed_threshold_epsilon < 0:
            raise ValueError("relaxed_threshold_epsilon must be >= 0")
        if self.swap_at_level < 1:
            raise ValueError(
                f"swap_at_level must be >= 1, got {self.swap_at_level}"
            )
        if not self.autoscale_high > self.autoscale_low >= 0:
            raise ValueError("need autoscale_high > autoscale_low >= 0")
        if self.min_active < 1:
            raise ValueError(f"min_active must be >= 1, got {self.min_active}")
        if self.rebalance_ratio <= 1:
            raise ValueError("rebalance_ratio must be > 1")
        if self.rebalance_cooldown < 1:
            raise ValueError("rebalance_cooldown must be >= 1")
