"""Decision policies for the adaptive control plane.

A :class:`Controller` consumes one :class:`EpochObservation` per control
epoch and mutates the system exclusively through the
:class:`~repro.control.actuators.Actuators` facade.  Three ship behind
the registry:

* ``static`` -- the no-op baseline.  It senses (so the ``control.*``
  epoch instruments are live) but never actuates and never draws
  randomness, which is what keeps static-controller runs bit-identical
  to uncontrolled ones.
* ``hysteresis`` -- a threshold rule controller.  Degraded-but-reachable
  units (lossy NICs, throttled ToR ports, stragglers) are admin-drained
  after a debounce and restored once healthy again -- the move static
  health-aware policies cannot make, since a penalty only *biases* load
  away from a loss source.  Sustained p99 pressure against a slow EWMA
  baseline escalates the steering-telemetry ladder (more power-of-d
  samples, fresher estimates, faster shortest-wait sampling) and resets
  the Altocumulus threshold cache; calm de-escalates and relaxes the
  threshold epsilon.  Optional extras: datacenter rack autoscaling and
  Altocumulus worker<->group rebalancing.
* ``bandit`` -- an epsilon-greedy optimizer over the same ladder: each
  epoch's negated p99 is the reward for the rung that produced it, and
  exploration draws come only from the dedicated ``"control"`` RNG
  stream (so a fixed seed + config reproduces the run bit-for-bit).
  The hysteresis drain rule runs underneath as a deterministic safety
  net.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.control.actuators import Actuators
from repro.control.config import CONTROLLER_NAMES, ControlConfig


@dataclass
class EpochObservation:
    """What the control loop sensed during one epoch."""

    index: int
    t_start: float
    t_end: float
    #: Completions / drop delta observed during the epoch.
    completed: int
    dropped: int
    #: Epoch latency statistics (None when nothing completed).
    p99_ns: Optional[float]
    mean_ns: Optional[float]
    #: Per-unit outstanding work (servers or racks; empty below tiers).
    outstanding: List[float] = field(default_factory=list)
    #: Raw fault state per unit (from the injector's HealthView; admin
    #: drains are deliberately invisible here).
    degraded: List[bool] = field(default_factory=list)
    unusable: List[bool] = field(default_factory=list)
    #: Per-group NetRX+occupancy (single-server Altocumulus tier only).
    group_outstanding: Optional[List[int]] = None


class Controller(abc.ABC):
    """Base class: one ``decide`` call per control epoch."""

    name = "abstract"

    def __init__(self, config: ControlConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.decisions = 0
        # Shared drain-rule state (per-unit debounce counters).
        self._degraded_epochs: List[int] = []
        self._healthy_epochs: List[int] = []
        self._drain_reason: dict = {}

    @abc.abstractmethod
    def decide(self, obs: EpochObservation, act: Actuators) -> None:
        """Observe one epoch and (possibly) actuate."""

    # ------------------------------------------------------------------
    # Shared degradation drain rule (deterministic; used by the rule
    # controllers, inert for static).
    # ------------------------------------------------------------------
    def _update_drains(self, obs: EpochObservation, act: Actuators) -> None:
        cfg = self.config
        n = act.n_units
        if not n or len(obs.degraded) != n:
            return
        if len(self._degraded_epochs) != n:
            self._degraded_epochs = [0] * n
            self._healthy_epochs = [0] * n
        for unit in range(n):
            if obs.degraded[unit]:
                self._degraded_epochs[unit] += 1
                self._healthy_epochs[unit] = 0
            else:
                self._healthy_epochs[unit] += 1
                self._degraded_epochs[unit] = 0
            drained = act.is_drained(unit)
            if (
                not drained
                and self._degraded_epochs[unit] >= cfg.drain_after_epochs
            ):
                if act.drain(unit):
                    self._drain_reason[unit] = "fault"
            elif (
                drained
                and self._drain_reason.get(unit) == "fault"
                and self._healthy_epochs[unit] >= cfg.restore_after_epochs
            ):
                if act.restore(unit):
                    self._drain_reason.pop(unit, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} decisions={self.decisions}>"


class StaticController(Controller):
    """The do-nothing baseline every adaptive run is judged against."""

    name = "static"

    def decide(self, obs: EpochObservation, act: Actuators) -> None:
        self.decisions += 1


class HysteresisController(Controller):
    """Debounced threshold rules over the epoch observations."""

    name = "hysteresis"

    def __init__(self, config: ControlConfig, rng: np.random.Generator) -> None:
        super().__init__(config, rng)
        self._baseline: Optional[float] = None
        self._level = 0
        self._calm_epochs = 0
        self._relaxed = False
        self._low_epochs = 0
        self._rebalance_cooldown = 0
        self._defensive = False
        self._swapped = False

    # -- p99 pressure ladder -------------------------------------------
    def _update_pressure(self, obs: EpochObservation, act: Actuators) -> None:
        cfg = self.config
        p99 = obs.p99_ns
        if p99 is None:
            return
        if self._baseline is None:
            self._baseline = p99
            return
        if p99 > cfg.escalate_ratio * self._baseline:
            self._calm_epochs = 0
            if self._relaxed:
                # Under pressure the threshold cache must track the load
                # exactly again, and stale model points are flushed.
                act.set_threshold_epsilon(0.0)
                act.recalibrate_predictors()
                self._relaxed = False
            if self._level < cfg.max_level:
                self._level += 1
                if not self._defensive:
                    self._set_rung(act)
            return  # anomalies don't teach the baseline
        if p99 < cfg.relax_ratio * self._baseline:
            self._calm_epochs += 1
            if self._calm_epochs >= cfg.relax_after_epochs:
                self._calm_epochs = 0
                if self._level > 0:
                    self._level -= 1
                    if not self._defensive:
                        self._set_rung(act)
                elif not self._relaxed:
                    act.set_threshold_epsilon(cfg.relaxed_threshold_epsilon)
                    self._relaxed = True
        else:
            self._calm_epochs = 0
        self._baseline += cfg.baseline_alpha * (p99 - self._baseline)

    def _set_rung(self, act: Actuators) -> None:
        """Actuate the pressure ladder's current rung.

        Below ``swap_at_level`` the rung is a knob escalation of the
        construction-time policy; at and above it, the *policy swap* is
        the escalation (exact queue information instead of wider
        stale-sample probing -- probing more servers with stale
        estimates herds load onto whichever momentarily looks shortest,
        which is why the knob ladder stops here).
        """
        cfg = self.config
        if cfg.swap_policy and self._level >= cfg.swap_at_level:
            act.apply_level(cfg.swap_at_level - 1)
            if not self._swapped:
                act.swap_policy(cfg.swap_policy)
                self._swapped = True
        else:
            if self._swapped and act.base_policy_name:
                act.swap_policy(act.base_policy_name)
                self._swapped = False
            act.apply_level(self._level)

    # -- fault-episode defensive posture -------------------------------
    def _update_posture(self, obs: EpochObservation, act: Actuators) -> None:
        """While the steering set is impaired, jump to the top ladder
        rung for the whole episode, then return to the pressure ladder's
        state when it ends.  Two flavors of impairment get different
        treatment:

        * A unit *we* fault-drained (lossy NIC, throttled ToR port) also
          swaps to the exact-information policy -- the drain already
          removed the hazard, and precise queue placement across the
          smaller healthy set is worth its telemetry cost.
        * A unit that is outright unusable (crash, partition) only
          escalates the construction policy's knobs.  The health view
          already excludes the corpse; the survivors run uniformly hot,
          where wider fresh-sample probing spreads load and exact-queue
          chasing herds it.
        """
        cfg = self.config
        drained = any(
            reason == "fault" for reason in self._drain_reason.values()
        )
        impaired = drained or any(obs.unusable)
        if impaired and not self._defensive:
            self._defensive = True
            if drained and cfg.swap_policy and not self._swapped:
                act.swap_policy(cfg.swap_policy)
                self._swapped = True
            act.apply_level(cfg.max_level)
        elif not impaired and self._defensive:
            self._defensive = False
            self._set_rung(act)

    # -- datacenter rack autoscaling -----------------------------------
    def _update_autoscale(self, obs: EpochObservation, act: Actuators) -> None:
        cfg = self.config
        n = act.n_units
        if not cfg.autoscale or not n or len(obs.outstanding) != n:
            return
        active = [
            u for u in range(n)
            if not act.is_drained(u) and not obs.unusable[u]
        ]
        if not active:
            return
        cores = max(1, act.unit_cores)
        per_core = sum(obs.outstanding[u] for u in active) / (
            len(active) * cores
        )
        if per_core > cfg.autoscale_high:
            self._low_epochs = 0
            for unit in range(n):
                if self._drain_reason.get(unit) == "scale":
                    if act.restore(unit):
                        self._drain_reason.pop(unit, None)
                    return
            return
        if per_core < cfg.autoscale_low:
            self._low_epochs += 1
            if (
                self._low_epochs >= cfg.drain_after_epochs
                and len(active) > cfg.min_active
            ):
                self._low_epochs = 0
                idle = min(active, key=lambda u: (obs.outstanding[u], u))
                if act.drain(idle):
                    self._drain_reason[idle] = "scale"
        else:
            self._low_epochs = 0

    # -- Altocumulus worker rebalancing --------------------------------
    def _update_rebalance(self, obs: EpochObservation, act: Actuators) -> None:
        cfg = self.config
        groups = obs.group_outstanding
        if not cfg.rebalance_workers or not groups or len(groups) < 2:
            return
        if self._rebalance_cooldown > 0:
            self._rebalance_cooldown -= 1
            return
        hot = max(groups)
        cold = min(groups)
        if hot >= cfg.rebalance_ratio * max(1, cold):
            src = groups.index(cold)
            dst = groups.index(hot)
            if src != dst and act.reassign_worker(src, dst):
                self._rebalance_cooldown = cfg.rebalance_cooldown

    def decide(self, obs: EpochObservation, act: Actuators) -> None:
        self.decisions += 1
        self._update_drains(obs, act)
        self._update_posture(obs, act)
        self._update_pressure(obs, act)
        self._update_autoscale(obs, act)
        self._update_rebalance(obs, act)


class BanditController(Controller):
    """Epsilon-greedy over the telemetry ladder, rewarded by -p99."""

    name = "bandit"

    def __init__(self, config: ControlConfig, rng: np.random.Generator) -> None:
        super().__init__(config, rng)
        self._arm_value: List[Optional[float]] = [None] * (config.max_level + 1)
        self._current_arm: Optional[int] = None

    def _credit(self, obs: EpochObservation) -> None:
        arm = self._current_arm
        if arm is None or obs.p99_ns is None:
            return
        reward = -obs.p99_ns
        value = self._arm_value[arm]
        if value is None:
            self._arm_value[arm] = reward
        else:
            self._arm_value[arm] = value + self.config.reward_alpha * (
                reward - value
            )

    def _choose(self) -> int:
        # One exploration draw per epoch, always taken, so the RNG
        # stream's consumption pattern is a pure function of epoch count.
        explore = self.rng.random() < self.config.explore
        untried = [a for a, v in enumerate(self._arm_value) if v is None]
        if untried:
            # Optimistic initialization: visit every rung once, in order.
            return untried[0]
        if explore:
            return int(self.rng.integers(0, len(self._arm_value)))
        best = 0
        best_value = -float("inf")
        for arm, value in enumerate(self._arm_value):
            if value is not None and value > best_value:
                best = arm
                best_value = value
        return best

    def decide(self, obs: EpochObservation, act: Actuators) -> None:
        self.decisions += 1
        self._update_drains(obs, act)
        self._credit(obs)
        arm = self._choose()
        if arm != self._current_arm:
            act.apply_level(arm)
            self._current_arm = arm


def make_controller(
    config: ControlConfig, rng: np.random.Generator
) -> Controller:
    """Construct a controller by registry name."""
    if config.controller == "static":
        return StaticController(config, rng)
    if config.controller == "hysteresis":
        return HysteresisController(config, rng)
    if config.controller == "bandit":
        return BanditController(config, rng)
    raise ValueError(
        f"unknown controller {config.controller!r}; "
        f"pick from {CONTROLLER_NAMES}"
    )
