"""The control loop: sensing -> decision -> actuation, every epoch.

Built by :func:`repro.api.run_workload` when a
:class:`~repro.control.config.ControlConfig` is attached (explicitly or
ambient via :func:`repro.control.use_controller`), mirroring how the
fault injector wires in.  The loop runs entirely on the simulated
clock: a reusable engine timer fires every ``epoch_ns``, the loop
distills what the epoch produced into one
:class:`~repro.control.controllers.EpochObservation`, hands it to the
controller, and the controller actuates through the
:class:`~repro.control.actuators.Actuators` facade.

Sensing sources, cheapest first:

* a completion hook on the system (latency of every completed request
  this epoch -- the per-epoch p99/mean);
* live drop counters and per-unit outstanding probes;
* the injector's raw :class:`~repro.faults.health.HealthView` (captured
  *before* any admin overlay, so the controller never mistakes its own
  drains for faults);
* a namespace-filtered ``registry.snapshot("faults")`` for the
  loss-accounting delta -- the cheap filtered read that exists so an
  every-epoch poll does not pay full-registry serialization.

Determinism contract: the loop's timer is ordinary engine machinery
(extra events never reorder existing ones), sensing is pure reads, and
the ``static`` controller never actuates and never draws randomness --
so a static-controller run is bit-identical to an uncontrolled one,
which the golden determinism gate pins.  Adaptive controllers draw only
from the dedicated ``"control"`` RNG stream, so a fixed seed + config
reproduces every decision exactly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.control.actuators import Actuators
from repro.control.config import ControlConfig
from repro.control.controllers import EpochObservation, make_controller
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry

#: ``faults.*`` counters summed into the epoch loss signal.
_LOSS_COUNTERS = (
    "faults.requests_blackholed",
    "faults.nic_burst_dropped",
    "faults.responses_lost",
)


class ControlLoop:
    """Wires one controller into one system for the duration of a run."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: ControlConfig,
        system,
    ) -> None:
        self.sim = sim
        self.config = config
        self.system = system
        registry: Optional[MetricRegistry] = getattr(system, "metrics", None)
        if registry is None:
            registry = MetricRegistry()
        self.registry = registry
        self.trace = getattr(system, "trace", None)
        servers = getattr(system, "servers", None)
        if self.trace is None and servers:
            self.trace = getattr(servers[0], "trace", None)
        #: The injector's raw health view, captured before any admin
        #: overlay so fault state and admin state stay distinguishable.
        self._raw_health = getattr(system, "health", None)
        self._units = list(servers) if servers is not None else []
        self._probe = getattr(system, "outstanding", None)
        self._group_probe = getattr(system, "group_outstanding", None)
        #: Sense fault-loss accounting only when an injector registered
        #: its namespace (plain runs skip the read entirely).
        self._sense_faults = _LOSS_COUNTERS[0] in registry

        self.actuators = Actuators(
            sim, streams, system, config, registry, trace=self.trace
        )
        self.controller = make_controller(config, streams.get("control"))

        # control.* epoch instruments -- registered only here, so plain
        # builds keep the pinned metrics schema untouched.
        self._m_epochs = registry.counter("control.epochs")
        self._m_completed = registry.counter("control.epoch_completed")
        self._m_last_p99 = registry.gauge("control.last_p99_ns")
        self._m_last_mean = registry.gauge("control.last_mean_ns")
        registry.gauge("control.level", fn=lambda: self.actuators.level)
        registry.gauge(
            "control.drained_units",
            fn=lambda: len(self._units) - self.actuators.active_units(),
        )

        # Epoch accumulation state.
        self._lat: List[float] = []
        self._epoch_index = 0
        self._epoch_start = sim.now
        self._last_dropped = self._read_dropped()
        self._last_lost = self._read_lost()

        hooks = getattr(system, "completion_hooks", None)
        if hooks is not None:
            hooks.append(self._on_complete)
        self._event: Optional[Event] = sim.schedule_timer(
            config.epoch_ns, self._tick
        )

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def _on_complete(self, request) -> None:
        self._lat.append(request.latency)

    def _read_dropped(self) -> int:
        stats = getattr(self.system, "stats", None)
        return getattr(stats, "dropped", 0) if stats is not None else 0

    def _read_lost(self) -> int:
        if not self._sense_faults:
            return 0
        snap = self.registry.snapshot("faults")
        return sum(int(snap.get(name, 0)) for name in _LOSS_COUNTERS)

    def _observe(self) -> EpochObservation:
        lat = self._lat
        if lat:
            p99: Optional[float] = float(np.percentile(lat, 99.0))
            mean: Optional[float] = float(sum(lat) / len(lat))
        else:
            p99 = mean = None
        dropped = self._read_dropped()
        lost = self._read_lost()
        n = len(self._units)
        outstanding: List[float] = []
        degraded = [False] * n
        unusable = [False] * n
        if n and self._probe is not None:
            outstanding = [float(self._probe(u)) for u in range(n)]
        health = self._raw_health
        if n and health is not None:
            health_degraded = getattr(health, "degraded", None)
            for unit in range(n):
                unusable[unit] = not health.usable(unit)
                if health_degraded is not None:
                    degraded[unit] = health_degraded(unit)
        obs = EpochObservation(
            index=self._epoch_index,
            t_start=self._epoch_start,
            t_end=self.sim.now,
            completed=len(lat),
            dropped=dropped - self._last_dropped + lost - self._last_lost,
            p99_ns=p99,
            mean_ns=mean,
            outstanding=outstanding,
            degraded=degraded,
            unusable=unusable,
            group_outstanding=(
                self._group_probe() if self._group_probe is not None else None
            ),
        )
        self._last_dropped = dropped
        self._last_lost = lost
        return obs

    # ------------------------------------------------------------------
    # The epoch tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        obs = self._observe()
        self._m_epochs.value += 1
        self._m_completed.value += obs.completed
        if obs.p99_ns is not None:
            self._m_last_p99.set(obs.p99_ns)
            self._m_last_mean.set(obs.mean_ns)
        self.controller.decide(obs, self.actuators)
        self._epoch_index += 1
        self._epoch_start = self.sim.now
        self._lat.clear()
        self._event = self.sim.schedule_timer(
            self.config.epoch_ns, self._tick, event=self._event
        )

    def finalize(self) -> None:
        """Stop the epoch timer and flush open actuation spans (call
        after ``sim.run``)."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        self.actuators.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ControlLoop {self.controller.name} "
            f"epochs={self._m_epochs.value}>"
        )
