"""Process-global default controller config (the ``--controller`` CLI
surface).

Mirrors :func:`repro.faults.use_fault_plan`: the CLI installs a
:class:`~repro.control.config.ControlConfig` for the duration of an
experiment invocation, and every :func:`repro.api.run_workload` call
that was not handed an explicit ``control=`` argument picks it up.  The
global lives in the current process only -- the CLI forces ``--jobs 1``
and ``--no-cache`` when a controller is installed (runner sweeps that
want parallel controlled points carry the config explicitly in their
:class:`~repro.runner.spec.PointSpec`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.control.config import ControlConfig

_ACTIVE_CONTROL: Optional[ControlConfig] = None


def active_control_config() -> Optional[ControlConfig]:
    """The process-global default controller config, or None."""
    return _ACTIVE_CONTROL


@contextmanager
def use_controller(config: Optional[ControlConfig]) -> Iterator[None]:
    """Install ``config`` as the default for the duration of the block."""
    global _ACTIVE_CONTROL
    previous = _ACTIVE_CONTROL
    _ACTIVE_CONTROL = config
    try:
        yield
    finally:
        _ACTIVE_CONTROL = previous
