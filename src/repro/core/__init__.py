"""The paper's primary contribution: the Altocumulus scheduling system.

Components (Fig. 5):

* :mod:`repro.core.prediction` -- the offline Erlang-C model (Eqs. 1-2)
  that turns system load into an SLO-violation threshold ``T``.
* :mod:`repro.core.patterns` -- Hill / Valley / Pairing classification
  of the synchronized queue-length vector (Sec. VI).
* :mod:`repro.core.interface` -- the software-hardware interface cost
  model: custom ISA instructions (Table III) vs. x86 MSR syscalls.
* :mod:`repro.core.runtime` -- the per-manager software runtime
  implementing Algorithm 1.
* :mod:`repro.core.scheduler` -- the full two-tier system (AC_int /
  AC_rss variants) wired onto the hardware messaging of
  :mod:`repro.hw.messaging`.
"""

from repro.core.config import AltocumulusConfig
from repro.core.prediction import (
    ThresholdModel,
    calibrate_threshold_model,
    erlang_c,
    expected_queue_length,
)
from repro.core.patterns import Pattern, classify_pattern, migration_plan
from repro.core.interface import HwInterface
from repro.core.runtime import LoadEstimator, ManagerRuntime
from repro.core.scheduler import AltocumulusSystem

__all__ = [
    "AltocumulusConfig",
    "ThresholdModel",
    "calibrate_threshold_model",
    "erlang_c",
    "expected_queue_length",
    "Pattern",
    "classify_pattern",
    "migration_plan",
    "HwInterface",
    "LoadEstimator",
    "ManagerRuntime",
    "AltocumulusSystem",
]
