"""Altocumulus system configuration (the parameters of Sec. III-A and
the programmer guidelines of Sec. VI)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.prediction import ThresholdModel


@dataclass
class AltocumulusConfig:
    """Everything that parameterises an :class:`AltocumulusSystem`.

    Attributes
    ----------
    n_groups / group_size:
        Core grouping: each group is 1 manager + ``group_size - 1``
        workers.  The paper settles on 16-core groups (Sec. VIII-B).
    period_ns:
        Migration decision interval ``P`` (swept 10-1000 ns; 200 ns is
        the tuned default of Sec. VIII-C).
    bulk:
        Maximum descriptors batched per migration round (8-40; 16
        eliminates all violations in Fig. 11a).
    concurrency:
        Concurrent MIGRATE flows per decision; the paper sets it to
        n/4, n/2 or n managers and "usually maximised to N".
    variant:
        ``"int"`` -- hardware-terminated integrated NIC, hardware JBSQ
        dispatch inside each group (AC_int).
        ``"rss"`` -- commodity PCIe RSS NIC, software dispatch by the
        manager at >= 70 cycles/message (AC_rss).
    interface:
        ``"isa"`` (custom instructions) or ``"msr"`` (syscalls).
    threshold_mode:
        ``"model"`` -- Eq. 2 via ``threshold_model``;
        ``"upper_bound"`` -- ``k*L + 1``;
        ``"fixed"`` -- the constant ``fixed_threshold`` (used to replay
        a measured ``T_lower``).
    threshold_model:
        The calibrated Eq. 2 constants (defaults to the Fig. 7d fit).
    slo_multiplier:
        ``L`` in ``SLO = L x mean service time`` (10 unless stated).
    offered_load:
        Per-group load in Erlangs, if known a priori; otherwise the
        runtime estimates it online (EWMA).
    worker_bound:
        Local c-FCFS depth bound (2, inherited from JBSQ(2) hardware).
    allow_remigration:
        Paper forbids migrating twice (Sec. V-B opt. 4); True enables
        the ablation.
    steering_policy:
        NIC steering across manager NetRX queues ("connection",
        "random", "round_robin").
    mr_capacity:
        Bound on each manager's MR file (None = memory-backed/unbounded).
    runtime_enabled:
        False disables prediction+migration entirely (the "before the
        Altocumulus runtime has started" baseline of Fig. 14).
    messaging:
        ``"hw"`` -- the paper's register-level migrator/controller over
        the NoC.  ``"sw"`` -- migrations move through shared caches:
        each descriptor costs the manager one coherence message and the
        transfer adds coherence latency (the AC_int_rt configuration of
        case study 1, runtime without the messaging hardware).
    """

    n_groups: int = 1
    group_size: int = 16
    period_ns: float = 200.0
    bulk: int = 16
    concurrency: int = 8
    variant: str = "int"
    interface: str = "isa"
    threshold_mode: str = "model"
    threshold_model: ThresholdModel = field(
        default_factory=lambda: ThresholdModel(a=1.01, b=0.0, c=0.998, d=0.0)
    )
    fixed_threshold: float = float("inf")
    slo_multiplier: float = 10.0
    offered_load: Optional[float] = None
    worker_bound: int = 2
    allow_remigration: bool = False
    steering_policy: str = "connection"
    mr_capacity: Optional[int] = None
    runtime_enabled: bool = True
    messaging: str = "hw"
    dispatch_mode: Optional[str] = None
    #: Application-isolation extension (the paper's stated future work,
    #: Sec. XI): a partition of the group indices.  Migrations never
    #: cross domain boundaries, so co-located applications cannot
    #: pollute each other's groups.  None = one global domain.
    migration_domains: Optional[List[List[int]]] = None
    #: Model per-link NoC contention for Altocumulus messages.  Off by
    #: default (the paper argues the NoC is lightly loaded, Sec. V-B);
    #: the ablation bench turns it on to verify that claim.
    noc_link_contention: bool = False
    #: Threshold-cache tolerance (Erlangs): the manager runtime reuses
    #: its last computed migration threshold while the load estimate
    #: stays within this distance of the load it was computed at.  The
    #: default 0.0 only reuses *identical* loads, which is bit-identical
    #: to recomputing every tick; raise it to trade threshold freshness
    #: for tick cost on estimator-driven configurations.
    threshold_epsilon: float = 0.0

    def __post_init__(self) -> None:
        if self.n_groups <= 0:
            raise ValueError(f"n_groups must be positive, got {self.n_groups}")
        if self.group_size < 2:
            raise ValueError(
                f"group_size must be >= 2 (manager + worker), got {self.group_size}"
            )
        if self.period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {self.period_ns}")
        if self.bulk <= 0:
            raise ValueError(f"bulk must be positive, got {self.bulk}")
        if self.concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {self.concurrency}")
        if self.variant not in ("int", "rss"):
            raise ValueError(f"variant must be 'int' or 'rss', got {self.variant!r}")
        if self.interface not in ("isa", "msr"):
            raise ValueError(
                f"interface must be 'isa' or 'msr', got {self.interface!r}"
            )
        if self.threshold_mode not in ("model", "upper_bound", "fixed"):
            raise ValueError(
                "threshold_mode must be 'model', 'upper_bound' or 'fixed', "
                f"got {self.threshold_mode!r}"
            )
        if self.slo_multiplier <= 0:
            raise ValueError(
                f"slo_multiplier must be positive, got {self.slo_multiplier}"
            )
        if self.worker_bound <= 0:
            raise ValueError(
                f"worker_bound must be positive, got {self.worker_bound}"
            )
        if self.threshold_epsilon < 0:
            raise ValueError(
                f"threshold_epsilon must be >= 0, got {self.threshold_epsilon}"
            )
        if self.messaging not in ("hw", "sw"):
            raise ValueError(
                f"messaging must be 'hw' or 'sw', got {self.messaging!r}"
            )
        if self.dispatch_mode not in (None, "hw", "sw"):
            raise ValueError(
                f"dispatch_mode must be None, 'hw' or 'sw', got {self.dispatch_mode!r}"
            )
        if self.migration_domains is not None:
            flat = [g for domain in self.migration_domains for g in domain]
            if sorted(flat) != list(range(self.n_groups)):
                raise ValueError(
                    "migration_domains must partition the group indices "
                    f"0..{self.n_groups - 1}, got {self.migration_domains}"
                )

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Total cores (managers + workers)."""
        return self.n_groups * self.group_size

    @property
    def workers_per_group(self) -> int:
        return self.group_size - 1

    @property
    def n_workers(self) -> int:
        return self.n_groups * self.workers_per_group

    def domain_of(self, group: int) -> List[int]:
        """The isolation domain containing ``group`` (all groups if no
        domains are configured)."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        if self.migration_domains is None:
            return list(range(self.n_groups))
        for domain in self.migration_domains:
            if group in domain:
                return list(domain)
        raise AssertionError("validated partition must cover every group")

    @property
    def effective_dispatch(self) -> str:
        """How requests move from the manager's NetRX to workers.

        Defaults by NIC variant (AC_int ships hardware JBSQ; AC_rss
        dispatches in manager software), but Fig. 14's AC_rss pairs the
        commodity NIC with the in-CPU hardware path -- override with
        ``dispatch_mode="hw"`` for that configuration.
        """
        if self.dispatch_mode is not None:
            return self.dispatch_mode
        return "sw" if self.variant == "rss" else "hw"
