"""Software-hardware interface cost model (Sec. VI, Table III).

The runtime reaches the manager-tile hardware either through:

* **Custom ISA instructions** (``altom_send``, ``altom_status``,
  ``altom_update``, ``altom_predict_config``) -- register-level
  micro-ops issued directly from user space, a few cycles each; or
* **x86 MSRs** -- ``rdmsr``/``wrmsr`` syscalls at ~100 cycles each on
  Sandybridge-EP-class servers.

A runtime tick issues a fixed set of accesses (status read, update
write, config write) plus one send per MIGRATE message; the per-access
cost difference is what separates AC_rss-ISA from AC_rss-MSR in Fig. 14.
The tick's arithmetic itself (threshold multiply-adds and pattern
comparisons) is the worst-case 18 ns of Sec. VIII-E.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants

#: Worst-case prediction arithmetic per tick (Sec. VIII-E): 2 muls
#: (7 cycles) + 2 adds (1 cycle) + 3 compares (2 cycles) at 2 GHz ~= 18ns.
PREDICTION_COMPUTE_NS = 18.0

#: Register accesses per tick independent of migrations:
#: altom_status + altom_update + altom_predict_config.
BASE_ACCESSES_PER_TICK = 3


@dataclass(frozen=True)
class HwInterface:
    """Cost model for one flavour of software-hardware interface."""

    kind: str
    access_ns: float

    @staticmethod
    def isa(constants: HwConstants = DEFAULT_CONSTANTS) -> "HwInterface":
        """Custom Altocumulus instructions (Table III)."""
        return HwInterface(kind="isa", access_ns=constants.isa_access_ns)

    @staticmethod
    def msr(constants: HwConstants = DEFAULT_CONSTANTS) -> "HwInterface":
        """x86 ``rdmsr``/``wrmsr`` syscalls (~100 cycles each)."""
        return HwInterface(kind="msr", access_ns=constants.msr_access_ns)

    @staticmethod
    def of(kind: str, constants: HwConstants = DEFAULT_CONSTANTS) -> "HwInterface":
        if kind == "isa":
            return HwInterface.isa(constants)
        if kind == "msr":
            return HwInterface.msr(constants)
        raise ValueError(f"unknown interface kind {kind!r}; expected 'isa' or 'msr'")

    def tick_cost_ns(self, migrate_messages: int, queue_reads: int = 0) -> float:
        """Manager-core time consumed by one runtime tick.

        ``migrate_messages`` -- ``altom_send`` issues this tick.
        ``queue_reads`` -- reads of the synchronized queue-length vector
        (one per manager group).  The custom ``altom_update`` moves the
        whole vector in one instruction, but the MSR fallback pays one
        ``rdmsr`` per entry -- a major part of why the MSR interface
        stretches the runtime's cadence (Fig. 14).
        """
        if migrate_messages < 0:
            raise ValueError(f"migrate count must be >= 0, got {migrate_messages}")
        if queue_reads < 0:
            raise ValueError(f"queue reads must be >= 0, got {queue_reads}")
        accesses = BASE_ACCESSES_PER_TICK + migrate_messages
        if self.kind == "msr":
            accesses += queue_reads
        elif queue_reads > 0:
            accesses += 1  # altom_update reads the vector in one shot
        return PREDICTION_COMPUTE_NS + accesses * self.access_ns
