"""The Altocumulus instruction set (Table III), executable.

The paper adds four instructions so the user-level runtime can drive the
manager-tile hardware without syscalls:

=======================  ====================================================
``altom_send r1,r2,r3``  send local MR offset (r1) content to MR entry id
                         (r2) with a batch size (r3)
``altom_status``         returns local head, tail and threshold pointers
``altom_update r6,q``    update local rx queue depth (r6) to all managers
                         (vector register of length n, stride 1)
``altom_predict_config`` update migration-related registers
=======================  ====================================================

This module implements them as instruction objects executing against a
:class:`~repro.hw.messaging.ManagerTileHw`, with per-issue cycle
accounting taken from the active :class:`~repro.core.interface.HwInterface`
(a few cycles for the custom instructions, ~100 cycles each when lowered
to ``rdmsr``/``wrmsr``).  The runtime can therefore be driven through an
explicit instruction stream, and tests can assert on the exact sequence
a tick issues -- the closest software analogue of the paper's ISA-level
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.interface import HwInterface
from repro.hw.messaging import ManagerTileHw
from repro.workload.request import Request


@dataclass
class IssueLog:
    """Per-manager instruction accounting."""

    counts: Dict[str, int] = field(default_factory=dict)
    cycles_ns: float = 0.0
    trace: List[str] = field(default_factory=list)

    def record(self, mnemonic: str, cost_ns: float, detail: str = "") -> None:
        self.counts[mnemonic] = self.counts.get(mnemonic, 0) + 1
        self.cycles_ns += cost_ns
        self.trace.append(f"{mnemonic} {detail}".rstrip())

    @property
    def total_issues(self) -> int:
        return sum(self.counts.values())


@dataclass(frozen=True)
class StatusResult:
    """What ``altom_status`` returns: the local queue pointers and the
    currently configured threshold."""

    head: int
    tail: int
    threshold: float
    queue_len: int


class AltocumulusIsa:
    """Executes Table III instructions against one manager tile.

    Every issue charges the interface's per-access cost to the log; the
    caller (runtime / system) decides what to do with the accumulated
    manager-core time.
    """

    def __init__(self, hw: ManagerTileHw, interface: HwInterface) -> None:
        self.hw = hw
        self.interface = interface
        self.log = IssueLog()

    # ------------------------------------------------------------------
    def _charge(self, mnemonic: str, detail: str = "",
                accesses: int = 1) -> float:
        cost = accesses * self.interface.access_ns
        self.log.record(mnemonic, cost, detail)
        return cost

    # ------------------------------------------------------------------
    def altom_status(self) -> StatusResult:
        """Read the local MR head/tail pointers and threshold register."""
        self._charge("altom_status")
        mrs = self.hw.mrs
        entries = len(mrs)
        return StatusResult(
            head=0,
            tail=entries,
            threshold=self.hw.prs.threshold,
            queue_len=entries,
        )

    def altom_update(self, queue_len: int, n_managers: int) -> None:
        """Broadcast the local queue depth to all managers.

        The custom instruction moves the whole vector in one issue; an
        MSR lowering pays one access per destination register.
        """
        accesses = 1 if self.interface.kind == "isa" else max(1, n_managers)
        self._charge("altom_update", f"q={queue_len}", accesses=accesses)
        self.hw.broadcast_update(queue_len)

    def altom_predict_config(self, **registers: object) -> None:
        """Write migration parameters into the PR block."""
        self._charge("altom_predict_config",
                     ",".join(sorted(registers)) or "-")
        if registers:
            self.hw.configure(**registers)

    def altom_send(
        self,
        dst_manager: int,
        batch: List[Request],
    ) -> bool:
        """Trigger one MIGRATE of ``batch`` descriptors to ``dst_manager``.

        Returns False on send-FIFO back-pressure (the caller restores
        the batch), mirroring :meth:`ManagerTileHw.send_migrate`.
        """
        self._charge("altom_send", f"dst={dst_manager} n={len(batch)}")
        return self.hw.send_migrate(dst_manager, batch)

    # ------------------------------------------------------------------
    def read_queue_vector(self, q_view: List[int]) -> Tuple[List[int], float]:
        """Read the synchronized queue-length vector from the PRs.

        One vector-register read under the custom ISA; one ``rdmsr`` per
        entry under the MSR lowering.  Returns (vector, cost charged).
        """
        accesses = 1 if self.interface.kind == "isa" else max(1, len(q_view))
        cost = self._charge("read_q_vector", accesses=accesses)
        return list(q_view), cost

    def drain_cost_ns(self) -> float:
        """Total manager-core time consumed since construction."""
        return self.log.cycles_ns

    def reset_window(self) -> float:
        """Return accumulated cost and start a fresh accounting window
        (called by the runtime at the end of each tick)."""
        cost = self.log.cycles_ns
        self.log.cycles_ns = 0.0
        return cost


def tick_instruction_budget(
    interface: HwInterface, n_managers: int, migrate_sends: int
) -> float:
    """Closed-form cost of one tick's instruction stream.

    status + update + predict_config + vector read + one send per
    MIGRATE -- the sequence Algorithm 1 issues.  Matches
    :meth:`HwInterface.tick_cost_ns` minus the fixed prediction
    arithmetic (which is plain ALU work, not interface accesses).
    """
    per_access = interface.access_ns
    vector_accesses = 1 if interface.kind == "isa" else n_managers
    update_accesses = 1 if interface.kind == "isa" else n_managers
    return per_access * (
        1  # altom_status
        + update_accesses
        + 1  # altom_predict_config
        + vector_accesses
        + migrate_sends
    )
