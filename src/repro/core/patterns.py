"""Queue-length pattern classification (Sec. VI).

Every period, each manager looks at the synchronized queue-length
vector ``q`` and classifies it:

* **Hill** -- the longest queue towers over the second longest by more
  than ``Bulk``: the peak manager scatters work to the shorter queues.
* **Valley** -- the shortest queue undercuts the second shortest by
  more than ``Bulk``: every other manager sends one MIGRATE to fill it.
* **Pairing** -- a gradual slope (spread > ``Bulk`` without a single
  peak/dip): the i-th longest queue pairs with the i-th shortest.
* **Balanced** -- nothing to do.

Because ``q`` is synchronized via UPDATE broadcasts, all managers
classify identically and the per-manager plans compose into a global
migration round without any central coordinator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence


class Pattern(enum.Enum):
    """Queue-length vector shapes the runtime classifies."""
    HILL = "hill"
    VALLEY = "valley"
    PAIRING = "pairing"
    BALANCED = "balanced"


@dataclass(frozen=True)
class MigrationPlan:
    """What one manager should do this period.

    ``destinations`` is the ``QD`` vector of Algorithm 1: the manager
    sends one MIGRATE of ``Bulk / Concurrency`` descriptors to each
    entry (subject to the line-8 guard, applied later against live
    queue lengths).
    """

    pattern: Pattern
    destinations: List[int]

    @property
    def migrates(self) -> int:
        return len(self.destinations)


def classify_pattern(q: Sequence[int], bulk: int) -> Pattern:
    """Classify a queue-length vector (identical on every manager)."""
    if bulk <= 0:
        raise ValueError(f"bulk must be positive, got {bulk}")
    if len(q) < 2:
        return Pattern.BALANCED
    return _classify_ranked(q, _ranked(q), bulk)


def _classify_ranked(q: Sequence[int], ranked: Sequence[int], bulk: int) -> Pattern:
    """Classification given the longest-first index ranking.

    Split out so :func:`migration_plan` can classify from the ranking it
    already computed instead of sorting the vector a second time.
    ``q[ranked[i]]`` *is* ``sorted(q, reverse=True)[i]``, so the result
    is identical to :func:`classify_pattern`.
    """
    longest, second_longest = q[ranked[0]], q[ranked[1]]
    shortest, second_shortest = q[ranked[-1]], q[ranked[-2]]
    if longest - second_longest > bulk:
        return Pattern.HILL
    if second_shortest - shortest > bulk:
        return Pattern.VALLEY
    if longest - shortest > bulk:
        return Pattern.PAIRING
    return Pattern.BALANCED


def _ranked(q: Sequence[int]) -> List[int]:
    """Queue indices sorted longest-first, index as tiebreak (stable and
    identical across managers)."""
    # sort is stable, so reverse=True on the value key keeps ascending
    # index order within equal values -- same ordering as the tuple key
    # (-q[i], i), without building a tuple per element.
    return sorted(range(len(q)), key=q.__getitem__, reverse=True)


def migration_plan(
    q: Sequence[int],
    self_index: int,
    bulk: int,
    concurrency: int,
    threshold: float = float("inf"),
) -> MigrationPlan:
    """Algorithm 1's ``predict()``: this manager's destinations.

    Triggers when either (1) the local queue exceeds the threshold ``T``
    or (2) the vector matches a pattern.  Destinations are capped at
    ``concurrency`` concurrent flows.
    """
    if not 0 <= self_index < len(q):
        raise ValueError(f"self_index {self_index} out of range for {len(q)} queues")
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    n = len(q)
    if n < 2:
        return MigrationPlan(Pattern.BALANCED, [])
    if bulk <= 0:
        raise ValueError(f"bulk must be positive, got {bulk}")
    ranked = _ranked(q)
    pattern = _classify_ranked(q, ranked, bulk)
    threshold_hit = q[self_index] > threshold

    if pattern is Pattern.HILL:
        if ranked[0] == self_index:
            dests = [i for i in reversed(ranked) if i != self_index]
            return MigrationPlan(pattern, dests[:concurrency])
        # Not the peak: still honour a threshold breach below.
    elif pattern is Pattern.VALLEY:
        lowest = ranked[-1]
        if self_index != lowest:
            return MigrationPlan(pattern, [lowest])
        return MigrationPlan(pattern, [])
    elif pattern is Pattern.PAIRING:
        # The i-th longest queue pairs with the i-th shortest; only the
        # top half (and at most `concurrency` pairs) send.
        pairs = min(concurrency, n // 2)
        for rank in range(pairs):
            src = ranked[rank]
            dst = ranked[n - 1 - rank]
            if src == self_index and src != dst and q[src] > q[dst]:
                return MigrationPlan(pattern, [dst])
        # fall through to threshold check

    if threshold_hit:
        dests = [i for i in reversed(ranked) if i != self_index]
        return MigrationPlan(pattern, dests[:concurrency])
    return MigrationPlan(pattern, [])


def migrate_size(bulk: int, concurrency: int) -> int:
    """Descriptors per MIGRATE message: ``S = Bulk / Concurrency``
    (at least one)."""
    if bulk <= 0 or concurrency <= 0:
        raise ValueError("bulk and concurrency must be positive")
    return max(1, bulk // concurrency)
