"""The proactive SLO-violation prediction model (Sec. IV).

The crux of Altocumulus: predict which queued RPCs will violate the SLO
*before* they do, using queue length as the signal.  The model has three
pieces:

1. **Erlang-C** (Eq. 1): for a ``k``-server queue at offered load ``A``
   Erlangs, the probability an arrival must wait is ``C_k(A)``, and the
   expected queue length is ``E[Nq] = C_k(A) * A / (k - A)``.
2. **Linear transformation** (Eq. 2): the migration threshold is
   ``E[T] = a * E[c * Nq + d] + b`` with constants ``(a, b, c, d)``
   determined empirically per service-time distribution.
3. **Calibration**: :func:`calibrate_threshold_model` least-squares fits
   ``(a, b)`` from simulation-measured first-violation queue lengths
   across loads, exactly how the paper derives Fig. 7(d).

Threshold extremes (Sec. IV trade-off):

* ``T_lower = queue length at the first actual violation`` -- catches
  every violator but migrates many false positives;
* ``T_upper = k * L + 1`` -- every migration saves a violator, but many
  violators go uncaught.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

import numpy as np

#: Memo size for the Erlang-C fast path.  Sweeps revisit the same
#: (k, load) points constantly -- every manager tick at a configured
#: offered load, every calibration grid point -- so an exact-key LRU
#: short-circuits the O(k) series evaluation.  Keys are *exact* float
#: loads: a hit returns the bit-identical value the series would
#: produce, so memoization never perturbs simulation results.
_ERLANG_CACHE_SIZE = 4096


@lru_cache(maxsize=_ERLANG_CACHE_SIZE)
def _erlang_c_series(k: int, a: float) -> float:
    """The O(k) Erlang-C evaluation for validated ``0 < a < k``."""
    rho = a / k
    # Sum A^i / i! computed iteratively to avoid overflow for large k.
    term = 1.0
    partial = 1.0
    for i in range(1, k):
        term *= a / i
        partial += term
    top = term * a / k / (1.0 - rho)
    return top / (partial + top)


def erlang_c(k: int, load_erlangs: float) -> float:
    """Erlang-C formula: probability an arrival queues in an M/M/k system.

    Memoized on the exact ``(k, load_erlangs)`` pair (LRU of
    ``_ERLANG_CACHE_SIZE`` entries), so repeated evaluations -- the
    per-tick threshold recomputation at a fixed offered load -- cost a
    dictionary lookup instead of an O(k) series.

    Parameters
    ----------
    k:
        Number of servers (worker cores in a group).
    load_erlangs:
        Offered load ``A = lambda * E[S]`` in Erlangs; must satisfy
        ``0 <= A < k`` for a stable queue.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if load_erlangs < 0:
        raise ValueError(f"load must be >= 0, got {load_erlangs}")
    if load_erlangs == 0:
        return 0.0
    if load_erlangs >= k:
        return 1.0  # saturated: every arrival queues
    return _erlang_c_series(k, load_erlangs)


@lru_cache(maxsize=_ERLANG_CACHE_SIZE)
def _expected_queue_length_cached(k: int, load_erlangs: float) -> float:
    c = erlang_c(k, load_erlangs)
    return c * load_erlangs / (k - load_erlangs)


def expected_queue_length(k: int, load_erlangs: float) -> float:
    """Eq. 1: mean number waiting, ``E[Nq] = C_k(A) * A / (k - A)``.

    Memoized exactly like :func:`erlang_c` (same keys, same hit rate).
    """
    if load_erlangs >= k:
        return float("inf")
    return _expected_queue_length_cached(k, load_erlangs)


def expected_wait(k: int, load_erlangs: float, mean_service_ns: float) -> float:
    """Mean queueing delay of an M/M/k system (Little's law on E[Nq])."""
    if mean_service_ns <= 0:
        raise ValueError(f"mean service must be positive, got {mean_service_ns}")
    if load_erlangs <= 0:
        return 0.0
    if load_erlangs >= k:
        return float("inf")
    lam = load_erlangs / mean_service_ns
    return expected_queue_length(k, load_erlangs) / lam


@dataclass(frozen=True)
class ThresholdModel:
    """Eq. 2: ``E[T] = a * E[c * Nq + d] + b``.

    ``E[c*Nq+d] = c*E[Nq]+d`` by linearity, so the model is an affine
    map of the Erlang-C queue length.  ``(c, d)`` rescale the queueing
    model (service-time variance correction); ``(a, b)`` map the
    corrected expectation onto the observed first-violation length.
    """

    a: float = 1.0
    b: float = 0.0
    c: float = 1.0
    d: float = 0.0
    name: str = "identity"

    def threshold(self, k: int, load_erlangs: float) -> float:
        """Predicted SLO-violation threshold queue length at this load."""
        nq = expected_queue_length(k, load_erlangs)
        if math.isinf(nq):
            return float("inf")
        return self.a * (self.c * nq + self.d) + self.b

    def with_name(self, name: str) -> "ThresholdModel":
        return ThresholdModel(self.a, self.b, self.c, self.d, name)


@lru_cache(maxsize=_ERLANG_CACHE_SIZE)
def harmonic_number(k: int) -> float:
    """``H_k = 1 + 1/2 + ... + 1/k``: the expected maximum of ``k``
    iid Exp(1) variables -- the tail-at-scale inflation factor of
    k-of-k scatter-gather completion."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return sum(1.0 / i for i in range(1, k + 1))


def expected_job_latency(
    k: int, load_erlangs: float, mean_service_ns: float, fanout: int
) -> float:
    """Approximate mean latency of a ``fanout``-wide scatter-gather job.

    Each sibling's sojourn is roughly ``E[W] + E[S]`` (M/M/k wait plus
    service); the job completes on the *last* of ``fanout`` near-iid
    exponential-ish sojourns, whose expected maximum inflates by the
    harmonic number ``H_fanout``.  Eq. 1 alone (``fanout == 1``) is the
    single-request special case -- and is *wrong* for k-of-k completion,
    which is why the corrected estimator exists.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    sojourn = expected_wait(k, load_erlangs, mean_service_ns) + mean_service_ns
    if math.isinf(sojourn):
        return float("inf")
    return harmonic_number(fanout) * sojourn


@dataclass(frozen=True)
class FanoutCorrectedModel(ThresholdModel):
    """Eq. 2 corrected for k-of-k scatter-gather completion.

    A job violates its SLO when its *slowest* sibling does, so with
    ``fanout`` siblings the job-level tail inflates by ``H_fanout`` and
    the per-sibling latency slack shrinks by the same factor: the
    migration threshold must fire at a queue length ``H_fanout`` times
    shorter than the single-request model predicts.  Plugs into the
    existing :attr:`repro.core.config.AltocumulusConfig.threshold_model`
    seam unchanged.
    """

    fanout: int = 1

    def threshold(self, k: int, load_erlangs: float) -> float:
        base = ThresholdModel.threshold(self, k, load_erlangs)
        if math.isinf(base):
            return base
        return base / harmonic_number(self.fanout)


def fanout_corrected_model(
    base: ThresholdModel, fanout: int
) -> FanoutCorrectedModel:
    """Wrap a calibrated single-request model for a fan-out workload."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    return FanoutCorrectedModel(
        a=base.a, b=base.b, c=base.c, d=base.d,
        name=f"{base.name}+fanout{fanout}", fanout=fanout,
    )


def upper_bound_threshold(k: int, slo_multiplier: float) -> float:
    """``T_upper = k * L + 1``: the naive bound of Sec. IV.

    Every migration it triggers prevents a violation, but violations at
    shorter queue lengths are missed entirely.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if slo_multiplier <= 0:
        raise ValueError(f"SLO multiplier must be positive, got {slo_multiplier}")
    return k * slo_multiplier + 1


def calibrate_threshold_model(
    loads: Sequence[float],
    measured_thresholds: Sequence[float],
    k: int,
    c: float = 1.0,
    d: float = 0.0,
    name: str = "calibrated",
) -> ThresholdModel:
    """Fit ``(a, b)`` so that ``a*(c*E[Nq]+d)+b`` tracks measured ``T``.

    ``loads`` are offered loads in Erlangs and ``measured_thresholds``
    are the simulation-observed queue lengths at which the first SLO
    violation occurred (one per load) -- the procedure of Sec. IV-A.
    """
    if len(loads) != len(measured_thresholds):
        raise ValueError("loads and thresholds must have equal length")
    if len(loads) < 2:
        raise ValueError("need at least two calibration points")
    xs = np.array([c * expected_queue_length(k, a) + d for a in loads])
    ys = np.asarray(measured_thresholds, dtype=float)
    finite = np.isfinite(xs) & np.isfinite(ys)
    if finite.sum() < 2:
        raise ValueError("not enough finite calibration points")
    slope, intercept = np.polyfit(xs[finite], ys[finite], 1)
    return ThresholdModel(a=float(slope), b=float(intercept), c=c, d=d, name=name)


#: Distribution-family constants.  The Fixed entry is the worked example
#: of Fig. 7(d): a=1.01, c=0.998, b=d=0.  Uniform and Bimodal carry
#: variance corrections estimated from the same simulation methodology
#: (higher service variance -> earlier violations -> lower threshold).
DEFAULT_MODELS: Dict[str, ThresholdModel] = {
    "fixed": ThresholdModel(a=1.01, b=0.0, c=0.998, d=0.0, name="fixed"),
    "uniform": ThresholdModel(a=0.85, b=0.0, c=0.998, d=0.0, name="uniform"),
    "bimodal": ThresholdModel(a=1.30, b=0.0, c=0.998, d=0.0, name="bimodal"),
    "exponential": ThresholdModel(a=1.0, b=0.0, c=1.0, d=0.0, name="exponential"),
}


def variance_corrected_model(squared_cv: float, name: str = "corrected") -> ThresholdModel:
    """Build a model whose ``c`` applies the Allen-Cunneen-style variance
    correction ``(1 + CV^2) / 2`` to the M/M/k queue length.

    This is the principled default when no calibration data exists for a
    distribution family: deterministic service (CV^2=0) halves the
    expected queue, heavy-tailed service grows it.
    """
    if squared_cv < 0:
        raise ValueError(f"squared CV must be >= 0, got {squared_cv}")
    return ThresholdModel(a=1.0, b=0.0, c=(1.0 + squared_cv) / 2.0, d=0.0, name=name)


def first_violation_threshold(
    queue_lengths_at_arrival: Sequence[int],
    violated: Sequence[bool],
) -> Tuple[float, int]:
    """Extract ``T_lower`` from a simulation run.

    Returns ``(threshold, violator_count)`` where ``threshold`` is the
    smallest arrival queue length among SLO-violating requests -- the
    paper's per-load measurement feeding :func:`calibrate_threshold_model`.
    A run with no violations returns ``(inf, 0)``.
    """
    if len(queue_lengths_at_arrival) != len(violated):
        raise ValueError("inputs must have equal length")
    best = float("inf")
    count = 0
    for qlen, bad in zip(queue_lengths_at_arrival, violated):
        if bad:
            count += 1
            if qlen < best:
                best = float(qlen)
    return best, count
