"""The per-manager software runtime (Algorithm 1).

Each manager core runs this loop every ``Period`` nanoseconds:

1. refresh the local queue-length entry and broadcast it (UPDATE);
2. recompute the migration threshold ``T`` from the prediction model
   and the current load estimate;
3. run ``predict()`` -- threshold check + pattern classification -- to
   obtain the destination vector ``QD``;
4. for each destination, apply the line-8 guard
   (``q[j] - S < q[QD[i]] + S`` forbids migrations that would leave the
   migrated requests worse off) and trigger a MIGRATE of
   ``S = Bulk / Concurrency`` descriptors from the NetRX tail;
5. charge the manager core for the tick's interface accesses.

The runtime is deliberately mechanism-agnostic: it talks to the rest of
the system through the small :class:`RuntimeHooks` surface so tests can
drive it against a mock system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import AltocumulusConfig
from repro.core.interface import HwInterface
from repro.core.patterns import migrate_size, migration_plan
from repro.core.prediction import upper_bound_threshold
from repro.workload.request import Request


class LoadEstimator:
    """Online EWMA estimate of per-group offered load in Erlangs.

    Tracks the inter-arrival gap and mean service time with exponential
    smoothing; ``load_erlangs = mean_service / mean_gap``.  This is the
    "Local Load Status Monitor" feeding the prediction model when the
    operator has not supplied the load a priori.
    """

    __slots__ = (
        "alpha",
        "_last_arrival",
        "_mean_gap",
        "_mean_service",
        "arrivals",
        "completions",
    )

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0,1], got {alpha}")
        self.alpha = float(alpha)
        self._last_arrival: Optional[float] = None
        self._mean_gap: Optional[float] = None
        self._mean_service: Optional[float] = None
        self.arrivals = 0
        self.completions = 0

    def record_arrival(self, now: float) -> None:
        self.arrivals += 1
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._mean_gap is None:
                self._mean_gap = gap
            else:
                self._mean_gap += self.alpha * (gap - self._mean_gap)
        self._last_arrival = now

    def record_completion(self, service_ns: float) -> None:
        self.completions += 1
        if self._mean_service is None:
            self._mean_service = service_ns
        else:
            self._mean_service += self.alpha * (service_ns - self._mean_service)

    @property
    def mean_service_ns(self) -> Optional[float]:
        return self._mean_service

    def load_erlangs(self) -> Optional[float]:
        """Current load estimate, or None before enough samples exist."""
        if not self._mean_gap or self._mean_service is None:
            return None
        if self._mean_gap <= 0:
            return None
        return self._mean_service / self._mean_gap


@dataclass
class RuntimeHooks:
    """System services the runtime relies on.

    ``local_queue_len``
        Current NetRX occupancy (descriptors not yet dispatched).
    ``take_batch(size)``
        Remove up to ``size`` migration-eligible descriptors from the
        NetRX tail (stamping counterfactuals); may return fewer.
    ``restore_batch(batch)``
        Undo ``take_batch`` after hardware back-pressure.
    ``send_migrate(dst, batch) -> bool``
        Hand the batch to the messaging hardware; False on back-pressure.
    ``broadcast_update(qlen)``
        UPDATE broadcast via the messaging hardware.
    ``charge(ns)``
        Account manager-core time consumed by this tick.
    ``flag_predicted(count)``
        Mark the ``count`` newest queued requests as predicted SLO
        violators (queued beyond the threshold), whether or not they
        end up migrated -- the prediction-accuracy bookkeeping.
    """

    local_queue_len: Callable[[], int]
    take_batch: Callable[[int], List[Request]]
    restore_batch: Callable[[List[Request]], None]
    send_migrate: Callable[[int, List[Request]], bool]
    broadcast_update: Callable[[int], None]
    charge: Callable[[float], None]
    flag_predicted: Callable[[int], None] = lambda count: None


class ManagerRuntime:
    """One manager core's decision loop state."""

    def __init__(
        self,
        group_index: int,
        n_groups: int,
        config: AltocumulusConfig,
        hooks: RuntimeHooks,
        interface: HwInterface,
        estimator: Optional[LoadEstimator] = None,
    ) -> None:
        self.group_index = int(group_index)
        self.n_groups = int(n_groups)
        self.config = config
        self.hooks = hooks
        self.interface = interface
        self.estimator = estimator or LoadEstimator()
        #: Isolation domain: migration destinations outside it are
        #: filtered out (application isolation, Sec. XI future work).
        self.domain = frozenset(config.domain_of(group_index))
        #: This manager's (possibly stale) view of all NetRX lengths,
        #: refreshed by UPDATE messages.
        self.q_view: List[int] = [0] * n_groups
        self.ticks = 0
        self.migrations_triggered = 0
        self.descriptors_migrated = 0
        self.last_threshold: float = float("inf")
        #: Live worker count for this group.  Starts at the config's
        #: uniform split; the control plane's worker<->group
        #: reassignment updates it via :meth:`set_workers`.
        self.n_workers: int = config.workers_per_group
        #: ``T_upper`` depends on the worker count and the config;
        #: recomputed only when :meth:`set_workers` changes the count.
        self._t_upper: float = upper_bound_threshold(
            self.n_workers, config.slo_multiplier
        )
        #: Threshold cache: the load the model threshold was last
        #: computed at, and that threshold.  Recomputed only when the
        #: load estimate moves by more than ``config.threshold_epsilon``
        #: (0.0 by default: any change recomputes, so cached results are
        #: always bit-identical to recomputation).
        self._cached_load: Optional[float] = None
        self._cached_threshold: float = float("inf")
        #: The sorted isolation domain and this group's position in it
        #: never change; computing them per tick was pure overhead.
        self._domain_sorted: List[int] = sorted(self.domain)
        self._domain_self: int = self._domain_sorted.index(self.group_index)

    # ------------------------------------------------------------------
    # UPDATE receive path
    # ------------------------------------------------------------------
    def on_update(self, src_group: int, queue_len: int) -> None:
        if not 0 <= src_group < self.n_groups:
            raise ValueError(f"bad UPDATE source {src_group}")
        self.q_view[src_group] = queue_len

    # ------------------------------------------------------------------
    # Threshold (Eq. 2 / bounds)
    # ------------------------------------------------------------------
    def set_workers(self, n_workers: int) -> None:
        """Adopt a new live worker count (control-plane reassignment).

        Recomputes ``T_upper`` and invalidates the threshold cache so
        the next :meth:`current_threshold` reflects the new capacity.
        """
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self.n_workers = int(n_workers)
        self._t_upper = upper_bound_threshold(
            self.n_workers, self.config.slo_multiplier
        )
        self.invalidate_threshold_cache()

    def invalidate_threshold_cache(self) -> None:
        """Force a fresh model evaluation at the next threshold read
        (control-plane predictor recalibration)."""
        self._cached_load = None
        self._cached_threshold = float("inf")

    def current_threshold(self) -> float:
        cfg = self.config
        k = self.n_workers
        t_upper = self._t_upper
        if cfg.threshold_mode == "fixed":
            return min(cfg.fixed_threshold, t_upper)
        if cfg.threshold_mode == "upper_bound":
            return t_upper
        # "model": Eq. 2 on the current load estimate.
        if cfg.offered_load is not None:
            load = cfg.offered_load * k
        else:
            est = self.estimator.load_erlangs()
            if est is None:
                return t_upper  # not warmed up; be conservative
            load = est
        load = min(load, 0.995 * k)  # keep Erlang-C finite under overload
        # Threshold cache: skip the Erlang-C evaluation while the load
        # estimate stays within epsilon of the last computed point.  The
        # default epsilon of 0.0 reuses the cache only for *identical*
        # loads, which is exactly what recomputation would return.
        cached_load = self._cached_load
        if cached_load is not None and abs(load - cached_load) <= cfg.threshold_epsilon:
            return self._cached_threshold
        t_model = cfg.threshold_model.threshold(k, load)
        threshold = min(max(t_model, 1.0), t_upper)
        self._cached_load = load
        self._cached_threshold = threshold
        return threshold

    # ------------------------------------------------------------------
    # The periodic tick (Algorithm 1 body)
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Run one period's decision; returns MIGRATE messages sent."""
        self.ticks += 1
        cfg = self.config
        local_len = self.hooks.local_queue_len()
        self.q_view[self.group_index] = local_len
        self.hooks.broadcast_update(local_len)

        threshold = self.current_threshold()
        self.last_threshold = threshold
        excess = local_len - threshold
        if excess > 0:
            # Everything queued beyond T is a predicted violator
            # (Sec. IV), independent of whether migration follows.
            self.hooks.flag_predicted(int(excess))
        # Classify within this manager's isolation domain only: queues
        # belonging to other applications are invisible to the decision.
        domain = self._domain_sorted
        sub_q = [self.q_view[g] for g in domain]
        sub_self = self._domain_self
        plan = migration_plan(sub_q, sub_self, cfg.bulk, cfg.concurrency,
                              threshold)
        size = migrate_size(cfg.bulk, cfg.concurrency)
        sent = 0
        destinations = [domain[d] for d in plan.destinations]
        for dst in destinations:
            local = self.q_view[self.group_index]
            # Line 8: never migrate into a queue that would end up longer
            # than the source; the move would hurt the migrated requests.
            if local - size < self.q_view[dst] + size:
                continue
            batch = self.hooks.take_batch(size)
            if not batch:
                break
            if not self.hooks.send_migrate(dst, batch):
                self.hooks.restore_batch(batch)
                break
            sent += 1
            self.descriptors_migrated += len(batch)
            self.q_view[self.group_index] -= len(batch)
            self.q_view[dst] += len(batch)
        if sent:
            self.migrations_triggered += 1
        self.hooks.charge(
            self.interface.tick_cost_ns(sent, queue_reads=self.n_groups)
        )
        return sent
