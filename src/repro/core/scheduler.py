"""The complete Altocumulus system: two-tier scheduling plus proactive
hardware-assisted migration (Secs. III, V, VI).

Topology
--------
``n_groups`` groups of ``group_size`` cores each.  The first core of a
group is its *manager* (it runs the runtime and, in the AC_rss variant,
software request dispatch); the rest are *workers*.  Managers never
execute RPC handlers -- the 6.25% throughput sacrifice quantified in
Sec. VIII-A.

Data path
---------
NIC --(steering)--> manager NetRX (the MR file) --(local JBSQ(2))-->
worker.  Variants:

* **AC_int** -- hardware-terminated NIC (~30 ns), hardware JBSQ push
  into the group (~20 ns, not serialized on the manager core).
* **AC_rss** -- commodity PCIe NIC (200-800 ns), manager dispatches in
  software at >= 70 cycles per message (theoretical 28 MRPS per manager,
  Sec. VIII-B), serialized with the runtime's own tick cost -- which is
  how the ISA-vs-MSR interface difference becomes visible end to end.

Control path
------------
Each manager's :class:`~repro.core.runtime.ManagerRuntime` ticks every
``Period`` ns and triggers MIGRATEs through the
:class:`~repro.hw.messaging.ManagerTileHw` protocol over the NoC.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Set, Tuple

from repro.core.config import AltocumulusConfig
from repro.core.interface import HwInterface
from repro.core.runtime import LoadEstimator, ManagerRuntime, RuntimeHooks
from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.messaging import ManagerTileHw
from repro.hw.nic import HwTerminatedDelivery, PcieDelivery, RssSteering
from repro.hw.noc import Noc
from repro.hw.topology import MeshTopology
from repro.schedulers.base import RpcSystem
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


class AltocumulusSystem(RpcSystem):
    """Two-tier decentralized scheduling with proactive migrations.

    Gang admission: a request with ``core_demand == c > 1`` waits at the
    head of its group's NetRX until ``c`` of the group's workers are
    fully idle, then the primary plus ``c - 1`` gang shadows dispatch to
    those workers together (see :mod:`repro.workload.jobs`).  A demand
    wider than the group is dropped visibly at dispatch time -- the
    MIGRATE machinery may still move a queued gang head to another group
    first, since descriptors migrate before they dispatch.
    """

    name = "altocumulus"
    supports_gang = True

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: AltocumulusConfig,
        constants: HwConstants = DEFAULT_CONSTANTS,
        execution_penalty: Optional[Callable[[Request], float]] = None,
    ) -> None:
        delivery = (
            PcieDelivery(constants)
            if config.variant == "rss"
            else HwTerminatedDelivery(constants)
        )
        super().__init__(sim, streams, config.n_cores, delivery, constants)
        self.config = config
        self.name = f"ac_{config.variant}_{config.interface}"
        self.execution_penalty = execution_penalty

        g = config.n_groups
        self.topology = MeshTopology(config.n_cores)
        self.noc = Noc(
            sim,
            self.topology,
            per_hop_ns=constants.noc_hop_ns,
            link_contention=config.noc_link_contention,
            registry=self.metrics,
        )
        self.steering = RssSteering(
            g, policy=config.steering_policy, rng=streams.get("rss")
        )
        self.interface = HwInterface.of(config.interface, constants)

        # Per-group structures -------------------------------------------------
        self.managers: List[ManagerTileHw] = []
        self.runtimes: List[ManagerRuntime] = []
        self.estimators: List[LoadEstimator] = [LoadEstimator() for _ in range(g)]
        #: Worker occupancy (in service + in flight + locally waiting).
        self.occupancy: List[List[int]] = []
        self.local_wait: List[List[Deque[Request]]] = []
        #: Software dispatch: when each manager core next frees up.
        self._mgr_free_at: List[float] = [0.0] * g
        #: Interface cost of each manager's most recent tick.
        self._tick_cost: List[float] = [0.0] * g
        self._tick_running = False
        #: Requests ever selected for migration (prediction-accuracy metric).
        self.predicted_ids: Set[int] = set()
        # Scheduler-level instruments (the former ad-hoc ``extra`` keys).
        self._m_desc_received = self.metrics.counter(
            "sched.descriptors_received"
        )
        self._m_sw_migrate = self.metrics.counter(
            "sched.sw_migrate_descriptors"
        )
        self.metrics.gauge(
            "sched.predicted_unique", fn=lambda: len(self.predicted_ids)
        )

        for group in range(g):
            tile = group * config.group_size  # the manager's mesh tile
            hw = ManagerTileHw(
                sim,
                self.noc,
                tile_id=tile,
                manager_index=group,
                constants=constants,
                mr_capacity=config.mr_capacity,
                on_migrate_in=self._make_on_migrate_in(group),
                on_update=self._make_on_update(group),
                migrator_ns_per_entry=(
                    constants.coherence_msg_ns if config.messaging == "sw" else 0.5
                ),
                registry=self.metrics,
            )
            self.managers.append(hw)
            self.occupancy.append([0] * config.workers_per_group)
            self.local_wait.append(
                [deque() for _ in range(config.workers_per_group)]
            )
        for hw in self.managers:
            hw.connect(self.managers)
            hw.on_dead_nack = self._on_dead_nack
        #: Descriptors lost to a NACK returning after a manager crash
        #: (plain attribute: fault instruments must not widen the pinned
        #: metrics schema of fault-free builds).
        self.dead_nack_descriptors = 0
        #: Gang jobs whose core demand exceeded their group's worker
        #: count at dispatch time (plain attribute, same schema rule).
        self.gang_infeasible_drops = 0

        #: Running per-group occupancy totals, kept in lock-step with
        #: ``occupancy`` (mutated only at dispatch/complete): the arrival
        #: path needs the group total once per request, and summing the
        #: worker list there was pure per-request overhead.
        self._occ_total: List[int] = [0] * g
        #: Worker Core objects per (group, worker), and the inverse maps
        #: from core_id back to (group, worker) -- precomputed so the
        #: per-dispatch / per-completion paths skip the index arithmetic.
        self._worker_cores: List[List[Core]] = [
            [
                self.cores[group * config.group_size + 1 + worker]
                for worker in range(config.workers_per_group)
            ]
            for group in range(g)
        ]
        self._core_group: List[int] = [
            core_id // config.group_size for core_id in range(len(self.cores))
        ]
        self._core_worker: List[int] = [
            core_id % config.group_size - 1 for core_id in range(len(self.cores))
        ]
        #: Hardware JBSQ push latency per (group, worker): a pure
        #: function of mesh geometry, precomputed once instead of walking
        #: the topology on every dispatch.
        self._hw_dispatch_ns: List[List[float]] = [
            [
                20.0
                + self.topology.hops(
                    group * config.group_size,
                    group * config.group_size + 1 + worker,
                )
                * constants.noc_hop_ns
                for worker in range(config.workers_per_group)
            ]
            for group in range(g)
        ]

        for group in range(g):
            runtime = ManagerRuntime(
                group_index=group,
                n_groups=g,
                config=config,
                hooks=self._make_hooks(group),
                interface=self.interface,
                estimator=self.estimators[group],
            )
            self.runtimes.append(runtime)
        #: One reusable tick event per group (the schedule_timer path).
        self._tick_events: List[Optional[Event]] = [None] * g
        if config.runtime_enabled and g > 1:
            self._tick_running = True
            for group in range(g):
                self._tick_events[group] = sim.schedule_timer(
                    config.period_ns, self._tick_loop, group
                )

    # ------------------------------------------------------------------
    # Group/core index arithmetic
    # ------------------------------------------------------------------
    def _worker_core(self, group: int, worker: int) -> Core:
        """Worker ``worker`` of ``group`` (managers are index 0 in-group).

        Reads the live assignment table rather than the construction
        formula, so it stays correct after control-plane reassignment.
        """
        return self._worker_cores[group][worker]

    def _group_of_core(self, core_id: int) -> int:
        return self._core_group[core_id]

    def _worker_index(self, core_id: int) -> int:
        return self._core_worker[core_id]

    # ------------------------------------------------------------------
    # NIC arrival path
    # ------------------------------------------------------------------
    def _deliver(self, request: Request) -> None:
        group = self.steering.pick_queue(request)
        request.group_id = group
        request.enqueued = self.sim.now
        mrs = self.managers[group].mrs
        request.queue_len_at_arrival = len(mrs.entries) + self._occ_total[group]
        self.estimators[group].record_arrival(self.sim.now)
        if not mrs.enqueue(request):
            self._drop(request)  # bounded MR file overflowed
            return
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "netrx_queue", self.sim.now)
        self._pump_group(group)

    # ------------------------------------------------------------------
    # Local c-FCFS dispatch (JBSQ(worker_bound) within the group)
    # ------------------------------------------------------------------
    def _pump_group(self, group: int) -> None:
        cfg = self.config
        mrs = self.managers[group].mrs
        entries = mrs.entries
        occ = self.occupancy[group]
        trace = self.trace
        tracing = trace.enabled
        while entries:
            head = entries[0]
            if head.core_demand > 1:
                if not self._admit_gang(group, head):
                    return
                continue
            worker = self._least_occupied(occ, cfg.worker_bound)
            if worker is None:
                return
            request = mrs.dequeue_head()
            occ[worker] += 1
            self._occ_total[group] += 1
            delay = self._dispatch_delay(group, worker)
            self._charge_scheduling(delay)
            if tracing and trace.sampled(request.req_id):
                trace.mark(request.req_id, "dispatch", self.sim.now)
            self.sim.schedule(delay, self._arrive_at_worker, group, worker, request)

    def _admit_gang(self, group: int, request: Request) -> bool:
        """Dispatch the group's head gang iff ``core_demand`` workers
        are fully idle; returns False when the head must keep waiting
        (head-of-line gang blocking).  Demands wider than the group are
        dropped visibly -- no schedule of this group can admit them.
        """
        from repro.workload.jobs import make_gang_shadow

        mrs = self.managers[group].mrs
        occ = self.occupancy[group]
        demand = request.core_demand
        if demand > len(occ):
            mrs.dequeue_head()
            self.gang_infeasible_drops += 1
            self._drop(request)
            return True  # head consumed; keep pumping
        idle = [w for w, v in enumerate(occ) if v == 0]
        if len(idle) < demand:
            return False
        mrs.dequeue_head()
        members = [request] + [
            make_gang_shadow(request, slot) for slot in range(1, demand)
        ]
        trace = self.trace
        for worker, member in zip(idle, members):
            occ[worker] += 1
            self._occ_total[group] += 1
            delay = self._dispatch_delay(group, worker)
            self._charge_scheduling(delay)
            if trace.enabled and trace.sampled(member.req_id):
                trace.mark(member.req_id, "dispatch", self.sim.now)
            self.sim.schedule(
                delay, self._arrive_at_worker, group, worker, member
            )
        return True

    @staticmethod
    def _least_occupied(occ: List[int], bound: int) -> Optional[int]:
        best = None
        best_v = bound
        for idx, v in enumerate(occ):
            if v < best_v:
                if v == 0:
                    # Occupancy can't go below zero, so the first idle
                    # worker is already the scan's final answer.
                    return idx
                best = idx
                best_v = v
        return best

    def _dispatch_delay(self, group: int, worker: int) -> float:
        """Latency until the dispatched request reaches its worker."""
        if self.config.effective_dispatch == "hw":
            # Hardware JBSQ push: LLC-speed hand-off plus the on-chip
            # distance from the manager tile to the worker tile -- the
            # "variance in remote cache access latency" that penalizes
            # very large groups (Sec. VIII-B).  Precomputed per
            # (group, worker) at construction.
            return self._hw_dispatch_ns[group][worker]
        # Software dispatch: the manager core moves the message through
        # the coherence protocol, one op at a time.
        cost = self.constants.coherence_msg_ns
        start = max(self.sim.now, self._mgr_free_at[group])
        self._mgr_free_at[group] = start + cost
        return (start + cost) - self.sim.now

    def _arrive_at_worker(self, group: int, worker: int, request: Request) -> None:
        core = self._worker_cores[group][worker]
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "worker_queue", self.sim.now)
        if core.busy:
            self.local_wait[group][worker].append(request)
        else:
            self._start(core, request)

    def _start(self, core: Core, request: Request) -> None:
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "service", self.sim.now)
        startup = 0.0
        if self.execution_penalty is not None:
            startup = self.execution_penalty(request)
        core.assign(request, startup_ns=startup)

    def _after_complete(self, core: Core, request: Request) -> None:
        core_id = core.core_id
        group = self._core_group[core_id]
        worker = self._core_worker[core_id]
        self.occupancy[group][worker] -= 1
        self._occ_total[group] -= 1
        self.estimators[group].record_completion(request.service_time)
        waiting = self.local_wait[group][worker]
        if waiting:
            self._start(core, waiting.popleft())
        self._pump_group(group)

    # ------------------------------------------------------------------
    # Runtime hooks (Algorithm 1's interface to the system)
    # ------------------------------------------------------------------
    def _make_hooks(self, group: int) -> RuntimeHooks:
        return RuntimeHooks(
            local_queue_len=lambda entries=self.managers[group].mrs.entries: len(
                entries
            ),
            take_batch=lambda size: self._take_batch(group, size),
            restore_batch=lambda batch: self._restore_batch(group, batch),
            send_migrate=lambda dst, batch: self._send_migrate(group, dst, batch),
            broadcast_update=lambda qlen: self.managers[group].broadcast_update(
                qlen
            ),
            charge=lambda ns: self._charge_manager(group, ns),
            flag_predicted=lambda count: self._flag_predicted(group, count),
        )

    def _flag_predicted(self, group: int, count: int) -> None:
        trace = self.trace
        tracing = trace.enabled
        for request in self.managers[group].mrs.peek_tail(count):
            self.predicted_ids.add(request.req_id)
            if tracing and trace.sampled(request.req_id):
                trace.mark(request.req_id, "predicted", self.sim.now)

    def _take_batch(self, group: int, size: int) -> List[Request]:
        """Pop migration-eligible descriptors from the NetRX tail and
        stamp their no-migration counterfactual ETA."""
        cfg = self.config
        mrs = self.managers[group].mrs
        if cfg.allow_remigration:
            eligible = lambda r: True  # noqa: E731 - tiny predicate
        else:
            eligible = lambda r: r.migrations == 0  # noqa: E731
        batch = mrs.dequeue_tail_where(size, eligible)
        if not batch:
            return batch
        workers = max(1, len(self.occupancy[group]))
        mean_service = self.estimators[group].mean_service_ns or 0.0
        ahead = len(mrs) + self._occ_total[group]
        trace = self.trace
        tracing = trace.enabled
        for offset, request in enumerate(batch):
            if request.no_migration_eta is None:
                est_wait = (ahead + offset) / workers * mean_service
                request.no_migration_eta = (
                    self.sim.now + est_wait + request.service_time
                )
            self.predicted_ids.add(request.req_id)
            if tracing and trace.sampled(request.req_id):
                trace.mark(request.req_id, "migrate", self.sim.now)
        return batch

    def _send_migrate(self, group: int, dst: int, batch: List[Request]) -> bool:
        """Route a MIGRATE through the configured messaging mechanism.

        Software messaging (case-study ablation) charges the manager one
        coherence message per descriptor on top of the transfer -- the
        cost the register-level hardware path exists to avoid.
        """
        if self.config.messaging == "sw":
            self._charge_manager(
                group, len(batch) * self.constants.coherence_msg_ns
            )
            self._m_sw_migrate.value += len(batch)
        return self.managers[group].send_migrate(dst, batch)

    def _restore_batch(self, group: int, batch: List[Request]) -> None:
        mrs = self.managers[group].mrs
        for request in batch:
            mrs.enqueue_reserved(request)  # slots still logically held

    def _charge_manager(self, group: int, ns: float) -> None:
        """Account manager-core time.

        It always stretches the runtime's own tick cadence (a tick
        cannot start before the previous one's work retired -- the
        MSR-interface effect of Fig. 14), and when the manager is also
        the software dispatcher the same busy time delays dispatches.
        """
        self._tick_cost[group] = max(self._tick_cost[group], ns)
        if self.config.effective_dispatch == "sw":
            self._mgr_free_at[group] = (
                max(self.sim.now, self._mgr_free_at[group]) + ns
            )

    # ------------------------------------------------------------------
    # Messaging-hardware callbacks
    # ------------------------------------------------------------------
    def _make_on_migrate_in(self, group: int):
        def on_migrate_in(requests: List[Request], src: int) -> None:
            self._m_desc_received.value += len(requests)
            trace = self.trace
            tracing = trace.enabled
            for request in requests:
                request.group_id = group  # now owned by this manager
                if tracing and trace.sampled(request.req_id):
                    trace.mark(request.req_id, "migrated_netrx", self.sim.now)
            self._pump_group(group)

        return on_migrate_in

    def _make_on_update(self, group: int):
        def on_update(src: int, qlen: int) -> None:
            self.runtimes[group].on_update(src, qlen)

        return on_update

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_manager(self, group: int) -> Tuple[int, int]:
        """Crash-restart one manager (fault injection).

        The manager's migration protocol state is forgotten -- in-flight
        MIGRATE batches it sent may be lost if the destination NACKs
        them (:meth:`_on_dead_nack` drops those) -- and every descriptor
        queued in its MR file is orphaned.  Orphans are re-dispatched
        round-robin into peer groups' MR files (RackSched-style
        failover of queue state); peers with no room, or a single-group
        system with no peers, drop them visibly so the client can retry.

        Returns ``(in_flight_forgotten, orphans_redispatched)``.
        """
        cfg = self.config
        if not 0 <= group < cfg.n_groups:
            raise ValueError(
                f"manager group {group} out of range [0, {cfg.n_groups})"
            )
        hw = self.managers[group]
        forgotten = hw.in_flight_descriptors
        orphans = hw.fail()
        redispatched = 0
        if cfg.n_groups == 1:
            for request in orphans:
                self._drop(request)
            return forgotten, 0
        peers = [(group + 1 + i) % cfg.n_groups for i in range(cfg.n_groups - 1)]
        cursor = 0
        touched: Set[int] = set()
        for request in orphans:
            placed = False
            for attempt in range(len(peers)):
                dst = peers[(cursor + attempt) % len(peers)]
                if self.managers[dst].mrs.enqueue(request):
                    request.group_id = dst
                    touched.add(dst)
                    redispatched += 1
                    cursor = (cursor + attempt + 1) % len(peers)
                    placed = True
                    break
            if not placed:
                self._drop(request)
        for dst in sorted(touched):
            self._pump_group(dst)
        return forgotten, redispatched

    def _on_dead_nack(self, requests: List[Request]) -> None:
        """Descriptors bounced back to a crashed manager are gone."""
        self.dead_nack_descriptors += len(requests)
        for request in requests:
            self._drop(request)

    # ------------------------------------------------------------------
    # Control-plane actuation
    # ------------------------------------------------------------------
    def reassign_worker(self, src_group: int, dst_group: int) -> bool:
        """Move one idle worker core from ``src_group`` to ``dst_group``.

        The control plane's capacity-rebalance actuator.  Only a worker
        with no running request, an empty local queue, and zero JBSQ
        occupancy may move (moving a busy core would strand its in-flight
        work), and a group never gives up its last worker.  Returns True
        when a core actually moved; both runtimes adopt their new worker
        counts so thresholds track live capacity.
        """
        cfg = self.config
        for group in (src_group, dst_group):
            if not 0 <= group < cfg.n_groups:
                raise ValueError(
                    f"manager group {group} out of range [0, {cfg.n_groups})"
                )
        if src_group == dst_group:
            raise ValueError("source and destination group must differ")
        src_occ = self.occupancy[src_group]
        if len(src_occ) <= 1:
            return False
        worker = len(src_occ) - 1
        core = self._worker_cores[src_group][worker]
        if src_occ[worker] != 0 or self.local_wait[src_group][worker]:
            return False
        if core.busy:
            return False
        src_occ.pop()
        self.local_wait[src_group].pop()
        self._worker_cores[src_group].pop()
        self._hw_dispatch_ns[src_group].pop()
        dst_occ = self.occupancy[dst_group]
        new_worker = len(dst_occ)
        dst_occ.append(0)
        self.local_wait[dst_group].append(deque())
        self._worker_cores[dst_group].append(core)
        self._hw_dispatch_ns[dst_group].append(
            20.0
            + self.topology.hops(dst_group * cfg.group_size, core.core_id)
            * self.constants.noc_hop_ns
        )
        self._core_group[core.core_id] = dst_group
        self._core_worker[core.core_id] = new_worker
        self.runtimes[src_group].set_workers(len(src_occ))
        self.runtimes[dst_group].set_workers(len(dst_occ))
        self._pump_group(dst_group)
        return True

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------
    def netrx_lengths(self) -> List[int]:
        """Current NetRX occupancy per group (the Fig. 9 snapshot)."""
        return [len(hw.mrs) for hw in self.managers]

    def group_outstanding(self) -> List[int]:
        """Per-group outstanding work: NetRX backlog plus dispatched
        occupancy (the control plane's rebalance signal)."""
        return [
            len(hw.mrs) + self._occ_total[group]
            for group, hw in enumerate(self.managers)
        ]

    def total_migrated(self) -> int:
        """Requests that completed at least one migration."""
        return sum(hw.stats.descriptors_accepted for hw in self.managers)

    def _tick_loop(self, group: int) -> None:
        """Self-rescheduling runtime tick.

        The next tick starts one Period later, or once the previous
        tick's interface work retired if that took longer -- a slow
        interface (MSR syscalls) therefore stretches the effective
        migration cadence rather than queueing ticks.
        """
        if not self._tick_running:
            return
        self._tick_cost[group] = 0.0
        self.runtimes[group].tick()
        delay = max(self.config.period_ns, self._tick_cost[group])
        self._tick_events[group] = self.sim.schedule_timer(
            delay, self._tick_loop, group, event=self._tick_events[group]
        )

    def shutdown(self) -> None:
        self._tick_running = False
