"""The datacenter tier: a spine-leaf fabric of racks on one simulator.

Recursion of the cluster tier's pattern one level up: a
:class:`Datacenter` steers requests across R :class:`RackCluster` leaves
through a :class:`SpineSwitch`, and duck-types
:class:`~repro.schedulers.base.RpcSystem` so every existing tool --
:func:`repro.api.quick_run` (system name ``"datacenter"``), the sweep
runner, ``--trace``, ``--faults`` -- drives a whole fabric unchanged.
Pair with :mod:`repro.workload.tenants` for production-shaped
multi-tenant traffic.
"""

from repro.datacenter.metrics import (
    datacenter_summary,
    per_rack_completed,
    register_datacenter_instruments,
)
from repro.datacenter.spine import (
    DEFAULT_SPINE_BANDWIDTH_GBPS,
    DEFAULT_SPINE_FORWARD_LATENCY_NS,
    DEFAULT_SPINE_PORT_QUEUE_DEPTH,
    SpineSwitch,
)
from repro.datacenter.topology import (
    Datacenter,
    DatacenterConfig,
    build_topology,
)

__all__ = [
    "Datacenter",
    "DatacenterConfig",
    "build_topology",
    "SpineSwitch",
    "DEFAULT_SPINE_BANDWIDTH_GBPS",
    "DEFAULT_SPINE_FORWARD_LATENCY_NS",
    "DEFAULT_SPINE_PORT_QUEUE_DEPTH",
    "datacenter_summary",
    "per_rack_completed",
    "register_datacenter_instruments",
]
