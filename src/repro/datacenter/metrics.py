"""Datacenter-wide measurement: cross-rack imbalance, steering, tenants.

The fabric tier's evaluation questions recurse the rack tier's one level
up -- how unevenly did load land across *racks*, what did inter-rack
steering decide, which tenants kept their SLOs -- so this module mirrors
:mod:`repro.cluster.metrics` at datacenter scope:

* :func:`datacenter_summary` -- the flat dict the datacenter writes
  through ``stats.scoped("datacenter")`` at shutdown.
* :func:`register_datacenter_instruments` -- the same quantities as live
  ``datacenter.*`` instruments, snapshot with every registry export.
* :func:`register_tenant_instruments` -- per-tenant SLO accounting under
  ``tenant.<name>.*``, fed by the datacenter's completion path.

Per-rack detail needs no code here: the datacenter registry attaches
each rack's registry as a ``rack<i>`` child, so one snapshot already
contains ``rack<i>.cluster.*`` and ``rack<i>.srv<j>.*`` for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Union

from repro.cluster.metrics import imbalance_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datacenter.topology import Datacenter
    from repro.telemetry import MetricRegistry


def per_rack_completed(dc: "Datacenter") -> List[int]:
    """Completed-request count per rack."""
    return [rack.stats.completed for rack in dc.racks]


def datacenter_summary(dc: "Datacenter") -> Dict[str, Union[int, float]]:
    """Flat metrics the datacenter writes via ``stats.scoped("datacenter")``.

    Keys mirror the rack tier's ``cluster.*`` vocabulary one level up:

    * ``imbalance_index`` -- max/mean of per-rack completions.
    * ``steer_imbalance`` -- max/mean of inter-rack steering decisions.
    * ``steer_rack<i>`` -- requests steered to each rack.
    * ``spine_dropped`` / ``spine_queue_wait_ns`` -- spine accounting.
    * ``steer_refreshes`` / ``steer_samples`` -- telemetry the inter-rack
      policy consumed, when the policy tracks it.
    """
    summary: Dict[str, Union[int, float]] = {
        "imbalance_index": imbalance_index(per_rack_completed(dc)),
        "steer_imbalance": imbalance_index(dc.policy.decisions),
        "spine_dropped": int(dc.spine.dropped),
        "spine_queue_wait_ns": dc.spine.queue_wait_ns,
    }
    for i, count in enumerate(dc.policy.decisions):
        summary[f"steer_rack{i}"] = int(count)
    refreshes = getattr(dc.policy, "refreshes", None)
    if refreshes is not None:
        summary["steer_refreshes"] = int(refreshes)
    samples = getattr(dc.policy, "samples_taken", None)
    if samples is not None:
        summary["steer_samples"] = int(samples)
    return summary


def register_datacenter_instruments(
    dc: "Datacenter", registry: "MetricRegistry"
) -> None:
    """Bind live ``datacenter.*`` instruments into ``registry``."""
    registry.gauge(
        "datacenter.imbalance_index",
        fn=lambda: imbalance_index(per_rack_completed(dc)),
    )
    registry.gauge(
        "datacenter.steer_imbalance",
        fn=lambda: imbalance_index(dc.policy.decisions),
    )
    for i in range(len(dc.racks)):
        registry.counter(
            f"datacenter.steer_rack{i}",
            fn=lambda i=i: int(dc.policy.decisions[i]),
        )
    refreshes = getattr(dc.policy, "refreshes", None)
    if refreshes is not None:
        registry.counter(
            "datacenter.steer_refreshes",
            fn=lambda: int(dc.policy.refreshes),
        )
    samples = getattr(dc.policy, "samples_taken", None)
    if samples is not None:
        registry.counter(
            "datacenter.steer_samples",
            fn=lambda: int(dc.policy.samples_taken),
        )


def register_tenant_instruments(
    dc: "Datacenter", registry: "MetricRegistry"
) -> None:
    """Bind per-tenant SLO instruments (``tenant.<name>.*``).

    Reads the datacenter's live per-tenant completion/SLO counters
    (updated on its completion path), so snapshots mid-run show
    attainment so far, not just the final number.
    """
    for t, tenant in enumerate(dc.tenant_mix.tenants):
        prefix = f"tenant.{tenant.name}"
        registry.counter(
            f"{prefix}.completed", fn=lambda t=t: dc.tenant_completed[t]
        )
        registry.counter(
            f"{prefix}.slo_met", fn=lambda t=t: dc.tenant_slo_met[t]
        )
        registry.gauge(
            f"{prefix}.attainment",
            fn=lambda t=t: (
                dc.tenant_slo_met[t] / dc.tenant_completed[t]
                if dc.tenant_completed[t]
                else 1.0
            ),
        )
