"""Sharded datacenter: per-rack subtrees behind a window coordinator.

The serial :class:`~repro.datacenter.topology.Datacenter` runs the whole
fabric on one event heap.  This module cuts the graph at the spine --
the one place every cross-rack byte passes -- and rebuilds the same
topology as:

* a **coordinator** (:class:`ShardedDatacenter`, in the main process):
  the load generator, inter-rack steering policy, spine switch, fault
  injector and retry client all run here, exactly as serial;
* N **shards** (:class:`repro.sim.sharded.InProcessShard` /
  ``ProcessShard``): each hosts a contiguous group of rack subtrees
  (ToR + servers + intra-rack policy) on its own simulator, built from
  the same per-rack RNG seeds the serial run spawns;
* **mirror racks** (:class:`MirrorRack`) standing in for the real racks
  on the coordinator, so the unmodified ``Datacenter`` wiring (policy
  probes, per-rack stats instruments, completion hook chains, fault
  guards) binds to coordinator-side state.

Why the spine cut gives lookahead: the spine's dispatch pipeline adds a
fixed ``forward_latency_ns`` *after* serialization finishes, so a
message leaving the spine serializer at time ``t`` reaches a rack at
exactly ``t + H`` (``H`` = the spine's
:meth:`~repro.cluster.switch.SwitchCore.min_transit_ns` at size 0).
With windows aligned to multiples of ``H``, everything a window
generates is deliverable only in later windows -- the conservative-PDES
guarantee :class:`~repro.sim.sharded.WindowDriver` runs on.

Bit-identity argument, per window:

* shard subtrees receive exactly the serial deliveries at the serial
  timestamps and consume the serial per-rack RNG streams, so their
  event evolution is the serial one verbatim;
* the coordinator replays shard terminal records interleaved with its
  own events in timestamp order, so global side effects (tenant
  accounting, retry clients, ``expect`` stops) land on the serial clock;
* fault admission (health gate + NIC drop coin) is mirrored at
  message-ship time from a static timeline of the fault plan, drawing
  the injector's own ``"faults"`` stream in spine-serialization order --
  which equals the serial delivery-guard order, because delivery time
  is serialization-done time plus the constant ``H``.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import RackConfig, build_rack
from repro.datacenter.spine import SpineSwitch
from repro.datacenter.topology import Datacenter, DatacenterConfig
from repro.schedulers.base import SystemStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.sharded import (
    InProcessShard,
    ProcessShard,
    ShardHandle,
    WindowDriver,
)
from repro.telemetry import MetricRegistry
from repro.workload.request import Request

#: Terminal-record kinds (shard -> coordinator).
_COMPLETED = "c"
_DROPPED = "d"
#: Admission-bump record kinds (coordinator-internal, applied at the
#: mirrored delivery time so truncated runs count exactly like serial).
_BLACKHOLED = "b"
_NIC_DROPPED = "n"

#: Fault kinds the ship-time admission mirror must track: they are the
#: only kinds that change ``health.usable`` or the NIC drop probability
#: for a datacenter-tier target.  Everything else either acts on
#: coordinator-side live state (spine knobs, steering health penalties)
#: or is structurally inert at this tier (ToR/core/manager kinds).
_TIMELINE_KINDS = frozenset((
    "server_crash", "server_recover",
    "spine_partition", "spine_heal",
    "nic_drop", "nic_drop_stop",
))


# ----------------------------------------------------------------------
# Request packing (process shards only; in-process shards share objects)
# ----------------------------------------------------------------------
def _pack_request(request: Request) -> tuple:
    """Ship-side fields: everything set before a request crosses the
    spine.  Post-delivery fields are still at their defaults here."""
    return (
        request.req_id, request.arrival, request.service_time,
        request.size_bytes, request.connection, request.kind,
        request.key, request.value, request.logical_id, request.attempt,
    )


def _unpack_request(fields: tuple) -> Request:
    (req_id, arrival, service_time, size_bytes, connection, kind,
     key, value, logical_id, attempt) = fields
    request = Request(
        req_id=req_id, arrival=arrival, service_time=service_time,
        size_bytes=size_bytes, connection=connection, kind=kind,
        key=key, value=value,
    )
    request.logical_id = logical_id
    request.attempt = attempt
    return request


def _pack_sync(request: Request) -> tuple:
    """Outcome fields a shard stamps onto its copy; applied back onto
    the coordinator's original so fingerprints read the shard truth."""
    return (
        request.enqueued, request.started, request.finished,
        request.core_id, request.group_id, request.queue_len_at_arrival,
        request.migrations, request.steals, request.dropped,
        request.no_migration_eta, request.extra_latency,
        request.remaining, request.app_result,
    )


def _apply_sync(request: Request, sync: tuple) -> None:
    (request.enqueued, request.started, request.finished,
     request.core_id, request.group_id, request.queue_len_at_arrival,
     request.migrations, request.steals, request.dropped,
     request.no_migration_eta, request.extra_latency,
     request.remaining, request.app_result) = sync


# ----------------------------------------------------------------------
# Coordinator-side stand-ins
# ----------------------------------------------------------------------
class MirrorRack:
    """Coordinator-side stand-in for one shard-hosted rack.

    Presents exactly the surface the unmodified ``Datacenter`` wiring
    touches -- ``offer`` (never legitimately called: the sharded spine
    exports instead of delivering, so it raises loudly), hook lists the
    fault/retry layers append to, a private ``stats`` whose counters the
    per-rack instruments read, and an empty child registry.  Terminal
    state is written only by the coordinator's replay, which makes the
    mirror's counters serial-exact by construction even when the shard
    itself overran a truncated run.
    """

    def __init__(self) -> None:
        self.metrics = MetricRegistry()
        self.stats = SystemStats(self.metrics)
        self.completion_hooks: List[Any] = []
        self.drop_hooks: List[Any] = []
        self.finished: List[Request] = []

    def offer(self, request: Request) -> None:
        raise RuntimeError(
            "MirrorRack.offer called: a sharded spine must export "
            "messages to its shard, never deliver them locally"
        )

    # Replay application: the mirrored tail of RackCluster's
    # _member_completed / _member_dropped / _switch_dropped chains.
    def apply_completion(self, request: Request) -> None:
        self.stats.completed += 1
        self.finished.append(request)
        for hook in self.completion_hooks:
            hook(request)

    def apply_drop(self, request: Request) -> None:
        self.stats.dropped += 1
        for hook in self.drop_hooks:
            hook(request)

    @property
    def finished_requests(self) -> List[Request]:
        return self.finished

    def shutdown(self) -> None:
        """The real rack shuts down shard-side (at harvest)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MirrorRack done={self.stats.completed}>"


class _FaultTimeline:
    """Static replay of a fault plan's admission-relevant state.

    The live injector fires its events on the coordinator heap -- but
    admission is mirrored at window *end*, before those events' times
    have been replayed, so the mirror reads this timeline instead: the
    plan's expanded events (the exact list, in the exact (time,
    declaration) order the injector schedules) filtered to the kinds
    that move ``down``/``drop_p`` at this tier.  Events at exactly the
    delivery time apply first, matching the serial heap order (fault
    events are scheduled at construction, so their sequence numbers
    precede any delivery's).
    """

    def __init__(self, plan, n_racks: int) -> None:
        self._events = [
            event for event in plan.expanded_events()
            if event.kind in _TIMELINE_KINDS and 0 <= event.target < n_racks
        ]
        self._next = 0
        self.down = [False] * n_racks
        self.drop_p = [0.0] * n_racks

    def advance(self, time_ns: float) -> None:
        events = self._events
        i = self._next
        down = self.down
        drop_p = self.drop_p
        while i < len(events) and events[i].time_ns <= time_ns:
            event = events[i]
            i += 1
            kind = event.kind
            if kind == "server_crash" or kind == "spine_partition":
                down[event.target] = True
            elif kind == "server_recover" or kind == "spine_heal":
                down[event.target] = False
            elif kind == "nic_drop":
                drop_p[event.target] = event.magnitude
            else:  # nic_drop_stop
                drop_p[event.target] = 0.0
        self._next = i


class ShardedSpine(SpineSwitch):
    """A spine whose forwarding pipeline exports to shard batches.

    Serialization, queueing, tail-drop and partition blackholing are the
    inherited (coordinator-live, serial-exact) mechanics; only the final
    dispatch changes: instead of scheduling local delivery at
    ``now + forward_latency_ns``, the message is buffered for the
    coordinator's window-end admission, which ships it to the owning
    shard at exactly that delivery time.
    """

    def __init__(self, *args: Any, export: List[tuple], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._export = export

    def _dispatch(self, request: Request, port: int, deliver) -> None:
        # `deliver` is the (possibly fault-guarded) mirror offer; it
        # must never run here -- delivery happens shard-side.
        self._export.append((self.sim.now, port, request))


# ----------------------------------------------------------------------
# Shard-side model
# ----------------------------------------------------------------------
class _RackShardModel:
    """What one shard simulates: a group of rack subtrees on their own
    simulator, with terminal records captured via the racks' hook
    chains (the exact seam the serial datacenter wires itself into)."""

    def __init__(self, sim: Simulator, racks: Sequence[Any], packed: bool) -> None:
        self.sim = sim
        self.racks = list(racks)
        self._packed = packed
        self._records: List[tuple] = []
        for local, rack in enumerate(self.racks):
            rack.completion_hooks.append(self._capture(local, _COMPLETED))
            rack.drop_hooks.append(self._capture(local, _DROPPED))

    def _capture(self, local: int, kind: str):
        records = self._records
        sim = self.sim
        if self._packed:
            def hook(request: Request) -> None:
                records.append(
                    (sim.now, kind, local, request.req_id, _pack_sync(request))
                )
        else:
            def hook(request: Request) -> None:
                records.append((sim.now, kind, local, request, None))
        return hook

    def deliver(self, deliveries: Sequence[tuple]) -> None:
        sim = self.sim
        racks = self.racks
        unpack = _unpack_request if self._packed else None
        for delivery_time, local, payload in deliveries:
            request = unpack(payload) if unpack is not None else payload
            sim.schedule_at(delivery_time, racks[local].offer, request)

    def run_until(self, horizon: float) -> None:
        self.sim.run_until_horizon(horizon)

    def drain_records(self) -> List[tuple]:
        # The capture hooks hold a reference to this list: clear it in
        # place, never rebind it.
        records = self._records
        out = list(records)
        records.clear()
        return out

    def next_time(self) -> Optional[float]:
        return self.sim.peek_time()

    def harvest(self) -> List[Tuple[dict, List[float]]]:
        out = []
        for rack in self.racks:
            rack.shutdown()
            # Per-core values, not a partial sum: the coordinator's
            # utilization flat-sums them in the serial iteration order,
            # so even the float addition order matches bit-for-bit.
            busy_ns = [
                core.busy_ns
                for server in rack.servers
                for core in server.cores
            ]
            out.append((rack.metrics.snapshot(), busy_ns))
        return out


def _build_shard_model(
    seeds: Sequence[int], rack_config: RackConfig, packed: bool
) -> _RackShardModel:
    """Module-level shard factory (crosses the process boundary by
    name).  Each rack is built exactly as the serial
    :func:`~repro.datacenter.topology.build_topology` builds it: a
    fresh simulator plus ``RandomStreams`` re-seeded with the value
    ``streams.spawn("dc-rack-<i>")`` derives, so the shard-side rack
    consumes bit-for-bit the serial rack's streams."""
    sim = Simulator()
    racks = [
        build_rack(sim, RandomStreams(seed), rack_config) for seed in seeds
    ]
    return _RackShardModel(sim, racks, packed)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardedDatacenter(Datacenter):
    """The window-coordinator datacenter: serial surface, sharded core.

    Constructed by :func:`build_sharded_topology`; implements the
    coordinator protocol :class:`~repro.sim.sharded.WindowDriver`
    drives (``window_ns`` / ``shards`` / ``take_batches`` / ``replay``
    / ``end_window`` / ``next_delivery_time`` / ``finish``) on top of
    the unmodified ``Datacenter`` wiring bound to mirror racks.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: DatacenterConfig,
        mirrors: List[MirrorRack],
        shard_handles: List[ShardHandle],
        groups: List[List[int]],
        packed: bool,
    ) -> None:
        if config.spine_forward_latency_ns <= 0:
            raise ValueError(
                "sharded execution needs spine_forward_latency_ns > 0: "
                "the forwarding latency is the conservative lookahead"
            )
        #: Spine export buffer; must exist before super().__init__
        #: constructs the spine via _make_spine.
        self._spine_buffer: List[tuple] = []
        self.shards = shard_handles
        self._groups = groups
        #: rack index -> (owning shard, index within that shard).
        self._placement: Dict[int, Tuple[int, int]] = {
            rack: (shard, local)
            for shard, group in enumerate(groups)
            for local, rack in enumerate(group)
        }
        self._packed = packed
        self._batches: List[List[tuple]] = [[] for _ in shard_handles]
        self._bumps: List[tuple] = []
        #: Admitted delivery times per rack (monotone: spine ports
        #: serialize in order), walked against the clock to mirror the
        #: serial rack's `offered` counter.  Initialized before the
        #: serial constructor runs: the steering policy probes
        #: :meth:`outstanding` at start().
        self._admitted_d: List[List[float]] = [[] for _ in mirrors]
        self._offered_ptr: List[int] = [0] * len(mirrors)
        #: Coordinator originals of requests shipped to process shards.
        self._shipped: Dict[int, Request] = {}
        self._injector = None
        self._timeline: Optional[_FaultTimeline] = None
        self._harvested: Dict[int, Tuple[dict, float]] = {}
        self._finished = False
        super().__init__(sim, streams, config, mirrors)
        self.window_ns = self.spine.min_transit_ns(0)

    def _make_spine(self, sim: Simulator, config: DatacenterConfig) -> SpineSwitch:
        return ShardedSpine(
            sim,
            n_ports=config.n_racks,
            bandwidth_gbps=config.spine_bandwidth_gbps,
            forward_latency_ns=config.spine_forward_latency_ns,
            port_queue_depth=config.spine_port_queue_depth,
            spine_links=config.spine_links,
            on_drop=self._switch_dropped,
            export=self._spine_buffer,
        )

    # ------------------------------------------------------------------
    # Fault-layer integration
    # ------------------------------------------------------------------
    def on_fault_injector_attached(self, injector) -> None:
        self._injector = injector
        self._timeline = _FaultTimeline(injector.plan, self.config.n_racks)

    # ------------------------------------------------------------------
    # Coordinator protocol (driven by WindowDriver)
    # ------------------------------------------------------------------
    def take_batches(self) -> List[List[tuple]]:
        batches = self._batches
        self._batches = [[] for _ in self.shards]
        return batches

    def next_delivery_time(self) -> Optional[float]:
        best: Optional[float] = None
        for batch in self._batches:
            if batch and (best is None or batch[0][0] < best):
                best = batch[0][0]
        return best

    def end_window(self, horizon: float) -> None:
        """Admit the window's spine traffic and build next batches.

        The buffer holds (serialization-done, port, request) in
        execution order, which equals the serial delivery-event order
        (delivery = done + H, a constant shift).  Admission therefore
        draws the injector's ``"faults"`` coins in exactly the serial
        sequence; rejects become bump records applied at the delivery
        time, so a truncated run counts them iff the serial run would.
        """
        injector = self._injector
        timeline = self._timeline
        rng = injector._rng if injector is not None else None
        window = self.window_ns
        placement = self._placement
        batches = self._batches
        admitted = self._admitted_d
        packed = self._packed
        for done, port, request in self._spine_buffer:
            delivery = done + window
            if injector is not None:
                timeline.advance(delivery)
                request.server_id = port
                if timeline.down[port]:
                    self._bumps.append(
                        (delivery, _BLACKHOLED, None, None, None)
                    )
                    continue
                p = timeline.drop_p[port]
                if p > 0.0 and rng.random() < p:
                    self._bumps.append(
                        (delivery, _NIC_DROPPED, None, None, None)
                    )
                    continue
            shard, local = placement[port]
            admitted[port].append(delivery)
            if packed:
                self._shipped[request.req_id] = request
                payload = _pack_request(request)
            else:
                payload = request
            batches[shard].append((delivery, local, payload))
        self._spine_buffer.clear()

    def replay(self, horizon: float, shard_records: List[List[tuple]]) -> None:
        """Interleave shard terminals (and pending admission bumps) with
        the coordinator's own heap in timestamp order, applying each
        record with the clock parked at its serial time."""
        sim = self.sim
        groups = self._groups
        streams = [
            [
                (time, kind, groups[shard][local], ref, sync)
                for time, kind, local, ref, sync in records
            ]
            for shard, records in enumerate(shard_records)
        ]
        bumps = self._bumps
        self._bumps = []
        for record in heapq.merge(*streams, bumps, key=lambda r: r[0]):
            time = record[0]
            sim.run_until_horizon(time)
            if sim.stopped:
                return
            sim.advance_clock(time)
            self._apply(record)
            if sim.stopped:
                return
        sim.run_until_horizon(horizon)

    def _apply(self, record: tuple) -> None:
        _, kind, rack, ref, sync = record
        if kind == _COMPLETED or kind == _DROPPED:
            if self._packed:
                request = self._shipped.pop(ref)
                _apply_sync(request, sync)
            else:
                request = ref
            mirror = self.racks[rack]
            if kind == _COMPLETED:
                mirror.apply_completion(request)
            else:
                mirror.apply_drop(request)
        elif kind == _BLACKHOLED:
            self._injector._m_blackholed.value += 1
        else:  # _NIC_DROPPED
            self._injector._m_nic_dropped.value += 1

    def finish(self) -> None:
        """Harvest shard telemetry and finalize mirror counters; runs
        once, at the end of the window loop (before ``shutdown``)."""
        if self._finished:
            return
        self._finished = True
        for shard, handle in enumerate(self.shards):
            group = self._groups[shard]
            for local, harvested in enumerate(handle.harvest()):
                self._harvested[group[local]] = harvested
            handle.close()
        now = self.sim.now
        for rack, mirror in enumerate(self.racks):
            mirror.stats.offered = self._walk_offered(rack, now)

    # ------------------------------------------------------------------
    # Serial-surface overrides
    # ------------------------------------------------------------------
    def _walk_offered(self, rack: int, now: float) -> int:
        deliveries = self._admitted_d[rack]
        ptr = self._offered_ptr[rack]
        while ptr < len(deliveries) and deliveries[ptr] <= now:
            ptr += 1
        self._offered_ptr[rack] = ptr
        return ptr

    def outstanding(self, rack: int) -> float:
        """Serial semantics: deliveries that have reached the rack minus
        its terminals.  Arrivals come from the admitted-delivery walk
        (the shard-side ``offered`` bump, mirrored); terminals from the
        replay-maintained mirror stats."""
        stats = self.racks[rack].stats
        offered = self._walk_offered(rack, self.sim.now)
        return float(offered - stats.completed - stats.dropped)

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0 or not self._harvested:
            return 0.0
        total_cores = self.config.total_cores
        if total_cores == 0:
            return 0.0
        # Flat left-to-right sum over racks in index order: the serial
        # Datacenter.utilization addition order, bit-for-bit.
        busy = sum(
            core_busy
            for rack in range(len(self.racks))
            for core_busy in self._harvested[rack][1]
        )
        return busy / (elapsed_ns * total_cores)

    def shutdown(self) -> None:
        super().shutdown()
        for rack, mirror in enumerate(self.racks):
            harvested = self._harvested.get(rack)
            if harvested is None:
                continue
            snapshot = dict(harvested[0])
            # The shard may have overrun a truncated (stopped) run; the
            # replay-exact mirror counters are the serial truth.
            stats = mirror.stats
            snapshot["system.offered"] = stats.offered
            snapshot["system.completed"] = stats.completed
            snapshot["system.dropped"] = stats.dropped
            self.metrics.attach_snapshot(f"rack{rack}", snapshot)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_sharded_topology(
    sim: Simulator,
    streams: RandomStreams,
    config: DatacenterConfig,
    shards: int,
    mode: str = "process",
) -> ShardedDatacenter:
    """Build a datacenter partitioned across ``shards`` workers.

    ``sim`` must be a :class:`~repro.sim.sharded.ShardedSimulator`; the
    window driver is bound to it here, so ``sim.run(...)`` transparently
    runs the conservative window loop.  ``mode`` is ``"process"``
    (worker processes; the speedup configuration) or ``"inprocess"``
    (same-process shards sharing Request objects; the ``shards=1``
    overhead baseline and the transport-free test mode).  Racks are
    assigned to shards in contiguous balanced groups.
    """
    if mode not in ("process", "inprocess"):
        raise ValueError(f"unknown shard mode {mode!r}")
    if not 1 <= shards <= config.n_racks:
        raise ValueError(
            f"shards must be in [1, n_racks={config.n_racks}], got {shards}"
        )
    bind = getattr(sim, "bind_driver", None)
    if bind is None:
        raise TypeError(
            "build_sharded_topology needs a ShardedSimulator "
            f"(got {type(sim).__name__})"
        )
    groups: List[List[int]] = [[] for _ in range(shards)]
    for rack in range(config.n_racks):
        groups[rack * shards // config.n_racks].append(rack)
    packed = mode == "process"
    handles: List[ShardHandle] = []
    for group in groups:
        seeds = [
            streams.spawn(f"dc-rack-{rack}").master_seed for rack in group
        ]
        if packed:
            handles.append(
                ProcessShard(_build_shard_model, (seeds, config.rack, True))
            )
        else:
            handles.append(
                InProcessShard(_build_shard_model(seeds, config.rack, False))
            )
    mirrors = [MirrorRack() for _ in range(config.n_racks)]
    datacenter = ShardedDatacenter(
        sim, streams, config, mirrors, handles, groups, packed
    )
    bind(WindowDriver(sim, datacenter))
    return datacenter
