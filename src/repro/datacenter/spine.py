"""The spine-switch model: rack-facing ports of the fabric layer.

A :class:`SpineSwitch` is the same output-queued, store-and-forward
machine as the ToR (:class:`repro.cluster.switch.SwitchCore` carries the
mechanism for both); what differs is the operating point and the
vocabulary:

* each egress port faces one *rack* (its ToR uplink), not one server;
* ports are faster (400 GbE class) and may aggregate ``spine_links``
  parallel links into one logical rack port -- the "L spine links" knob
  of the topology, modelled as an L-fold bandwidth multiple rather than
  L separate serializers, which keeps per-request ordering deterministic
  and matches how ECMP spreads a single rack's flows across links;
* the forwarding pipeline is longer (an extra fabric hop's propagation);
* buffers are deeper, as spine silicon's shared packet buffers are.

Trace spans land on the ``"spine"`` track with ``spine_queue`` /
``spine_tx`` marks, so a Chrome trace of a datacenter run shows both
fabric layers of a request's journey distinctly.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.switch import DropFn, SwitchCore
from repro.sim.engine import Simulator

#: Default per-link bandwidth: 400 GbE spine ports (4x the ToR default).
DEFAULT_SPINE_BANDWIDTH_GBPS = 400.0

#: Default spine forwarding latency: switching pipeline plus the longer
#: spine-to-ToR propagation of an extra fabric hop.
DEFAULT_SPINE_FORWARD_LATENCY_NS = 500.0

#: Default per-port buffer, in requests (spine buffers run deep).
DEFAULT_SPINE_PORT_QUEUE_DEPTH = 1024


class SpineSwitch(SwitchCore):
    """A spine-layer switch stage with one logical port per rack.

    Parameters are the shared core's, plus ``spine_links``: the number
    of parallel physical links aggregated into each rack-facing port
    (effective port bandwidth is ``bandwidth_gbps * spine_links``).
    """

    track = "spine"
    queue_mark = "spine_queue"
    tx_mark = "spine_tx"
    metrics_prefix = "datacenter.spine"

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        bandwidth_gbps: float = DEFAULT_SPINE_BANDWIDTH_GBPS,
        forward_latency_ns: float = DEFAULT_SPINE_FORWARD_LATENCY_NS,
        port_queue_depth: Optional[int] = DEFAULT_SPINE_PORT_QUEUE_DEPTH,
        spine_links: int = 1,
        on_drop: Optional[DropFn] = None,
    ) -> None:
        if spine_links <= 0:
            raise ValueError(
                f"need at least one spine link, got {spine_links}"
            )
        self.spine_links = int(spine_links)
        #: Per-physical-link bandwidth, before aggregation.
        self.link_bandwidth_gbps = float(bandwidth_gbps)
        super().__init__(
            sim,
            n_ports,
            bandwidth_gbps=bandwidth_gbps * self.spine_links,
            forward_latency_ns=forward_latency_ns,
            port_queue_depth=port_queue_depth,
            on_drop=on_drop,
        )
