"""Datacenter topology: R racks behind one spine layer.

:class:`DatacenterConfig` describes a spine-leaf fabric declaratively
(how many racks, the rack template, which inter-rack steering policy,
spine parameters, optionally a tenant mix);
:func:`build_topology` wires it into a live :class:`Datacenter` on a
shared simulator, composing :func:`repro.cluster.topology.build_rack`
per leaf.

A :class:`Datacenter` recurses the pattern the rack tier proved: it
presents the same duck interface as a single
:class:`~repro.schedulers.base.RpcSystem` (``offer`` / ``expect`` /
``shutdown`` / ``utilization`` / ``stats``), so everything built for one
server -- :func:`repro.api.run_workload`, the sweep runner, tracing,
fault plans -- drives a whole datacenter unchanged.  Request flow::

    load generator --offer--> inter-rack policy picks rack
        --> spine switch (serialization + queueing + forwarding latency)
        --> rack ingress (intra-rack policy picks server)
        --> ToR switch --> server NIC --> scheduler --> core

Fault interop: the datacenter exposes its racks as ``servers`` -- to the
fault layer, a rack is this tier's unit of failure -- so an unmodified
``server_crash`` plan downs a whole rack and health-aware inter-rack
policies route around it.  The spine is exposed as ``spine`` (not
``switch``): the ``spine_degrade``/``spine_partition`` kinds target it,
while ToR-level kinds are structurally inapplicable here and are counted
as skipped, exactly like a ToR kind against a single server.

Determinism: each rack gets RNG streams spawned from the master streams
under a stable per-rack name, and the inter-rack policy draws from the
master ``"steering"`` stream, so datacenter simulations are bit-identical
for a fixed seed regardless of rack count or process placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.fabric import FabricBookkeeping
from repro.cluster.policies import (
    DEFAULT_D,
    DEFAULT_SAMPLE_PERIOD_NS,
    POLICY_NAMES,
    SteeringPolicy,
    make_policy,
)
from repro.cluster.topology import RackCluster, RackConfig, build_rack
from repro.datacenter import metrics as dc_metrics
from repro.datacenter.spine import (
    DEFAULT_SPINE_BANDWIDTH_GBPS,
    DEFAULT_SPINE_FORWARD_LATENCY_NS,
    DEFAULT_SPINE_PORT_QUEUE_DEPTH,
    SpineSwitch,
)
from repro.schedulers.base import SystemStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry
from repro.workload.request import Request
from repro.workload.tenants import TenantClass, TenantMix, tenant_slo_summary


@dataclass(frozen=True)
class DatacenterConfig:
    """Declarative description of one spine-leaf datacenter.

    Attributes
    ----------
    n_racks:
        Number of leaf racks under the spine.
    rack:
        The rack template (shape, per-server system, intra-rack policy,
        ToR parameters); every rack is built from it.
    policy:
        *Inter-rack* steering policy name (same registry as the rack
        tier: see :data:`repro.cluster.policies.POLICY_NAMES`).
    d, staleness_ns:
        Inter-rack power-of-d parameters: racks sampled per decision and
        how stale a cached rack-load estimate may get.
    sample_period_ns:
        RackSched-style inter-rack policy: period of the full rack-load
        sample.
    spine_links:
        Parallel physical links aggregated into each rack-facing spine
        port (the "L" of R racks x S servers under L spine links).
    spine_bandwidth_gbps, spine_forward_latency_ns, spine_port_queue_depth:
        Spine switch model (see
        :class:`repro.datacenter.spine.SpineSwitch`).
    tenants:
        Optional multi-tenant traffic classes.  When non-empty the
        datacenter accounts per-tenant SLO attainment live (instruments
        under ``tenant.<name>.*``, summary into ``stats.extra``); the
        workload should then draw connections from the matching
        :class:`~repro.workload.tenants.TenantConnectionPool`.
    """

    n_racks: int = 2
    rack: RackConfig = field(default_factory=RackConfig)
    policy: str = "shortest_wait"
    d: int = DEFAULT_D
    staleness_ns: float = 0.0
    sample_period_ns: float = DEFAULT_SAMPLE_PERIOD_NS
    spine_links: int = 1
    spine_bandwidth_gbps: float = DEFAULT_SPINE_BANDWIDTH_GBPS
    spine_forward_latency_ns: float = DEFAULT_SPINE_FORWARD_LATENCY_NS
    spine_port_queue_depth: Optional[int] = DEFAULT_SPINE_PORT_QUEUE_DEPTH
    tenants: Tuple[TenantClass, ...] = ()

    def __post_init__(self) -> None:
        if self.n_racks <= 0:
            raise ValueError(f"need at least one rack, got {self.n_racks}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown steering policy {self.policy!r}; "
                f"pick from {POLICY_NAMES}"
            )
        if self.spine_links <= 0:
            raise ValueError(
                f"need at least one spine link, got {self.spine_links}"
            )
        # Tolerate list input (hand-written configs) by freezing it.
        if not isinstance(self.tenants, tuple):
            object.__setattr__(self, "tenants", tuple(self.tenants))

    @property
    def total_cores(self) -> int:
        return self.n_racks * self.rack.total_cores

    def capacity_rps(self, mean_service_ns: float) -> float:
        """Aggregate service capacity at a given mean service time."""
        return self.total_cores / mean_service_ns * 1e9


class Datacenter(FabricBookkeeping):
    """R independent racks behind one spine layer and one policy.

    Implements the system duck interface :func:`repro.api.run_workload`
    expects, so a datacenter can be driven (and cached, and fanned out
    by the sweep runner) exactly like a single server or a rack.
    Terminal accounting (``expect`` / completion and drop hooks /
    end-of-run detection) is the shared
    :class:`~repro.cluster.fabric.FabricBookkeeping`; this tier adds
    per-tenant SLO attainment via the ``_account_completion`` override.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: DatacenterConfig,
        racks: List[RackCluster],
    ) -> None:
        self.sim = sim
        self.config = config
        self.racks = racks
        #: Fault-layer duck: to the injector, a rack is this tier's
        #: "server" (unit of crash/blackhole), so unmodified FaultPlans
        #: apply with rack-granular blast radius.
        self.servers = racks
        self.name = (
            f"datacenter[{config.n_racks}x{config.rack.n_servers}"
            f"x{config.rack.system}x{config.rack.cores_per_server}"
            f"/{config.policy}]"
        )
        self.metrics = MetricRegistry()
        sim.register_metrics(self.metrics)
        self.stats = SystemStats(self.metrics)
        self.tenant_mix: Optional[TenantMix] = (
            TenantMix(config.tenants) if config.tenants else None
        )
        #: Live per-tenant accounting, updated on the completion path.
        self.tenant_completed: List[int] = (
            [0] * len(self.tenant_mix) if self.tenant_mix else []
        )
        self.tenant_slo_met: List[int] = list(self.tenant_completed)
        self.spine = self._make_spine(sim, config)
        self.policy: SteeringPolicy = make_policy(
            config.policy,
            n_servers=config.n_racks,
            probe=self.outstanding,
            sim=sim,
            rng=streams.get("steering"),
            cores_per_server=config.rack.total_cores,
            d=config.d,
            staleness_ns=config.staleness_ns,
            sample_period_ns=config.sample_period_ns,
        )
        self._init_fabric()
        self._deliver = [rack.offer for rack in self.racks]
        #: Liveness view over racks; the fault injector swaps in a live
        #: HealthView (shared with ``policy.health``) when a plan is
        #: attached.
        self.health = self.policy.health
        self.spine.register_metrics(self.metrics)
        dc_metrics.register_datacenter_instruments(self, self.metrics)
        if self.tenant_mix is not None:
            dc_metrics.register_tenant_instruments(self, self.metrics)
        for i, rack in enumerate(self.racks):
            rack.completion_hooks.append(self._member_completed)
            rack.drop_hooks.append(self._member_dropped)
            self.metrics.attach_child(f"rack{i}", rack.metrics)
        self.policy.start()

    def _make_spine(self, sim: Simulator, config: DatacenterConfig) -> SpineSwitch:
        """Construct the spine switch.  Overridden by the sharded tier to
        substitute a boundary spine whose dispatch exports messages to
        remote shards; everything the base class wires against the spine
        (drop hook, metrics, fault knobs) binds to whatever this
        returns."""
        return SpineSwitch(
            sim,
            n_ports=config.n_racks,
            bandwidth_gbps=config.spine_bandwidth_gbps,
            forward_latency_ns=config.spine_forward_latency_ns,
            port_queue_depth=config.spine_port_queue_depth,
            spine_links=config.spine_links,
            on_drop=self._switch_dropped,
        )

    # ------------------------------------------------------------------
    # Load-generator interface (duck-compatible with RpcSystem)
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Datacenter ingress: steer to a rack, then cross the spine."""
        self.stats.offered += 1
        rack = self.policy.pick_server(request)
        self.spine.forward(request, rack, self._deliver[rack])

    # ------------------------------------------------------------------
    # Terminal accounting (FabricBookkeeping, plus tenant attainment)
    # ------------------------------------------------------------------
    def _account_completion(self, request: Request) -> None:
        mix = self.tenant_mix
        if mix is None:
            return
        connection = request.connection
        if not 0 <= connection < mix.total_connections:
            # Workload not drawn from the tenant pool (or a synthetic
            # test request): no tenant to charge.
            return
        tenant = mix.tenant_of(connection)
        self.tenant_completed[tenant] += 1
        if request.latency <= mix.tenants[tenant].slo_ns:
            self.tenant_slo_met[tenant] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self, rack: int) -> float:
        """Requests in flight inside rack ``rack`` (its ToR, its servers'
        queues and cores) -- the load signal inter-rack policies probe."""
        stats = self.racks[rack].stats
        return float(stats.offered - stats.completed - stats.dropped)

    @property
    def finished_requests(self) -> List[Request]:
        """All completed requests, in per-rack (then per-server) order."""
        merged: List[Request] = []
        for rack in self.racks:
            merged.extend(rack.finished_requests)
        return merged

    def utilization(self, elapsed_ns: float) -> float:
        """Mean core utilization across every core in the datacenter."""
        if elapsed_ns <= 0:
            return 0.0
        total_cores = sum(
            len(server.cores) for rack in self.racks for server in rack.servers
        )
        if total_cores == 0:
            return 0.0
        busy = sum(
            core.busy_ns
            for rack in self.racks
            for server in rack.servers
            for core in server.cores
        )
        return busy / (elapsed_ns * total_cores)

    def shutdown(self) -> None:
        """Stop periodic machinery and distill fabric metrics into the
        ``datacenter.*`` (and ``tenant.*``) namespaces of ``stats.extra``
        so they travel with every sweep result."""
        self.policy.shutdown()
        for rack in self.racks:
            rack.shutdown()
        scoped = self.stats.scoped("datacenter")
        for key, value in dc_metrics.datacenter_summary(self).items():
            scoped.put(key, value)
        if self.tenant_mix is not None:
            tenants = self.stats.scoped("tenant")
            summary = tenant_slo_summary(self.finished_requests, self.tenant_mix)
            for name, entry in summary.items():
                for key, value in entry.items():
                    tenants.put(f"{name}.{key}", value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Datacenter {self.name} "
            f"done={self.stats.completed}/{self.stats.offered}>"
        )


def build_topology(
    sim: Simulator, streams: RandomStreams, config: DatacenterConfig
) -> Datacenter:
    """Instantiate a datacenter: R racks plus spine and inter-rack policy.

    Each rack is built from the shared template with RNG streams spawned
    under a stable per-rack name (``dc-rack-<i>``), so fingerprints are
    independent of build order and process placement.
    """
    racks = [
        build_rack(sim, streams.spawn(f"dc-rack-{i}"), config.rack)
        for i in range(config.n_racks)
    ]
    return Datacenter(sim, streams, config, racks)
