"""Per-figure/table reproduction harnesses.

Each module exposes ``run(scale=1.0, seed=...) -> ExperimentResult``
regenerating one evaluation artifact of the paper.  ``scale`` shrinks or
grows request counts (benchmarks use ``scale < 1`` for time-bounded
runs; ``scale = 1`` is the documented reproduction configuration).

The registry maps experiment ids ("fig10", "tab1", ...) to run
functions; the ``altocumulus-exp`` CLI and the benchmark suite both go
through it.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentInfo,
    experiment_description,
    get_experiment,
    list_experiments,
)

__all__ = [
    "ExperimentResult",
    "ExperimentInfo",
    "EXPERIMENTS",
    "experiment_description",
    "get_experiment",
    "list_experiments",
]
