"""Ablation studies for the design choices DESIGN.md calls out.

Not a paper artifact -- these isolate individual Altocumulus design
decisions the paper motivates but does not sweep:

* **threshold mode** -- the Sec. IV trade-off between prediction
  accuracy and migration traffic: ``T_lower``-style aggressive
  thresholds vs the Eq. 2 model vs the conservative ``k*L+1`` bound.
* **at-most-once migration** -- Sec. V-B optimization 4: allowing
  re-migration inflates scheduling traffic for no latency benefit.
* **messaging mechanism** -- register-level hardware messaging vs
  shared-cache software messaging for the same runtime decisions.
* **worker bound** -- the local JBSQ depth (1 vs 2 vs 4): deeper local
  queues hide dispatch latency but commit requests behind long ones.

All variants replay the same seed/workload, so rows are paired.
"""

from __future__ import annotations

from typing import List

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    gentle_bursts,
    run_once,
    scaled,
)
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

SERVICE = Bimodal(short_ns=500.0, long_ns=5_000.0, long_fraction=0.029)
L = 10.0
SLO_NS = L * SERVICE.mean
N_GROUPS, GROUP_SIZE, LOAD = 8, 8, 0.85


def _run(n_requests: int, seed: int, **config_overrides):
    def builder(sim, streams):
        config = AltocumulusConfig(
            n_groups=N_GROUPS,
            group_size=GROUP_SIZE,
            period_ns=200.0,
            bulk=16,
            concurrency=4,
            slo_multiplier=L,
            offered_load=LOAD,
            **config_overrides,
        )
        return AltocumulusSystem(sim, streams, config)

    workers = N_GROUPS * (GROUP_SIZE - 1)
    rate = LOAD * workers / SERVICE.mean * 1e9
    return run_once(
        builder,
        gentle_bursts(rate),
        SERVICE,
        n_requests=n_requests,
        seed=seed,
        connections=ConnectionPool.skewed(64, zipf_s=0.8),
    )


def _row(study: str, variant: str, result) -> List[object]:
    system = result.system
    violations = sum(1 for r in result.requests if r.latency > SLO_NS)
    migrated = sum(1 for r in result.requests if r.migrations > 0)
    hops = sum(r.migrations for r in result.requests)
    return [
        study,
        variant,
        result.latency.p99 / 1000.0,
        violations,
        migrated,
        hops,
    ]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Run the design-choice ablation studies."""
    n = scaled(60_000, scale)
    rows: List[List[object]] = []

    # ---- threshold-mode ablation (Sec. IV trade-off)
    rows.append(_row("threshold", "model",
                     _run(n, seed, threshold_mode="model")))
    rows.append(_row("threshold", "upper_bound",
                     _run(n, seed, threshold_mode="upper_bound")))
    rows.append(_row("threshold", "aggressive_fixed",
                     _run(n, seed, threshold_mode="fixed",
                          fixed_threshold=8.0)))

    # ---- at-most-once migration (Sec. V-B opt. 4)
    rows.append(_row("remigration", "at_most_once",
                     _run(n, seed, allow_remigration=False)))
    rows.append(_row("remigration", "unbounded",
                     _run(n, seed, allow_remigration=True)))

    # ---- messaging mechanism
    rows.append(_row("messaging", "hw_registers", _run(n, seed, messaging="hw")))
    rows.append(_row("messaging", "sw_caches", _run(n, seed, messaging="sw")))

    # ---- local JBSQ depth
    for bound in (1, 2, 4):
        rows.append(_row("worker_bound", f"jbsq({bound})",
                         _run(n, seed, worker_bound=bound)))

    # ---- NoC fidelity: per-link contention on vs off.  The paper
    # asserts scheduling traffic leaves the NoC lightly loaded [58];
    # if so, the contended model must match the uncontended one.
    rows.append(_row("noc", "ideal_links",
                     _run(n, seed, noc_link_contention=False)))
    rows.append(_row("noc", "contended_links",
                     _run(n, seed, noc_link_contention=True)))

    return ExperimentResult(
        exp_id="ablations",
        title="Design-choice ablations (64 cores, 8x8 groups, skewed bursts)",
        headers=["study", "variant", "p99_us", "slo_violations",
                 "requests_migrated", "migration_hops"],
        rows=rows,
        notes=(
            "All rows replay the identical workload (paired seeds).\n"
            "Expectations: aggressive thresholds trade migration traffic\n"
            "for violations (Sec. IV); unbounded re-migration adds hops\n"
            "without cutting p99 (Sec. V-B opt. 4); software messaging is\n"
            "no better than hardware despite costing manager cycles;\n"
            "deeper local queues commit more requests behind long ones."
        ),
    )
