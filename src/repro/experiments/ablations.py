"""Ablation studies for the design choices DESIGN.md calls out.

Not a paper artifact -- these isolate individual Altocumulus design
decisions the paper motivates but does not sweep:

* **threshold mode** -- the Sec. IV trade-off between prediction
  accuracy and migration traffic: ``T_lower``-style aggressive
  thresholds vs the Eq. 2 model vs the conservative ``k*L+1`` bound.
* **at-most-once migration** -- Sec. V-B optimization 4: allowing
  re-migration inflates scheduling traffic for no latency benefit.
* **messaging mechanism** -- register-level hardware messaging vs
  shared-cache software messaging for the same runtime decisions.
* **worker bound** -- the local JBSQ depth (1 vs 2 vs 4): deeper local
  queues hide dispatch latency but commit requests behind long ones.

All variants replay the same seed/workload, so rows are paired.
"""

from __future__ import annotations

from typing import List

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import ExperimentResult, gentle_bursts, scaled
from repro.runner import PointSpec, ref, run_points
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

SERVICE = Bimodal(short_ns=500.0, long_ns=5_000.0, long_fraction=0.029)
L = 10.0
SLO_NS = L * SERVICE.mean
N_GROUPS, GROUP_SIZE, LOAD = 8, 8, 0.85


def _ablation_builder(sim, streams, **config_overrides):
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        period_ns=200.0,
        bulk=16,
        concurrency=4,
        slo_multiplier=L,
        offered_load=LOAD,
        **config_overrides,
    )
    return AltocumulusSystem(sim, streams, config)


def _migration_metrics(result, slo_ns: float) -> dict:
    """Worker-side distillation of the per-request migration columns."""
    return {
        "violations": sum(1 for r in result.requests if r.latency > slo_ns),
        "migrated": sum(1 for r in result.requests if r.migrations > 0),
        "hops": sum(r.migrations for r in result.requests),
    }


def _spec(n_requests: int, seed: int, tag: str, **config_overrides) -> PointSpec:
    workers = N_GROUPS * (GROUP_SIZE - 1)
    rate = LOAD * workers / SERVICE.mean * 1e9
    return PointSpec(
        builder=ref(_ablation_builder, **config_overrides),
        service=SERVICE,
        rate_rps=rate,
        n_requests=n_requests,
        seed=seed,
        arrivals=ref(gentle_bursts),
        connections=ref(ConnectionPool.skewed, n_connections=64, zipf_s=0.8),
        slo_ns=SLO_NS,
        metrics=ref(_migration_metrics, slo_ns=SLO_NS),
        tag=tag,
    )


def _row(study: str, variant: str, point) -> List[object]:
    return [
        study,
        variant,
        point.latency.p99 / 1000.0,
        point.metrics["violations"],
        point.metrics["migrated"],
        point.metrics["hops"],
    ]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Run the design-choice ablation studies."""
    n = scaled(60_000, scale)

    variants: List[tuple] = [
        # ---- threshold-mode ablation (Sec. IV trade-off)
        ("threshold", "model", {"threshold_mode": "model"}),
        ("threshold", "upper_bound", {"threshold_mode": "upper_bound"}),
        ("threshold", "aggressive_fixed",
         {"threshold_mode": "fixed", "fixed_threshold": 8.0}),
        # ---- at-most-once migration (Sec. V-B opt. 4)
        ("remigration", "at_most_once", {"allow_remigration": False}),
        ("remigration", "unbounded", {"allow_remigration": True}),
        # ---- messaging mechanism
        ("messaging", "hw_registers", {"messaging": "hw"}),
        ("messaging", "sw_caches", {"messaging": "sw"}),
        # ---- local JBSQ depth
        *(("worker_bound", f"jbsq({bound})", {"worker_bound": bound})
          for bound in (1, 2, 4)),
        # ---- NoC fidelity: per-link contention on vs off.  The paper
        # asserts scheduling traffic leaves the NoC lightly loaded [58];
        # if so, the contended model must match the uncontended one.
        ("noc", "ideal_links", {"noc_link_contention": False}),
        ("noc", "contended_links", {"noc_link_contention": True}),
    ]
    specs = [
        _spec(n, seed, tag=f"{study}:{variant}", **overrides)
        for study, variant, overrides in variants
    ]
    rows = [
        _row(study, variant, point)
        for (study, variant, _), point in zip(
            variants, run_points(specs, label="ablations")
        )
    ]

    return ExperimentResult(
        exp_id="ablations",
        title="Design-choice ablations (64 cores, 8x8 groups, skewed bursts)",
        headers=["study", "variant", "p99_us", "slo_violations",
                 "requests_migrated", "migration_hops"],
        rows=rows,
        notes=(
            "All rows replay the identical workload (paired seeds).\n"
            "Expectations: aggressive thresholds trade migration traffic\n"
            "for violations (Sec. IV); unbounded re-migration adds hops\n"
            "without cutting p99 (Sec. V-B opt. 4); software messaging is\n"
            "no better than hardware despite costing manager cycles;\n"
            "deeper local queues commit more requests behind long ones."
        ),
    )
