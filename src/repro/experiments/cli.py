"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    altocumulus-exp fig10                 # one experiment, full scale
    altocumulus-exp all --scale 0.2       # everything, scaled down
    altocumulus-exp fig07 --out results/  # also write results/fig07.txt
    altocumulus-exp all --jobs 0          # fan sweeps out, one worker/CPU
    altocumulus-exp fig10 --no-cache      # force fresh execution

Sweep points fan out over ``--jobs`` worker processes and are memoized
in a content-addressed on-disk cache (``--cache-dir``, default
``~/.cache/altocumulus``), so a repeated invocation replays from disk
in seconds.  Results are bit-identical for a fixed ``--seed`` no matter
the job count; ``--jobs 1 --no-cache`` reproduces the historical fully
serial behavior exactly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.runner import default_cache_dir, detect_jobs, get_config, overrides
from repro.experiments.registry import (
    experiment_description,
    get_experiment,
    list_experiments,
)

#: Friendly aliases accepted on the command line.
ALIASES = {
    "rack": "fig_rack",
    "chaos": "fig_chaos",
    "datacenter": "fig_datacenter",
    "adaptive": "fig_adaptive",
    "fanout": "fig_fanout",
    "contention": "fig_contention",
}


class UnknownExperimentError(ValueError):
    """Raised when the requested experiment id is not registered."""


def resolve_ids(experiment: str) -> List[str]:
    """Expand the CLI's experiment argument into registered ids.

    ``"all"`` expands to every id; aliases (``rack`` -> ``fig_rack``)
    are resolved; anything unregistered raises
    :class:`UnknownExperimentError`.
    """
    if experiment == "all":
        return list_experiments()
    exp_id = ALIASES.get(experiment, experiment)
    if exp_id not in list_experiments():
        raise UnknownExperimentError(
            f"unknown experiment {experiment!r}\n"
            f"available: {' '.join(list_experiments())} "
            f"(aliases: {' '.join(sorted(ALIASES))}; or 'all')"
        )
    return [exp_id]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="altocumulus-exp",
        description="Regenerate Altocumulus (MICRO'22) evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig10), an alias (rack), or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="request-count scale factor (default 1.0; benches use <1)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    parser.add_argument(
        "--out", default=None, help="directory to write <exp_id>.txt into"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --out: also write <exp_id>.json",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for sweep points (0 = one per CPU, "
             f"here {detect_jobs()}; 1 = serial in-process; default 0)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache location "
             f"(default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--no-progress", action="store_true",
        help="suppress live sweep progress on stderr",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="sharded parallel-in-time execution of datacenter sweep "
             "points: partition each run per-rack across N worker "
             "processes (bit-identical results; composes with --jobs; "
             "forces --no-cache; non-datacenter points run serially)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export per-request lifecycle spans as Chrome trace-event "
             "JSON (chrome://tracing / Perfetto); implies --jobs 1 and "
             "--no-cache so every run executes in-process",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="with --trace: record every Nth request (default 1 = all)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write every run's telemetry-registry snapshot as JSON; "
             "implies --jobs 1 and --no-cache",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PATH",
        help="inject a FaultPlan (JSON, see docs/faults.md) into every "
             "run of the experiment; implies --jobs 1 and --no-cache so "
             "the ambient plan reaches each in-process run",
    )
    parser.add_argument(
        "--controller", default=None, metavar="NAME",
        help="attach an adaptive control loop to every run of the "
             "experiment (static | hysteresis | bandit, see "
             "docs/architecture.md); implies --jobs 1 and --no-cache so "
             "the ambient controller reaches each in-process run",
    )
    parser.add_argument(
        "--control-epoch-ns", type=float, default=None, metavar="NS",
        help="with --controller: the control epoch on the simulated "
             "clock (default 20000)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the 25 hottest functions by "
             "cumulative time after each experiment (implies --jobs 1 so "
             "the profiled work stays in-process)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(exp_id) for exp_id in list_experiments())
        print("\n".join(
            f"{exp_id:<{width}}  {experiment_description(exp_id)}"
            for exp_id in list_experiments()
        ))
        return 0

    if args.jobs < 0:
        print(f"error: --jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.shards > 1:
        if args.trace is not None:
            # Lifecycle traces are recorded shard-side in worker
            # processes and never merged; refuse rather than silently
            # emit an empty trace.
            print("error: --trace is not supported with --shards > 1",
                  file=sys.stderr)
            return 2
        if not args.no_cache:
            # The cache key includes the shard count (deliberately, so
            # an identity regression can't replay stale results), which
            # would make sharded runs miss every serial entry and
            # pollute the cache with duplicates; sharded runs always
            # execute fresh.
            print("[--shards forces --no-cache]", file=sys.stderr)
            args.no_cache = True

    if args.cache_dir and not args.no_cache:
        try:
            from repro.runner import ResultCache

            ResultCache(args.cache_dir)
        except NotADirectoryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        ids = resolve_ids(args.experiment)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    control_cfg = None
    if args.control_epoch_ns is not None and args.controller is None:
        print("error: --control-epoch-ns requires --controller",
              file=sys.stderr)
        return 2
    if args.controller is not None:
        if args.shards > 1:
            # A controller's actuations are global (policy swaps, admin
            # drains) and cannot be replayed consistently across shard
            # boundaries; refuse rather than silently diverge.
            print("error: --controller is not supported with --shards > 1",
                  file=sys.stderr)
            return 2
        from repro.control import (
            CONTROLLER_NAMES,
            ControlConfig,
            DEFAULT_CONTROL_EPOCH_NS,
        )

        if args.controller not in CONTROLLER_NAMES:
            print(
                f"error: --controller must be one of "
                f"{' | '.join(CONTROLLER_NAMES)}, got {args.controller!r}",
                file=sys.stderr,
            )
            return 2
        try:
            control_cfg = ControlConfig(
                controller=args.controller,
                epoch_ns=(
                    args.control_epoch_ns
                    if args.control_epoch_ns is not None
                    else DEFAULT_CONTROL_EPOCH_NS
                ),
            )
        except ValueError as exc:
            print(f"error: --controller: {exc}", file=sys.stderr)
            return 2

    fault_plan = None
    if args.faults is not None:
        from repro.faults import FaultPlan, FaultPlanError

        try:
            with open(args.faults) as handle:
                fault_plan = FaultPlan.from_json(handle.read())
        except (OSError, ValueError, FaultPlanError) as exc:
            print(f"error: --faults {args.faults}: {exc}", file=sys.stderr)
            return 2

    capturing = (
        args.trace is not None
        or args.metrics_out is not None
        or fault_plan is not None
        or control_cfg is not None
    )
    if capturing:
        # Worker processes have their own (inactive) capture/fault-plan/
        # controller globals and cached points replay without executing,
        # so telemetry capture, ambient fault plans, and ambient
        # controllers all require fresh in-process execution.
        if args.jobs not in (0, 1):
            print("[--trace/--metrics-out/--faults/--controller force "
                  "--jobs 1]",
                  file=sys.stderr)
        args.jobs = 1
        args.no_cache = True
    if args.trace is not None and args.trace_sample < 1:
        print(f"error: --trace-sample must be >= 1, got {args.trace_sample}",
              file=sys.stderr)
        return 2

    from contextlib import nullcontext

    from repro.telemetry import TraceSink, capture

    sink = TraceSink(sample_every=args.trace_sample) if args.trace else None

    if fault_plan is not None:
        from repro.faults import use_fault_plan

        plan_context = use_fault_plan(fault_plan)
    else:
        plan_context = nullcontext()

    if control_cfg is not None:
        from repro.control import use_controller

        control_context = use_controller(control_cfg)
    else:
        control_context = nullcontext()

    with plan_context, control_context, capture(
        trace=sink, collect_metrics=args.metrics_out is not None
    ) as cap, overrides(
        jobs=1 if (args.profile or capturing) else args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        progress=not args.no_progress,
        shards=args.shards,
    ):
        counters = get_config().counters
        for exp_id in ids:
            run = get_experiment(exp_id)
            before = counters.snapshot()
            started = time.time()
            if args.profile:
                import cProfile
                import pstats

                profiler = cProfile.Profile()
                profiler.enable()
                result = run(scale=args.scale, seed=args.seed)
                profiler.disable()
            else:
                result = run(scale=args.scale, seed=args.seed)
            elapsed = time.time() - started
            print(result.table())
            if args.profile:
                profile_stats = pstats.Stats(profiler, stream=sys.stdout)
                profile_stats.sort_stats("cumulative").print_stats(25)
            sweep = counters.delta(before)
            stats = ""
            if sweep.points:
                stats = (
                    f"; {sweep.points} sweep points, "
                    f"{sweep.cache_hits} cached, {sweep.executed} executed"
                )
            print(f"[{exp_id} completed in {elapsed:.1f}s{stats}]\n")
            if args.out:
                path = result.save(args.out)
                print(f"[wrote {path}]\n")
                if args.json:
                    print(f"[wrote {result.save_json(args.out)}]\n")

    if args.trace is not None:
        sink.export_chrome(args.trace)
        print(f"[wrote {args.trace}: {len(sink)} trace events"
              f"{f', {sink.dropped_events} overwritten' if sink.dropped_events else ''}]")
    if args.metrics_out is not None:
        import json

        with open(args.metrics_out, "w") as handle:
            json.dump({"runs": cap.runs}, handle, indent=2, sort_keys=True)
        print(f"[wrote {args.metrics_out}: {len(cap.runs)} run snapshots]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
