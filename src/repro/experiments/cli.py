"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    altocumulus-exp fig10                 # one experiment, full scale
    altocumulus-exp all --scale 0.2       # everything, scaled down
    altocumulus-exp fig07 --out results/  # also write results/fig07.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import get_experiment, list_experiments


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="altocumulus-exp",
        description="Regenerate Altocumulus (MICRO'22) evaluation artifacts.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig10) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="request-count scale factor (default 1.0; benches use <1)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master RNG seed")
    parser.add_argument(
        "--out", default=None, help="directory to write <exp_id>.txt into"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --out: also write <exp_id>.json",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(list_experiments()))
        return 0

    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        run = get_experiment(exp_id)
        started = time.time()
        result = run(scale=args.scale, seed=args.seed)
        elapsed = time.time() - started
        print(result.table())
        print(f"[{exp_id} completed in {elapsed:.1f}s]\n")
        if args.out:
            path = result.save(args.out)
            print(f"[wrote {path}]\n")
            if args.json:
                print(f"[wrote {result.save_json(args.out)}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
