"""Shared experiment machinery: result containers, sweep helpers and
system factories parameterised the way the evaluation needs them.

Sweeps route through :mod:`repro.runner`: each (builder, rate, seed)
point becomes a picklable :class:`~repro.runner.PointSpec`, so the CLI's
``--jobs`` fans figures out across worker processes and the
content-addressed cache replays identical points instantly.  Builders
passed as module-level callables (optionally ``functools.partial``) get
this for free; closures still work but fall back to in-process serial
execution, exactly as before the runner existed.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import summarize_latencies
from repro.analysis.tables import format_table
from repro.api import SimulationResult, run_workload
from repro.runner import PointSpec, SpecError, maybe_ref, ref, run_points
from repro.schedulers.base import RpcSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ArrivalProcess, MMPPArrivals, PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request
from repro.workload.service import ServiceDistribution


def _json_safe(value: object) -> object:
    """Recursively replace non-finite floats, which ``json.dumps`` would
    emit as bare ``NaN``/``Infinity`` literals -- invalid strict JSON
    that breaks every downstream parser.  NaN becomes ``null``;
    infinities keep their sign as strings."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class ExperimentResult:
    """One regenerated figure/table: titled rows plus provenance notes."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""
    series: Dict[str, object] = field(default_factory=dict)

    def table(self, precision: int = 2) -> str:
        body = format_table(self.headers, self.rows, precision=precision,
                            title=f"{self.exp_id}: {self.title}")
        if self.notes:
            return body + "\n\n" + self.notes
        return body

    def save(self, directory: str) -> str:
        """Write the rendered table to ``directory/<exp_id>.txt``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(self.table() + "\n")
        return path

    def to_json(self) -> str:
        """Machine-readable form (for downstream plotting pipelines).

        Guaranteed to be strict JSON: NaN/Infinity values in rows or
        series are sanitized first (``allow_nan=False`` enforces it),
        and any non-serializable object falls back to ``str``.
        """

        def default(value: object) -> object:
            return str(value)

        payload = {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": self.headers,
            "rows": _json_safe(self.rows),
            "notes": self.notes,
            "series": _json_safe(self.series),
        }
        return json.dumps(payload, indent=2, default=default, allow_nan=False)

    def save_json(self, directory: str) -> str:
        """Write the JSON form to ``directory/<exp_id>.json``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id}.json")
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path


SystemBuilder = Callable[[Simulator, RandomStreams], RpcSystem]


def run_once(
    builder: SystemBuilder,
    arrivals: ArrivalProcess,
    service: ServiceDistribution,
    n_requests: int,
    seed: int = 1,
    warmup_fraction: float = 0.1,
    connections: Optional[ConnectionPool] = None,
    request_factory: Optional[Callable[[Request], None]] = None,
    size_bytes: int = 300,
) -> SimulationResult:
    """Build a fresh simulator + system and run one workload through it.

    This is the in-process single-run primitive; sweeps that want
    parallelism and caching go through :func:`repro.runner.run_points`
    with :class:`~repro.runner.PointSpec` data instead.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    system = builder(sim, streams)
    return run_workload(
        system,
        sim,
        streams,
        arrivals,
        service,
        n_requests=n_requests,
        warmup_fraction=warmup_fraction,
        connections=connections,
        request_factory=request_factory,
        size_bytes=size_bytes,
    )


@dataclass
class SweepPoint:
    """One (offered load, tail latency) sample of a latency-throughput curve."""

    rate_rps: float
    p99_ns: float
    mean_ns: float
    throughput_rps: float
    violation_ratio: float


def latency_throughput_curve(
    builder: SystemBuilder,
    rates_rps: Sequence[float],
    service: ServiceDistribution,
    n_requests: int,
    slo_ns: float,
    seed: int = 1,
    arrival_factory: Optional[Callable[[float], ArrivalProcess]] = None,
    connections: Optional[Callable[[], ConnectionPool]] = None,
    request_factory_factory: Optional[Callable[[], Callable[[Request], None]]] = None,
    label: str = "sweep",
) -> List[SweepPoint]:
    """Sweep offered rates and collect the tail-latency curve.

    ``arrival_factory`` defaults to Poisson; pass e.g.
    ``lambda r: MMPPArrivals(r)`` for the real-world pattern.  Fresh
    connections / request factories are created per point so state (like
    the MICA store) does not leak across loads.

    When every callable is module-level (and therefore picklable), the
    sweep is dispatched through :func:`repro.runner.run_points` and
    obeys the process-wide ``--jobs`` / cache configuration; closures
    fall back to the historical in-process serial loop with identical
    results.
    """
    try:
        specs = [
            PointSpec(
                builder=ref(builder),
                service=service,
                rate_rps=float(rate),
                n_requests=n_requests,
                seed=seed,
                arrivals=maybe_ref(arrival_factory),
                connections=maybe_ref(connections),
                request_factory=maybe_ref(request_factory_factory),
                slo_ns=slo_ns,
                tag=label,
            )
            for rate in rates_rps
        ]
    except SpecError:
        return _serial_curve(
            builder, rates_rps, service, n_requests, slo_ns, seed,
            arrival_factory, connections, request_factory_factory,
        )
    return [
        SweepPoint(
            rate_rps=result.rate_rps,
            p99_ns=result.p99_ns,
            mean_ns=result.mean_ns,
            throughput_rps=result.throughput_rps,
            violation_ratio=result.violation_ratio or 0.0,
        )
        for result in run_points(specs, label=label)
    ]


def _serial_curve(
    builder: SystemBuilder,
    rates_rps: Sequence[float],
    service: ServiceDistribution,
    n_requests: int,
    slo_ns: float,
    seed: int,
    arrival_factory: Optional[Callable[[float], ArrivalProcess]],
    connections: Optional[Callable[[], ConnectionPool]],
    request_factory_factory: Optional[Callable[[], Callable[[Request], None]]],
) -> List[SweepPoint]:
    """In-process fallback for closure-based builders (pre-runner path)."""
    make_arrivals = arrival_factory or (lambda r: PoissonArrivals(r))
    points: List[SweepPoint] = []
    for rate in rates_rps:
        result = run_once(
            builder,
            make_arrivals(rate),
            service,
            n_requests=n_requests,
            seed=seed,
            connections=connections() if connections else None,
            request_factory=(
                request_factory_factory() if request_factory_factory else None
            ),
        )
        summary = summarize_latencies(result.requests)
        points.append(
            SweepPoint(
                rate_rps=rate,
                p99_ns=summary.p99 if summary.count else float("inf"),
                mean_ns=summary.mean,
                throughput_rps=result.throughput_rps,
                violation_ratio=result.violation_ratio(slo_ns),
            )
        )
    return points


def throughput_at_slo(points: Sequence[SweepPoint], slo_ns: float) -> float:
    """Largest swept rate whose p99 met the SLO (0.0 if none did)."""
    best = 0.0
    for point in points:
        if point.p99_ns <= slo_ns and point.rate_rps > best:
            best = point.rate_rps
    return best


def scaled(n: int, scale: float, minimum: int = 2_000) -> int:
    """Scale a request count, clamped to a useful minimum."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(minimum, int(n * scale))


def real_world_arrivals(rate_rps: float) -> MMPPArrivals:
    """The canonical 'real-world traffic' substitute (see DESIGN.md):
    a two-state MMPP with batch trains.

    Burst intensity is moderate (1.6x for a fifth of the time): the
    cloud traces the paper's regression model captures are bursty and
    temporally correlated, but not in sustained whole-machine overload
    -- which no scheduler could absorb and which would drown the
    imbalance signal these experiments study."""
    return MMPPArrivals(
        rate_rps,
        burst_factor=1.6,
        calm_fraction=0.8,
        mean_dwell_ns=20_000.0,
        batch_mean=3.0,
    )


def gentle_bursts(rate_rps: float) -> MMPPArrivals:
    """Mildly bursty traffic that never overloads the whole machine.

    The migration-parameter studies (Figs. 11-12) examine *per-group*
    imbalance, which migration can fix; global transient overload,
    which no scheduler can fix, would drown that signal.  Bursts here
    stay within aggregate capacity at the studied loads while batch
    trains and connection skew still unbalance individual groups.
    """
    return MMPPArrivals(
        rate_rps,
        burst_factor=1.5,
        calm_fraction=0.8,
        mean_dwell_ns=20_000.0,
        batch_mean=3.0,
    )
