"""Fig. 1 -- On-CPU latency for different RPC stacks, split into stack
*processing* time and *scheduling* time (300 B RPC on a server).

Reproduction: for each stack we pair its published processing cost with
the scheduling machinery it historically runs on, simulate a 16-core
server at moderate load, and attribute measured latency minus processing
(minus NIC delivery) to scheduling:

* **TCP/IP** -- kernel network stack (~15 us processing) over a
  kernel-based centralized scheduler with ~5 us scheduling granularity.
* **eRPC** -- optimized user-space stack (~850 ns) over software
  work stealing (ZygOS-style, 200-400 ns steals).
* **nanoRPC** -- hardware-terminated stack (~40 ns) over a hardware
  JBSQ scheduler.

The figure's message -- processing has shrunk to the point where
scheduling dominates -- re-emerges from the measured split.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, scaled
from repro.hw.nic import PcieDelivery
from repro.runner import PointSpec, ref, run_points
from repro.stack import erpc_stack, nanorpc_stack, tcpip_stack
from repro.schedulers.centralized import ShinjukuSystem
from repro.schedulers.jbsq import nebula
from repro.schedulers.work_stealing import ZygosSystem
from repro.workload.service import Fixed


def _tcpip_builder(sim, streams):
    return ShinjukuSystem(
        sim,
        streams,
        16,
        delivery=PcieDelivery(),
        dispatch_ns=1_500.0,  # interrupt + kernel wakeup per request
        quantum_ns=1_000_000.0,
        switch_overhead_ns=1_000.0,
    )


def _erpc_builder(sim, streams):
    return ZygosSystem(sim, streams, 16, delivery=PcieDelivery())


def _nanorpc_builder(sim, streams):
    return nebula(sim, streams, 16)


#: (stack profile, core load, system builder).  Processing costs come
#: from the composable stack models of :mod:`repro.stack`, evaluated at
#: the figure's 300 B request / 64 B response point.  Kernel stacks run
#: at low utilization (0.3) to bound latency.
_STACKS = [
    (tcpip_stack(), 0.3, _tcpip_builder),
    (erpc_stack(), 0.5, _erpc_builder),
    (nanorpc_stack(), 0.5, _nanorpc_builder),
]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 1 (processing vs scheduling split)."""
    n_requests = scaled(30_000, scale)
    specs = []
    for profile, load, builder in _STACKS:
        processing_ns = profile.processing_ns()
        specs.append(
            PointSpec(
                builder=ref(builder),
                service=Fixed(processing_ns),
                rate_rps=load * 16 / processing_ns * 1e9,
                n_requests=n_requests,
                seed=seed,
                tag=profile.name,
            )
        )
    results = run_points(specs, label="fig01")
    rows = []
    for (profile, load, _builder), result in zip(_STACKS, results):
        name = profile.name
        processing_ns = profile.processing_ns()
        mean_latency = result.latency.mean
        scheduling_ns = max(0.0, mean_latency - processing_ns)
        rows.append(
            [
                name,
                processing_ns / 1000.0,
                scheduling_ns / 1000.0,
                mean_latency / 1000.0,
                scheduling_ns / mean_latency if mean_latency else 0.0,
            ]
        )
    return ExperimentResult(
        exp_id="fig01",
        title="On-CPU latency split: processing vs scheduling (16 cores, 50% load)",
        headers=[
            "stack",
            "processing_us",
            "scheduling_us",
            "mean_latency_us",
            "scheduling_share",
        ],
        rows=rows,
        notes=(
            "Scheduling time = measured mean latency minus stack processing\n"
            "time (NIC delivery included in the scheduling share, as the\n"
            "paper's on-CPU measurement window does). Expect the scheduling\n"
            "share to grow monotonically from tcpip to nanorpc."
        ),
    )
