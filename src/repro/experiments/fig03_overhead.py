"""Fig. 3 -- Why RPC scheduling matters now: p99 latency vs offered load
for per-request scheduling overheads of 5-360 ns on a 64-core system.

The paper's motivational study: with sub-microsecond RPCs, even tens of
nanoseconds of per-request scheduling overhead cost a large fraction of
sustainable load at a fixed tail-latency target (5 us p99).  45 ns is
one memory access; 360 ns is one software work-steal [54].

Substrate: ideal c-FCFS (the paper combines all layers' overheads into
one number), fixed 200 ns service so the sub-1 us regime is exercised,
overhead charged as per-request startup on the assigned core.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, scaled
from repro.runner import PointSpec, ref, run_points
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.service import Fixed

N_CORES = 64
SERVICE_NS = 200.0
SLO_P99_NS = 5_000.0
OVERHEADS_NS = [5.0, 45.0, 90.0, 135.0, 180.0, 360.0]
LOADS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]


def _builder(sim, streams, overhead_ns: float = 0.0):
    return ideal_cfcfs(sim, streams, N_CORES, startup_overhead_ns=overhead_ns)


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 3 (p99 vs load across scheduling overheads)."""
    n_requests = scaled(30_000, scale)
    base_capacity_rps = N_CORES / SERVICE_NS * 1e9
    grid = [(overhead, load) for overhead in OVERHEADS_NS for load in LOADS]
    specs = [
        PointSpec(
            builder=ref(_builder, overhead_ns=overhead),
            service=Fixed(SERVICE_NS),
            rate_rps=load * base_capacity_rps,
            n_requests=n_requests,
            seed=seed,
            slo_ns=SLO_P99_NS,
            tag=f"overhead={overhead:.0f}ns",
        )
        for overhead, load in grid
    ]
    results = run_points(specs, label="fig03")
    rows: List[List[object]] = []
    tput_at_slo = {}
    for (overhead, load), result in zip(grid, results):
        p99 = result.latency.p99
        rows.append([overhead, load, p99 / 1000.0])
        best = tput_at_slo.setdefault(overhead, 0.0)
        if p99 <= SLO_P99_NS and load > best:
            tput_at_slo[overhead] = load
    ratio = (
        tput_at_slo[OVERHEADS_NS[0]] / tput_at_slo[OVERHEADS_NS[-1]]
        if tput_at_slo[OVERHEADS_NS[-1]] > 0
        else float("inf")
    )
    notes_lines = ["Sustainable load at p99 <= 5us, by scheduling overhead:"]
    for overhead in OVERHEADS_NS:
        notes_lines.append(f"  {overhead:6.0f} ns -> load {tput_at_slo[overhead]:.2f}")
    notes_lines.append(
        f"Throughput gain of 5ns vs 360ns overhead: {ratio:.2f}x "
        "(paper reports ~3x)."
    )
    return ExperimentResult(
        exp_id="fig03",
        title="p99 vs offered load for scheduling overheads 5-360ns (64 cores)",
        headers=["overhead_ns", "offered_load", "p99_us"],
        rows=rows,
        notes="\n".join(notes_lines),
        series={"throughput_at_slo": tput_at_slo},
    )
