"""Fig. 7 -- SLO-violation prediction analysis on a 64-core c-FCFS
system (the study motivating the Eq. 1-2 threshold model).

(a-c) For Fixed / Uniform / Bimodal service (L=10, Poisson arrivals),
bin requests by the queue length observed at arrival and report the
fraction of each bin that violated the SLO.  The paper's observations
re-emerge:

1. violation ratio rises sharply past a distribution-specific length;
2. the first violations occur at moderate occupancy;
3. at T = k*L + 1 essentially every arrival violates.

(d) Sweep load, measure the first-violation queue length T_lower per
load, and fit the Eq. 2 linear transformation of the Erlang-C E[Nq].

Calibration notes (documented deviations, see EXPERIMENTS.md):

* Panels (a)-(c) run at a slight overload (1.005) rather than 0.99.
  With L=10 on 64 deterministic-ish servers, SLO-scale waits require
  ~600-deep queues -- excursions a finite stationary run at 0.99 never
  reaches.  A gentle ramp sweeps the whole queue-length axis and yields
  the same sharp-rise curves as the paper's panels.
* Panel (d) calibrates against a tighter SLO (L=3) so violations exist
  across the 0.95-0.995 load band the paper sweeps; the calibration
  *procedure* (measure T_lower per load, least-squares Eq. 2) is
  exactly the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.prediction import (
    calibrate_threshold_model,
    expected_queue_length,
    first_violation_threshold,
    upper_bound_threshold,
)
from repro.experiments.common import ExperimentResult, scaled
from repro.runner import PointSpec, ref, run_points
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.service import Bimodal, Fixed, ServiceDistribution, Uniform

N_CORES = 64
L = 10.0  # SLO = L x mean service time (panels a-c)
L_CAL = 2.0  # tighter SLO for the panel-(d) load sweep
BIN_WIDTH = 50
PANEL_LOAD = 1.01
MAX_BIN = 1_000  # table cut-off; deeper bins are all-violating anyway

_DISTRIBUTIONS: List[Tuple[str, ServiceDistribution]] = [
    ("fixed", Fixed(1_000.0)),
    ("uniform", Uniform(500.0, 1_500.0)),
    ("bimodal", Bimodal(500.0, 5_500.0, 0.1)),
]

CALIBRATION_LOADS = [0.95, 0.97, 0.985, 0.995]


def _cfcfs_builder(sim, streams):
    return ideal_cfcfs(sim, streams, N_CORES)


def _qlen_metrics(result, slo_ns: float) -> dict:
    """Worker-side distillation: (queue length at arrival, violated?)
    pairs, so the full request log never crosses the process boundary."""
    qlens: List[int] = []
    violated: List[bool] = []
    for r in result.requests:
        if r.queue_len_at_arrival is None:
            continue
        qlens.append(r.queue_len_at_arrival)
        violated.append(bool(r.latency > slo_ns))
    return {"qlens": qlens, "violated": violated}


def _violation_spec(
    service: ServiceDistribution,
    load: float,
    n_requests: int,
    seed: int,
    l_multiplier: float = L,
    tag: str = "",
) -> PointSpec:
    """One run yielding (queue length at arrival, violated?) pairs."""
    slo_ns = l_multiplier * service.mean
    return PointSpec(
        builder=ref(_cfcfs_builder),
        service=service,
        rate_rps=load * N_CORES / service.mean * 1e9,
        n_requests=n_requests,
        seed=seed,
        warmup_fraction=0.05,
        slo_ns=slo_ns,
        metrics=ref(_qlen_metrics, slo_ns=slo_ns),
        tag=tag,
    )


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 7 (SLO-violation prediction analysis)."""
    n_requests = scaled(250_000, scale, minimum=50_000)
    rows: List[List[object]] = []
    t_lower: Dict[str, float] = {}

    # One batch: panels (a)-(c) plus the panel-(d) calibration loads.
    specs = [
        _violation_spec(service, PANEL_LOAD, n_requests, seed, tag=name)
        for name, service in _DISTRIBUTIONS
    ]
    cal_service = _DISTRIBUTIONS[0][1]
    specs += [
        _violation_spec(
            cal_service, load, n_requests, seed + int(load * 1000),
            l_multiplier=L_CAL, tag=f"cal@{load}",
        )
        for load in CALIBRATION_LOADS
    ]
    results = run_points(specs, label="fig07")
    panel_results = results[: len(_DISTRIBUTIONS)]
    cal_results = results[len(_DISTRIBUTIONS):]

    # ---- panels (a)-(c): violation ratio vs queue length
    for (name, service), point in zip(_DISTRIBUTIONS, panel_results):
        qlens, violated = point.metrics["qlens"], point.metrics["violated"]
        t, _count = first_violation_threshold(qlens, violated)
        t_lower[name] = t
        arr_q = np.asarray(qlens)
        arr_v = np.asarray(violated)
        max_q = min(int(arr_q.max()) if len(arr_q) else 0, MAX_BIN)
        for lo in range(0, max_q + 1, BIN_WIDTH):
            mask = (arr_q >= lo) & (arr_q < lo + BIN_WIDTH)
            total = int(mask.sum())
            if total == 0:
                continue
            ratio = float(arr_v[mask].mean())
            rows.append([name, PANEL_LOAD, lo, lo + BIN_WIDTH, total, ratio])

    # ---- panel (d): T_lower vs load, Eq. 2 calibration (Fixed dist.)
    cal_loads: List[float] = []
    cal_ts: List[float] = []
    for load, point in zip(CALIBRATION_LOADS, cal_results):
        qlens, violated = point.metrics["qlens"], point.metrics["violated"]
        t, _count = first_violation_threshold(qlens, violated)
        if np.isfinite(t):
            cal_loads.append(load * N_CORES)
            cal_ts.append(t)
    model_line = "panel (d): not enough violations to calibrate"
    if len(cal_ts) >= 2:
        model = calibrate_threshold_model(cal_loads, cal_ts, N_CORES, name="fig7d")
        fit_rows = []
        for a_erl, t_meas in zip(cal_loads, cal_ts):
            fit_rows.append(
                f"  load={a_erl / N_CORES:.3f}"
                f"  E[Nq]={expected_queue_length(N_CORES, a_erl):8.1f}"
                f"  T_measured={t_meas:8.0f}"
                f"  T_model={model.threshold(N_CORES, a_erl):8.1f}"
            )
        model_line = (
            f"panel (d) Eq.2 fit (Fixed, L={L_CAL:.0f}): a={model.a:.3f} "
            f"b={model.b:.1f} c={model.c:.3f} d={model.d:.1f}\n"
            + "\n".join(fit_rows)
        )

    notes = [
        f"T_upper = k*L+1 = {upper_bound_threshold(N_CORES, L):.0f}",
        f"T_lower (first-violation queue length) at load {PANEL_LOAD}:",
    ]
    for name, t in t_lower.items():
        notes.append(f"  {name:8s}: {t:.0f}")
    notes.append(model_line)
    return ExperimentResult(
        exp_id="fig07",
        title="SLO-violation ratio vs queue length (64-core c-FCFS, L=10)",
        headers=["dist", "load", "qlen_lo", "qlen_hi", "requests",
                 "violation_ratio"],
        rows=rows,
        notes="\n".join(notes),
        series={"t_lower": t_lower},
    )
