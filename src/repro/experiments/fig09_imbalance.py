"""Fig. 9 -- temporal load imbalance across 4 network-receive queues
(256-core d-FCFS system; each queue fronts a 64-core c-FCFS group).

For the three load-oblivious steering policies (connection hash, random,
round-robin), run bursty traffic near saturation with *migrations
disabled* and snapshot the four NetRX queue lengths at the moment the
first 10 SLO violations have occurred.  The paper's observation: every
oblivious policy shows a noticeable spread -- exactly the Hill /
Pairing / Valley shapes the runtime classifies.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import ExperimentResult, scaled
from repro.runner import TaskSpec, ref, run_points
from repro.workload.arrivals import MMPPArrivals
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timer import PeriodicTimer
from repro.workload.connections import ConnectionPool
from repro.workload.generator import LoadGenerator
from repro.workload.service import Exponential

N_GROUPS = 4
GROUP_SIZE = 64
SERVICE_NS = 1_000.0
LOAD = 0.95
L = 10.0
SAMPLE_EVERY_NS = 500.0
POLICIES = ["connection", "random", "round_robin"]


def _run_policy(
    policy: str, n_requests: int, seed: int
) -> Tuple[List[int], float]:
    """Return (queue snapshot at 10th violation, snapshot time ns)."""
    sim = Simulator()
    streams = RandomStreams(seed)
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        runtime_enabled=False,  # pure d-FCFS across queues: no migrations
        steering_policy=policy,
        variant="int",
    )
    system = AltocumulusSystem(sim, streams, config)
    service = Exponential(SERVICE_NS)
    workers = config.n_workers
    rate = LOAD * workers / SERVICE_NS * 1e9
    # Few hot connections make the connection policy visibly skewed.
    connections = ConnectionPool.skewed(32, zipf_s=1.1)
    # Gentler bursts than the default real-world profile: at 1 us mean
    # service a 3x burst floods thousands of requests deep, whereas the
    # figure studies the moderate-imbalance regime.
    arrivals = MMPPArrivals(
        rate,
        burst_factor=2.0,
        calm_fraction=0.75,
        mean_dwell_ns=10_000.0,
        batch_mean=3.0,
    )
    generator = LoadGenerator(
        sim,
        streams,
        arrivals,
        service,
        sink=system.offer,
        n_requests=n_requests,
        connections=connections,
    )
    samples: List[Tuple[float, List[int]]] = []
    sampler = PeriodicTimer(
        sim,
        SAMPLE_EVERY_NS,
        lambda: samples.append((sim.now, system.netrx_lengths())),
    )
    system.expect(n_requests)
    generator.start()
    sim.run(until=10**15)
    sampler.stop()
    system.shutdown()

    slo_ns = L * SERVICE_NS
    violation_times = sorted(
        r.arrival + slo_ns
        for r in generator.requests
        if r.completed and r.latency > slo_ns
    )
    if len(violation_times) < 10 or not samples:
        return system.netrx_lengths(), sim.now
    t10 = violation_times[9]
    snapshot = samples[0][1]
    when = samples[0][0]
    for t, lengths in samples:
        if t > t10:
            break
        snapshot, when = lengths, t
    return snapshot, when


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 9 (NetRX imbalance snapshots)."""
    n_requests = scaled(150_000, scale)
    rows: List[List[object]] = []
    specs = [
        TaskSpec(
            fn=ref(_run_policy, policy=policy, n_requests=n_requests,
                   seed=seed),
            tag=policy,
        )
        for policy in POLICIES
    ]
    for policy, result in zip(POLICIES, run_points(specs, label="fig09")):
        snapshot, when = result.value
        spread = max(snapshot) - min(snapshot)
        rows.append([policy] + list(snapshot) + [spread, when / 1000.0])
    return ExperimentResult(
        exp_id="fig09",
        title="NetRX queue lengths at the 10th SLO violation (4x64 cores)",
        headers=[
            "steering",
            "rxq0",
            "rxq1",
            "rxq2",
            "rxq3",
            "spread",
            "snapshot_us",
        ],
        rows=rows,
        notes=(
            "Load-oblivious steering leaves a visible spread between the\n"
            "longest and shortest queue under bursty skewed traffic --\n"
            "the imbalance patterns (Hill/Pairing/Valley) Altocumulus\n"
            "classifies and corrects."
        ),
    )
