"""Fig. 10 -- tail latency vs throughput for seven scheduling systems
(16 cores, high-dispersion bimodal service, SLO: p99 < 300 us).

Systems: IX, ZygOS, Shinjuku, RPCValet, Nebula, nanoPU, AC_rss.

Workload: the Shinjuku bimodal -- 99.5% x 0.5 us, 0.5% x 500 us (mean
3 us; 16-core capacity ~5.33 MRPS).  With a 300 us SLO *below* the long
service time, the figure discriminates exactly as the paper argues:
d-FCFS systems lose short requests behind long ones, non-preemptive
JBSQ commits shorts into blocked per-core queues during long-request
clusters, preemption (Shinjuku, nanoPU) timeshares the longs away, and
Altocumulus holds work at the managers and migrates it around clogged
groups.  (The paper's x-axis extends to 20 MRPS, which is unreachable
at this mix's mean service time on 16 cores; we sweep to capacity.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    SweepPoint,
    scaled,
    throughput_at_slo,
)
from repro.hw.nic import PcieDelivery
from repro.runner import SweepSpec, ref, run_points
from repro.schedulers.centralized import ShinjukuSystem
from repro.schedulers.jbsq import nanopu, nebula, rpcvalet
from repro.schedulers.rss import IxSystem
from repro.schedulers.work_stealing import ZygosSystem
from repro.workload.service import Bimodal

N_CORES = 16
SLO_NS = 300_000.0
SERVICE = Bimodal(short_ns=500.0, long_ns=500_000.0, long_fraction=0.005)
#: Offered rates in MRPS (ideal capacity ~5.35 MRPS at 2.99 us mean).
RATES_MRPS = [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]


# IX and ZygOS run a traditional network stack on the worker cores
# themselves (Sec. VII-A); ~2 us per small message of on-core stack
# work rides on every request (Fig. 1's processing gap).
def _ix_builder(sim, streams):
    return IxSystem(sim, streams, N_CORES, delivery=PcieDelivery(),
                    per_request_overhead_ns=2_000.0)


def _zygos_builder(sim, streams):
    return ZygosSystem(sim, streams, N_CORES, delivery=PcieDelivery(),
                       per_request_overhead_ns=2_000.0)


def _shinjuku_builder(sim, streams):
    return ShinjukuSystem(sim, streams, N_CORES, delivery=PcieDelivery())


def _rpcvalet_builder(sim, streams):
    return rpcvalet(sim, streams, N_CORES)


def _nebula_builder(sim, streams):
    return nebula(sim, streams, N_CORES)


def _nanopu_builder(sim, streams):
    return nanopu(sim, streams, N_CORES)


def _ac_rss_builder(sim, streams):
    config = AltocumulusConfig(
        n_groups=2,
        group_size=8,
        variant="rss",
        interface="isa",
        period_ns=200.0,
        bulk=8,
        concurrency=1,
        slo_multiplier=SLO_NS / SERVICE.mean,
        steering_policy="round_robin",
    )
    return AltocumulusSystem(sim, streams, config)


_SYSTEMS = {
    "ix": _ix_builder,
    "zygos": _zygos_builder,
    "shinjuku": _shinjuku_builder,
    "rpcvalet": _rpcvalet_builder,
    "nebula": _nebula_builder,
    "nanopu": _nanopu_builder,
    "ac_rss": _ac_rss_builder,
}


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 10 (seven-system latency-throughput curves).

    All 7 systems x 11 rates dispatch as one 77-point batch, so a
    parallel run keeps every worker busy across system boundaries.
    """
    from repro.analysis.ascii_plot import line_chart

    n_requests = scaled(150_000, scale, minimum=5_000)
    specs = []
    for name, builder in _SYSTEMS.items():
        specs.extend(
            SweepSpec(
                builder=ref(builder),
                service=SERVICE,
                rates_rps=[r * 1e6 for r in RATES_MRPS],
                n_requests=n_requests,
                seed=seed,
                slo_ns=SLO_NS,
                tag=name,
            ).points()
        )
    results = run_points(specs, label="fig10")

    rows: List[List[object]] = []
    at_slo: Dict[str, float] = {}
    curves: Dict[str, list] = {}
    for name in _SYSTEMS:
        points = [
            SweepPoint(
                rate_rps=r.rate_rps,
                p99_ns=r.p99_ns,
                mean_ns=r.mean_ns,
                throughput_rps=r.throughput_rps,
                violation_ratio=r.violation_ratio or 0.0,
            )
            for r in results
            if r.tag == name
        ]
        at_slo[name] = throughput_at_slo(points, SLO_NS) / 1e6
        curves[name] = [
            (p.rate_rps / 1e6, max(p.p99_ns / 1000.0, 0.1)) for p in points
        ]
        for p in points:
            rows.append(
                [name, p.rate_rps / 1e6, p.p99_ns / 1000.0, p.violation_ratio]
            )
    notes = [
        line_chart(curves, title="p99 latency vs offered load",
                   x_label="offered MRPS", y_label="p99 us", log_y=True),
        "",
        "throughput@SLO (p99 < 300us), MRPS:",
    ]
    for name, mrps in sorted(at_slo.items(), key=lambda kv: kv[1]):
        notes.append(f"  {name:10s}: {mrps:6.2f}")
    if at_slo.get("zygos", 0) > 0:
        notes.append(
            f"AC_rss / ZygOS throughput ratio: "
            f"{at_slo['ac_rss'] / at_slo['zygos']:.1f}x (paper: 24.6x)"
        )
    if at_slo.get("shinjuku", 0) > 0 and at_slo.get("nebula", 0) > 0:
        notes.append(
            f"Nebula / Shinjuku ratio: "
            f"{at_slo['nebula'] / at_slo['shinjuku']:.1f}x (paper: 3.9-4.4x)"
        )
    return ExperimentResult(
        exp_id="fig10",
        title="p99 latency vs throughput, 16 cores, bimodal service",
        headers=["system", "offered_mrps", "p99_us", "violation_ratio"],
        rows=rows,
        notes="\n".join(notes),
        series={"throughput_at_slo_mrps": at_slo},
    )
