"""Fig. 11 -- migration parameter exploration on a 256-core system
(16 manager groups x 16 cores, ~1.6 TbE-class offered load).

(a) Sweep Bulk (8-40 descriptors/round) at Period = 200 ns.
(b) Sweep Period (10-1000 ns) at Bulk = 16.

Reported per point: SLO violations among measured requests (bars in the
paper) and p99 latency (line) -- the two should track each other, with
violations vanishing around Bulk=16 and staying flat for periods up to
~400 ns before lazy migration (1000 ns) loses opportunities.
"""

from __future__ import annotations

from typing import List

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import ExperimentResult, gentle_bursts, scaled
from repro.runner import PointSpec, ref, run_points
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

N_GROUPS = 16
GROUP_SIZE = 16
SERVICE = Bimodal(short_ns=500.0, long_ns=5_000.0, long_fraction=0.029)
LOAD = 0.75
L = 10.0
BULKS = [8, 16, 24, 32, 40]
PERIODS_NS = [10.0, 40.0, 100.0, 200.0, 400.0, 1000.0]


def _ac_builder(sim, streams, bulk: int, period_ns: float,
                runtime_enabled: bool = True):
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        variant="int",
        period_ns=period_ns,
        bulk=bulk,
        concurrency=8,
        slo_multiplier=L,
        offered_load=LOAD,
        runtime_enabled=runtime_enabled,
    )
    return AltocumulusSystem(sim, streams, config)


def _violation_count(result, slo_ns: float) -> dict:
    """Worker-side metrics hook: absolute SLO-violation count (the
    paper's bars), computed before the request log is discarded."""
    return {
        "violations": sum(1 for r in result.requests if r.latency > slo_ns)
    }


def _config_spec(
    n_requests: int,
    seed: int,
    bulk: int,
    period_ns: float,
    runtime_enabled: bool = True,
    tag: str = "",
) -> PointSpec:
    workers = N_GROUPS * (GROUP_SIZE - 1)
    rate = LOAD * workers / SERVICE.mean * 1e9
    slo_ns = L * SERVICE.mean
    return PointSpec(
        builder=ref(_ac_builder, bulk=bulk, period_ns=period_ns,
                    runtime_enabled=runtime_enabled),
        service=SERVICE,
        rate_rps=rate,
        n_requests=n_requests,
        seed=seed,
        arrivals=ref(gentle_bursts),
        connections=ref(ConnectionPool.skewed, n_connections=256, zipf_s=0.5),
        slo_ns=slo_ns,
        metrics=ref(_violation_count, slo_ns=slo_ns),
        tag=tag,
    )


def _row(label: str, knob: object, point) -> List[object]:
    return [
        label,
        knob,
        point.metrics["violations"],
        point.latency.p99 / 1000.0,
        point.instruments.get("sched.descriptors_received", 0),
    ]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 11 (Bulk/Period sensitivity)."""
    n_requests = scaled(120_000, scale)
    rows: List[List[object]] = []
    labelled = [("no_migration", "-",
                 _config_spec(n_requests, seed, bulk=16, period_ns=200.0,
                              runtime_enabled=False, tag="no_migration"))]
    labelled += [
        ("bulk_sweep", bulk,
         _config_spec(n_requests, seed, bulk=bulk, period_ns=200.0,
                      tag=f"bulk={bulk}"))
        for bulk in BULKS
    ]
    labelled += [
        ("period_sweep", period,
         _config_spec(n_requests, seed, bulk=16, period_ns=period,
                      tag=f"period={period:.0f}ns"))
        for period in PERIODS_NS
    ]
    results = run_points([spec for _, _, spec in labelled], label="fig11")
    for (label, knob, _), point in zip(labelled, results):
        rows.append(_row(label, knob, point))
    return ExperimentResult(
        exp_id="fig11",
        title="Migration Bulk/Period sensitivity (256 cores, 16x16 groups)",
        headers=["sweep", "value", "slo_violations", "p99_us", "migrated_desc"],
        rows=rows,
        notes=(
            f"SLO = {L:.0f} x mean service = {L * SERVICE.mean / 1000:.2f} us; "
            f"offered load {LOAD:.2f} of worker capacity under bursty,\n"
            "connection-skewed traffic. Expect violations to drop sharply\n"
            "vs the no-migration baseline, bottom out around Bulk=16, and\n"
            "stay insensitive to Period until ~1000 ns."
        ),
    )
