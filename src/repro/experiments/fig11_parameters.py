"""Fig. 11 -- migration parameter exploration on a 256-core system
(16 manager groups x 16 cores, ~1.6 TbE-class offered load).

(a) Sweep Bulk (8-40 descriptors/round) at Period = 200 ns.
(b) Sweep Period (10-1000 ns) at Bulk = 16.

Reported per point: SLO violations among measured requests (bars in the
paper) and p99 latency (line) -- the two should track each other, with
violations vanishing around Bulk=16 and staying flat for periods up to
~400 ns before lazy migration (1000 ns) loses opportunities.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    gentle_bursts,
    run_once,
    scaled,
)
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

N_GROUPS = 16
GROUP_SIZE = 16
SERVICE = Bimodal(short_ns=500.0, long_ns=5_000.0, long_fraction=0.029)
LOAD = 0.75
L = 10.0
BULKS = [8, 16, 24, 32, 40]
PERIODS_NS = [10.0, 40.0, 100.0, 200.0, 400.0, 1000.0]


def _run_config(
    n_requests: int,
    seed: int,
    bulk: int,
    period_ns: float,
    runtime_enabled: bool = True,
):
    def builder(sim, streams):
        config = AltocumulusConfig(
            n_groups=N_GROUPS,
            group_size=GROUP_SIZE,
            variant="int",
            period_ns=period_ns,
            bulk=bulk,
            concurrency=8,
            slo_multiplier=L,
            offered_load=LOAD,
            runtime_enabled=runtime_enabled,
        )
        return AltocumulusSystem(sim, streams, config)

    workers = N_GROUPS * (GROUP_SIZE - 1)
    rate = LOAD * workers / SERVICE.mean * 1e9
    return run_once(
        builder,
        gentle_bursts(rate),
        SERVICE,
        n_requests=n_requests,
        seed=seed,
        connections=ConnectionPool.skewed(256, zipf_s=0.5),
    )


def _row(label: str, knob: object, result) -> List[object]:
    slo_ns = L * SERVICE.mean
    violations = sum(1 for r in result.requests if r.latency > slo_ns)
    return [
        label,
        knob,
        violations,
        result.latency.p99 / 1000.0,
        result.extra.get("descriptors_received", 0.0),
    ]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 11 (Bulk/Period sensitivity)."""
    n_requests = scaled(120_000, scale)
    rows: List[List[object]] = []
    baseline = _run_config(n_requests, seed, bulk=16, period_ns=200.0,
                           runtime_enabled=False)
    rows.append(_row("no_migration", "-", baseline))
    for bulk in BULKS:
        result = _run_config(n_requests, seed, bulk=bulk, period_ns=200.0)
        rows.append(_row("bulk_sweep", bulk, result))
    for period in PERIODS_NS:
        result = _run_config(n_requests, seed, bulk=16, period_ns=period)
        rows.append(_row("period_sweep", period, result))
    return ExperimentResult(
        exp_id="fig11",
        title="Migration Bulk/Period sensitivity (256 cores, 16x16 groups)",
        headers=["sweep", "value", "slo_violations", "p99_us", "migrated_desc"],
        rows=rows,
        notes=(
            f"SLO = {L:.0f} x mean service = {L * SERVICE.mean / 1000:.2f} us; "
            f"offered load {LOAD:.2f} of worker capacity under bursty,\n"
            "connection-skewed traffic. Expect violations to drop sharply\n"
            "vs the no-migration baseline, bottom out around Bulk=16, and\n"
            "stay insensitive to Period until ~1000 ns."
        ),
    )
