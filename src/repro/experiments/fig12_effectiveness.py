"""Fig. 12 -- group-size exploration and migration-effectiveness
breakdown.

(a) Group sizes on a 64-core system for AC_int and AC_rss: small groups
waste cores on managers; one giant group recreates the centralized
bottleneck (the manager's ~28 MRPS software dispatch ceiling for
AC_rss, remote-access variance for AC_int).  The paper lands on 16.

(b, c) Replay the *same* recorded workload through AC at several
migration periods and classify every migrated request via its stamped
counterfactual into Eff / InEff-without-harm / InEff-without-benefit /
False (harmful) -- Sec. VIII-D's four-way split -- plus the false-
migration count per period.
"""

from __future__ import annotations

from typing import List

from repro.analysis.effectiveness import MigrationClass, classify_migrations
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    latency_throughput_curve,
    gentle_bursts,
    scaled,
    throughput_at_slo,
)
from repro.runner import PointSpec, ref, run_points
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

SERVICE = Bimodal(short_ns=500.0, long_ns=5_000.0, long_fraction=0.029)
L = 10.0
SLO_NS = L * SERVICE.mean

#: (groups, group size) splits of a 64-core system.
GROUP_SPLITS = [(8, 8), (4, 16), (2, 32), (1, 64)]
PERIODS_NS = [40.0, 200.0, 400.0, 1000.0]

# Effectiveness study runs at this 256-core configuration (paper Sec. VIII-C).
EFF_GROUPS, EFF_GROUP_SIZE, EFF_LOAD = 16, 16, 0.85


def _split_builder(sim, streams, n_groups: int, group_size: int,
                   variant: str):
    config = AltocumulusConfig(
        n_groups=n_groups,
        group_size=group_size,
        variant=variant,
        period_ns=200.0,
        bulk=16,
        concurrency=min(8, max(1, n_groups - 1)),
        slo_multiplier=L,
        steering_policy="round_robin",
    )
    return AltocumulusSystem(sim, streams, config)


def _group_size_rows(n_requests: int, seed: int) -> List[List[object]]:
    rows: List[List[object]] = []
    for variant in ("int", "rss"):
        for n_groups, group_size in GROUP_SPLITS:
            builder = ref(_split_builder, n_groups=n_groups,
                          group_size=group_size, variant=variant)
            workers = 64 - n_groups
            capacity = workers / SERVICE.mean * 1e9
            rates = [f * capacity for f in (0.5, 0.7, 0.8, 0.9, 0.95)]
            points = latency_throughput_curve(
                builder, rates, SERVICE, n_requests=n_requests, slo_ns=SLO_NS,
                seed=seed, label=f"fig12:{variant}:{n_groups}x{group_size}",
            )
            best = throughput_at_slo(points, SLO_NS)
            rows.append(
                [
                    "group_size",
                    f"ac_{variant}",
                    f"{n_groups}x{group_size}",
                    best / 1e6,
                    min(p.p99_ns for p in points) / 1000.0,
                ]
            )
    return rows


def _eff_builder(sim, streams, period_ns: float):
    config = AltocumulusConfig(
        n_groups=EFF_GROUPS,
        group_size=EFF_GROUP_SIZE,
        variant="int",
        period_ns=period_ns,
        bulk=16,
        concurrency=8,
        slo_multiplier=L,
        offered_load=EFF_LOAD,
    )
    return AltocumulusSystem(sim, streams, config)


def _effectiveness_metrics(result, slo_ns: float) -> dict:
    """Worker-side distillation: the Sec. VIII-D four-way migration
    breakdown, computed from the stamped counterfactuals before the
    request log is discarded."""
    breakdown = classify_migrations(result.requests, slo_ns)
    return {
        "total": breakdown.total,
        "eff": breakdown.counts[MigrationClass.EFF],
        "ineff_no_harm": breakdown.counts[MigrationClass.INEFF_NO_HARM],
        "ineff_no_benefit": breakdown.counts[MigrationClass.INEFF_NO_BENEFIT],
        "false": breakdown.counts[MigrationClass.FALSE],
    }


def _effectiveness_rows(n_requests: int, seed: int) -> List[List[object]]:
    rows: List[List[object]] = []
    workers = EFF_GROUPS * (EFF_GROUP_SIZE - 1)
    rate = EFF_LOAD * workers / SERVICE.mean * 1e9
    # Strongly skewed steering: the replayed stream is dominated by
    # at-risk requests (the paper replays the baseline's 400K
    # SLO-violating RPCs), so the Eff/InEff split is meaningful.
    # Identical seed per period => identical replayed workload.
    specs = [
        PointSpec(
            builder=ref(_eff_builder, period_ns=period),
            service=SERVICE,
            rate_rps=rate,
            n_requests=n_requests,
            seed=seed,
            arrivals=ref(gentle_bursts),
            connections=ref(ConnectionPool.skewed, n_connections=128,
                            zipf_s=1.0),
            slo_ns=SLO_NS,
            metrics=ref(_effectiveness_metrics, slo_ns=SLO_NS),
            tag=f"period={period:.0f}ns",
        )
        for period in PERIODS_NS
    ]
    for period, point in zip(PERIODS_NS, run_points(specs, label="fig12bc")):
        m = point.metrics
        rows.append(
            [
                "effectiveness",
                f"period={period:.0f}ns",
                m["total"],
                m["eff"],
                m["ineff_no_harm"],
                m["ineff_no_benefit"],
                m["false"],
            ]
        )
    return rows


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 12 (group sizing + migration effectiveness)."""
    n_requests_a = scaled(40_000, scale)
    n_requests_bc = scaled(120_000, scale)
    rows: List[List[object]] = []
    for row in _group_size_rows(n_requests_a, seed):
        rows.append(row + [None, None])
    rows_eff = _effectiveness_rows(n_requests_bc, seed)
    # Normalize column counts: panel (a) rows have 5 + 2 filler columns;
    # re-shape everything into a single 7-column table.
    table_rows: List[List[object]] = []
    for row in rows:
        table_rows.append(row[:7])
    for row in rows_eff:
        table_rows.append(row)
    return ExperimentResult(
        exp_id="fig12",
        title="Group-size exploration and migration effectiveness",
        headers=["panel", "config", "c1", "c2", "c3", "c4", "c5"],
        rows=table_rows,
        notes=(
            "panel 'group_size' columns: c1=split, c2=throughput@SLO (MRPS),\n"
            "  c3=best p99 (us).\n"
            "panel 'effectiveness' columns: c1=migrated, c2=Eff,\n"
            "  c3=InEff w/o harm, c4=InEff w/o benefit, c5=False.\n"
            "Expect: 16-core-ish groups win; eager (40ns) and lazy (1000ns)\n"
            "periods lose effectiveness; False counts stay tiny at 200ns."
        ),
    )
