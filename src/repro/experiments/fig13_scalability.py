"""Fig. 13 -- MICA scalability, case studies, and SLO-target sensitivity.

(a) Throughput@SLO for 32-256 cores under (1) Poisson arrivals with
    fixed 850 ns service (the eRPC stack) and (2) the real-world bursty
    pattern; systems: commodity RSS, Nebula, AC_int with suboptimal
    (synthetic-tuned) and tuned migration parameters.  SLO: p99 <
    8.5 us = 10 x 850 ns.  AC rows also report prediction accuracy.

(b) Case studies 1-2 (256 cores, real-world MICA traffic):
    RSS baseline; AC_int_rt (runtime only, software messaging);
    AC_int_rt+msg (runtime + hardware messaging); AC_rss tuned for
    synthetic vs for real-world traffic.

(c) Prediction accuracy vs SLO target (5A / 10A / 20A, A = 850 ns,
    load 0.9) for the RSS baseline (threshold model evaluated passively)
    and the tuned AC_rss / AC_int systems.

All panels batch their sweep points through :mod:`repro.runner`: the
system (and, for realistic traffic, the MICA workload wiring) is built
inside the worker from a parameterized module-level builder, and
prediction accuracy is distilled by worker-side metrics hooks so request
logs never cross the process boundary.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.slo import prediction_accuracy
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    real_world_arrivals,
    scaled,
)
from repro.hw.constants import DEFAULT_CONSTANTS
from repro.hw.nic import PcieDelivery
from repro.kvs import MicaServiceModel, MicaWorkload, build_dataset
from repro.runner import PointSpec, ref, run_points
from repro.schedulers.jbsq import nebula
from repro.schedulers.rss import RssSystem
from repro.schedulers.rss_plus_plus import RssPlusPlusSystem
from repro.workload.service import Fixed

SERVICE_NS = 850.0
SLO_NS = 10.0 * SERVICE_NS  # 8.5 us
CORE_COUNTS = [32, 64, 128, 256]
RATE_FRACTIONS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _ac_config(n_cores: int, tuned: bool, variant: str = "int",
               messaging: str = "hw") -> AltocumulusConfig:
    n_groups = max(2, n_cores // 16)
    if tuned:
        return AltocumulusConfig(
            n_groups=n_groups,
            group_size=n_cores // n_groups,
            variant=variant,
            period_ns=100.0,
            bulk=32,
            concurrency=min(8, n_groups - 1),
            slo_multiplier=10.0,
            messaging=messaging,
        )
    return AltocumulusConfig(
        n_groups=n_groups,
        group_size=n_cores // n_groups,
        variant=variant,
        period_ns=200.0,
        bulk=16,
        concurrency=min(8, n_groups - 1),
        slo_multiplier=10.0,
        messaging=messaging,
    )


def _nebula_scaled(sim, streams, n_cores: int):
    """Nebula beyond one coherence domain (64 cores): the fraction of
    requests landing outside the NIC's domain pays a QPI-class remote
    read to fetch its payload -- Table I's 'limited coherence domain
    size' bottleneck, charged as per-request startup."""
    system = nebula(sim, streams, n_cores)
    domain = 64
    if n_cores > domain:
        crossing_fraction = 1.0 - domain / n_cores
        system.startup_overhead_ns = crossing_fraction * DEFAULT_CONSTANTS.qpi_ns
    return system


def _mica_workload(n_cores: int, seed: int, zipf_s: float = 0.9) -> MicaWorkload:
    n_groups = max(2, n_cores // 16)
    dataset = build_dataset(n_partitions=n_groups, n_keys=4_000, seed=seed)
    return MicaWorkload(
        dataset,
        MicaServiceModel.erpc(),
        n_groups=n_groups,
        scan_fraction=0.0,
        zipf_s=zipf_s,  # hot keys -> hot EREW partitions -> group imbalance
        seed=seed,
    )


def _system_builder(
    sim,
    streams,
    kind: str = "rss",
    n_cores: int = 64,
    tuned: bool = True,
    variant: str = "int",
    messaging: str = "hw",
    realistic: bool = False,
    seed: int = 1,
    zipf_s: float = 0.9,
):
    """Build one Fig. 13 system; with ``realistic`` traffic the MICA
    workload is constructed here (in the worker) and returned as a
    ``(system, request_factory)`` pair for the executor to wire up."""
    if kind == "rss":
        system = RssSystem(sim, streams, n_cores, delivery=PcieDelivery())
    elif kind == "rsspp":
        # The elastic-RSS feature the paper folds into AC_rss_opt for
        # the panel-(c) case study ([7]: 20 us re-mapping granularity).
        system = RssPlusPlusSystem(
            sim, streams, n_cores, delivery=PcieDelivery(),
            rebalance_interval_ns=20_000.0,
        )
    elif kind == "nebula":
        system = _nebula_scaled(sim, streams, n_cores)
    elif kind == "ac":
        system = AltocumulusSystem(
            sim, streams,
            _ac_config(n_cores, tuned=tuned, variant=variant,
                       messaging=messaging),
        )
    else:
        raise ValueError(f"unknown system kind {kind!r}")
    if not realistic:
        return system
    workload = _mica_workload(n_cores, seed, zipf_s=zipf_s)
    if isinstance(system, AltocumulusSystem):
        system.execution_penalty = workload.execute
    else:
        system.completion_hooks.append(workload.execute)
    return system, workload.request_factory


def _accuracy_metrics(result, slo_ns: float) -> dict:
    """Prediction accuracy for AC systems (empty otherwise), computed
    next to the request log in the worker."""
    if isinstance(result.system, AltocumulusSystem):
        return {
            "accuracy": prediction_accuracy(
                result.requests, result.system.predicted_ids, slo_ns
            )
        }
    return {}


def _panel_c_metrics(result, slo_ns: float, multiplier: float) -> dict:
    """Panel (c): accuracy + flagged share.  Non-AC systems evaluate
    the naive static per-queue threshold (T = k*L+1, k=1) passively."""
    if isinstance(result.system, AltocumulusSystem):
        predicted = result.system.predicted_ids
    else:
        predicted = {
            r.req_id
            for r in result.requests
            if (r.queue_len_at_arrival or 0) > multiplier + 1
        }
    accuracy = prediction_accuracy(result.requests, predicted, slo_ns)
    flagged_share = len(predicted) / max(1, len(result.requests))
    return {"accuracy": accuracy, "flagged_share": flagged_share}


#: Panel (a) systems; values are kwargs of :func:`_system_builder`.
_PANEL_A_SYSTEMS: List[Tuple[str, Dict[str, object]]] = [
    ("rss", {"kind": "rss"}),
    ("nebula", {"kind": "nebula"}),
    ("ac_int_subopt", {"kind": "ac", "tuned": False}),
    ("ac_int_opt", {"kind": "ac", "tuned": True}),
]

#: Panel (b) case-study systems (256 cores, real-world MICA traffic).
_PANEL_B_SYSTEMS: List[Tuple[str, Dict[str, object]]] = [
    ("rss", {"kind": "rss"}),
    ("ac_int_rt", {"kind": "ac", "tuned": True, "messaging": "sw"}),
    ("ac_int_rt_msg", {"kind": "ac", "tuned": True, "messaging": "hw"}),
    ("ac_rss_syn", {"kind": "ac", "tuned": False, "variant": "rss"}),
    ("ac_rss_rw", {"kind": "ac", "tuned": True, "variant": "rss"}),
]

#: Panel (c) systems (64 cores, SLO-target sweep).
_PANEL_C_SYSTEMS: List[Tuple[str, Dict[str, object]]] = [
    ("rss", {"kind": "rss"}),
    ("rsspp", {"kind": "rsspp"}),
    ("ac_rss_opt", {"kind": "ac", "tuned": True, "variant": "rss"}),
    ("ac_int_opt", {"kind": "ac", "tuned": True}),
]


def _sweep_spec(
    syskw: Dict[str, object],
    n_cores: int,
    rate_rps: float,
    n_requests: int,
    seed: int,
    realistic: bool,
    zipf_s: float = 0.9,
    metrics=None,
    tag: str = "",
) -> PointSpec:
    return PointSpec(
        builder=ref(_system_builder, n_cores=n_cores, realistic=realistic,
                    seed=seed, zipf_s=zipf_s, **syskw),
        service=Fixed(SERVICE_NS),
        rate_rps=rate_rps,
        n_requests=n_requests,
        seed=seed,
        arrivals=ref(real_world_arrivals) if realistic else None,
        slo_ns=SLO_NS,
        metrics=metrics,
        tag=tag,
    )


def _best_at_slo(fractions_and_points) -> Tuple[float, object]:
    """(best rate, accuracy at best point) across one system's sweep."""
    best = 0.0
    accuracy = None
    for rate, point in fractions_and_points:
        if point.latency.p99 <= SLO_NS and rate > best:
            best = rate
            accuracy = point.metrics.get("accuracy")
    return best, accuracy


def _panels_ab(n_requests: int, seed: int) -> List[List[object]]:
    # (panel, pattern, n_cores, name) per sweep; each sweeps RATE_FRACTIONS.
    sweeps: List[Tuple[str, str, int, str, Dict[str, object]]] = []
    for realistic in (False, True):
        pattern = "real_world" if realistic else "poisson_fixed850"
        for n_cores in CORE_COUNTS:
            for name, syskw in _PANEL_A_SYSTEMS:
                sweeps.append(("a", pattern, n_cores, name, syskw))
    for name, syskw in _PANEL_B_SYSTEMS:
        sweeps.append(("b", "case_study", 256, name, syskw))

    specs: List[PointSpec] = []
    for panel, pattern, n_cores, name, syskw in sweeps:
        capacity = n_cores / SERVICE_NS * 1e9
        realistic = pattern != "poisson_fixed850"
        for fraction in RATE_FRACTIONS:
            specs.append(
                _sweep_spec(
                    syskw, n_cores, fraction * capacity, n_requests, seed,
                    realistic, metrics=ref(_accuracy_metrics, slo_ns=SLO_NS),
                    tag=f"{panel}:{pattern}:{n_cores}:{name}",
                )
            )
    results = run_points(specs, label="fig13ab")

    rows: List[List[object]] = []
    cursor = 0
    for panel, pattern, n_cores, name, _syskw in sweeps:
        capacity = n_cores / SERVICE_NS * 1e9
        chunk = results[cursor:cursor + len(RATE_FRACTIONS)]
        cursor += len(RATE_FRACTIONS)
        best, accuracy = _best_at_slo(
            (fraction * capacity, point)
            for fraction, point in zip(RATE_FRACTIONS, chunk)
        )
        rows.append([panel, pattern, n_cores, name, best / 1e6,
                     accuracy if accuracy is not None else ""])
    return rows


def _panel_c(n_requests: int, seed: int) -> List[List[object]]:
    n_cores = 64
    load = 0.9
    rate = load * n_cores / SERVICE_NS * 1e9
    cells: List[Tuple[float, str]] = [
        (multiplier, name)
        for multiplier in (5.0, 10.0, 20.0)
        for name, _syskw in _PANEL_C_SYSTEMS
    ]
    by_name = dict(_PANEL_C_SYSTEMS)
    specs = [
        # Mild key skew: violations here should come from bursts the
        # threshold must anticipate, not from a permanently overloaded
        # hot partition (which would let any predictor look perfect).
        _sweep_spec(
            by_name[name], n_cores, rate, n_requests, seed,
            realistic=True, zipf_s=0.3,
            metrics=ref(_panel_c_metrics, slo_ns=multiplier * SERVICE_NS,
                        multiplier=multiplier),
            tag=f"c:slo={multiplier:.0f}A:{name}",
        )
        for multiplier, name in cells
    ]
    rows: List[List[object]] = []
    for (multiplier, name), point in zip(cells,
                                         run_points(specs, label="fig13c")):
        rows.append(
            ["c", f"slo={multiplier:.0f}A", n_cores, name,
             point.metrics["accuracy"],
             round(point.metrics["flagged_share"], 3)]
        )
    return rows


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 13 (MICA scaling, case studies, SLO sweep)."""
    n_requests = scaled(40_000, scale)
    rows = _panels_ab(n_requests, seed) + _panel_c(n_requests, seed)
    return ExperimentResult(
        exp_id="fig13",
        title="MICA scalability, case studies, SLO-target sensitivity",
        headers=["panel", "pattern", "cores", "system", "value", "extra"],
        rows=rows,
        notes=(
            "panel a: value = throughput@SLO (MRPS, p99 < 8.5us); AC rows\n"
            "  also report prediction accuracy at the best point.\n"
            "panel b: case studies 1-2 at 256 cores (value = MRPS@SLO).\n"
            "panel c: value = prediction accuracy at SLO in {5A,10A,20A};\n"
            "  extra = share of requests flagged as predicted violators\n"
            "  (the over-prediction burden the accuracy metric hides).\n"
            "Expect AC variants to scale near-linearly where RSS/Nebula\n"
            "flatten, rt+msg > rt, rw-tuned > syn-tuned, and accuracy to\n"
            "converge toward 1.0 at the relaxed 20A target."
        ),
    )
