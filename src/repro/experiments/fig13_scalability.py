"""Fig. 13 -- MICA scalability, case studies, and SLO-target sensitivity.

(a) Throughput@SLO for 32-256 cores under (1) Poisson arrivals with
    fixed 850 ns service (the eRPC stack) and (2) the real-world bursty
    pattern; systems: commodity RSS, Nebula, AC_int with suboptimal
    (synthetic-tuned) and tuned migration parameters.  SLO: p99 <
    8.5 us = 10 x 850 ns.  AC rows also report prediction accuracy.

(b) Case studies 1-2 (256 cores, real-world MICA traffic):
    RSS baseline; AC_int_rt (runtime only, software messaging);
    AC_int_rt+msg (runtime + hardware messaging); AC_rss tuned for
    synthetic vs for real-world traffic.

(c) Prediction accuracy vs SLO target (5A / 10A / 20A, A = 850 ns,
    load 0.9) for the RSS baseline (threshold model evaluated passively)
    and the tuned AC_rss / AC_int systems.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.analysis.slo import prediction_accuracy
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    real_world_arrivals,
    run_once,
    scaled,
)
from repro.hw.constants import DEFAULT_CONSTANTS
from repro.hw.nic import PcieDelivery
from repro.kvs import MicaServiceModel, MicaWorkload, build_dataset
from repro.schedulers.jbsq import nebula
from repro.schedulers.rss import RssSystem
from repro.schedulers.rss_plus_plus import RssPlusPlusSystem
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Fixed

SERVICE_NS = 850.0
SLO_NS = 10.0 * SERVICE_NS  # 8.5 us
CORE_COUNTS = [32, 64, 128, 256]
RATE_FRACTIONS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _ac_config(n_cores: int, tuned: bool, variant: str = "int",
               messaging: str = "hw") -> AltocumulusConfig:
    n_groups = max(2, n_cores // 16)
    if tuned:
        return AltocumulusConfig(
            n_groups=n_groups,
            group_size=n_cores // n_groups,
            variant=variant,
            period_ns=100.0,
            bulk=32,
            concurrency=min(8, n_groups - 1),
            slo_multiplier=10.0,
            messaging=messaging,
        )
    return AltocumulusConfig(
        n_groups=n_groups,
        group_size=n_cores // n_groups,
        variant=variant,
        period_ns=200.0,
        bulk=16,
        concurrency=min(8, n_groups - 1),
        slo_multiplier=10.0,
        messaging=messaging,
    )


def _nebula_scaled(sim, streams, n_cores: int):
    """Nebula beyond one coherence domain (64 cores): the fraction of
    requests landing outside the NIC's domain pays a QPI-class remote
    read to fetch its payload -- Table I's 'limited coherence domain
    size' bottleneck, charged as per-request startup."""
    system = nebula(sim, streams, n_cores)
    domain = 64
    if n_cores > domain:
        crossing_fraction = 1.0 - domain / n_cores
        system.startup_overhead_ns = crossing_fraction * DEFAULT_CONSTANTS.qpi_ns
    return system


def _builders(n_cores: int):
    return {
        "rss": lambda sim, streams: RssSystem(
            sim, streams, n_cores, delivery=PcieDelivery()
        ),
        "nebula": lambda sim, streams: _nebula_scaled(sim, streams, n_cores),
        "ac_int_subopt": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=False)
        ),
        "ac_int_opt": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True)
        ),
    }


def _mica_workload(n_cores: int, seed: int, zipf_s: float = 0.9) -> MicaWorkload:
    n_groups = max(2, n_cores // 16)
    dataset = build_dataset(n_partitions=n_groups, n_keys=4_000, seed=seed)
    return MicaWorkload(
        dataset,
        MicaServiceModel.erpc(),
        n_groups=n_groups,
        scan_fraction=0.0,
        zipf_s=zipf_s,  # hot keys -> hot EREW partitions -> group imbalance
        seed=seed,
    )


def _run_point(
    builder: Callable,
    rate_rps: float,
    n_requests: int,
    seed: int,
    realistic: bool,
    n_cores: int,
    zipf_s: float = 0.9,
):
    workload: Optional[MicaWorkload] = None
    request_factory = None
    if realistic:
        workload = _mica_workload(n_cores, seed, zipf_s=zipf_s)
        request_factory = workload.request_factory

    def wired_builder(sim, streams):
        system = builder(sim, streams)
        if workload is not None:
            if isinstance(system, AltocumulusSystem):
                system.execution_penalty = workload.execute
            else:
                system.completion_hooks.append(workload.execute)
        return system

    arrivals = (
        real_world_arrivals(rate_rps) if realistic else PoissonArrivals(rate_rps)
    )
    return run_once(
        wired_builder,
        arrivals,
        Fixed(SERVICE_NS),
        n_requests=n_requests,
        seed=seed,
        request_factory=request_factory,
    )


def _throughput_at_slo(
    builder: Callable, n_cores: int, n_requests: int, seed: int, realistic: bool
):
    """Sweep rate fractions; return (best MRPS, accuracy at best point)."""
    capacity = n_cores / SERVICE_NS * 1e9
    best = 0.0
    accuracy = None
    for fraction in RATE_FRACTIONS:
        rate = fraction * capacity
        result = _run_point(builder, rate, n_requests, seed, realistic, n_cores)
        if result.latency.p99 <= SLO_NS and rate > best:
            best = rate
            if isinstance(result.system, AltocumulusSystem):
                accuracy = prediction_accuracy(
                    result.requests, result.system.predicted_ids, SLO_NS
                )
    return best / 1e6, accuracy


def _panel_a(n_requests: int, seed: int) -> List[List[object]]:
    rows: List[List[object]] = []
    for realistic in (False, True):
        pattern = "real_world" if realistic else "poisson_fixed850"
        for n_cores in CORE_COUNTS:
            for name, builder in _builders(n_cores).items():
                mrps, accuracy = _throughput_at_slo(
                    builder, n_cores, n_requests, seed, realistic
                )
                rows.append(
                    ["a", pattern, n_cores, name, mrps,
                     accuracy if accuracy is not None else ""]
                )
    return rows


def _panel_b(n_requests: int, seed: int) -> List[List[object]]:
    n_cores = 256
    configs = {
        "rss": lambda sim, streams: RssSystem(
            sim, streams, n_cores, delivery=PcieDelivery()
        ),
        "ac_int_rt": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True, messaging="sw")
        ),
        "ac_int_rt_msg": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True, messaging="hw")
        ),
        "ac_rss_syn": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=False, variant="rss")
        ),
        "ac_rss_rw": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True, variant="rss")
        ),
    }
    rows: List[List[object]] = []
    for name, builder in configs.items():
        mrps, accuracy = _throughput_at_slo(
            builder, n_cores, n_requests, seed, realistic=True
        )
        rows.append(["b", "case_study", n_cores, name, mrps,
                     accuracy if accuracy is not None else ""])
    return rows


def _panel_c(n_requests: int, seed: int) -> List[List[object]]:
    n_cores = 64
    load = 0.9
    rate = load * n_cores / SERVICE_NS * 1e9
    configs = {
        "rss": lambda sim, streams: RssSystem(
            sim, streams, n_cores, delivery=PcieDelivery()
        ),
        # The elastic-RSS feature the paper folds into AC_rss_opt for
        # this case study ([7]: 20 us re-mapping granularity).
        "rsspp": lambda sim, streams: RssPlusPlusSystem(
            sim, streams, n_cores, delivery=PcieDelivery(),
            rebalance_interval_ns=20_000.0,
        ),
        "ac_rss_opt": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True, variant="rss")
        ),
        "ac_int_opt": lambda sim, streams: AltocumulusSystem(
            sim, streams, _ac_config(n_cores, tuned=True)
        ),
    }
    rows: List[List[object]] = []
    for multiplier in (5.0, 10.0, 20.0):
        slo_ns = multiplier * SERVICE_NS
        for name, builder in configs.items():
            # Mild key skew: violations here should come from bursts the
            # threshold must anticipate, not from a permanently
            # overloaded hot partition (which would let any predictor
            # look perfect).
            result = _run_point(builder, rate, n_requests, seed,
                                realistic=True, n_cores=n_cores, zipf_s=0.3)
            if isinstance(result.system, AltocumulusSystem):
                predicted = result.system.predicted_ids
            else:
                # Passive evaluation of the naive static per-queue
                # threshold (T = k*L+1 with k=1) on the RSS baseline.
                predicted = {
                    r.req_id
                    for r in result.requests
                    if (r.queue_len_at_arrival or 0) > multiplier + 1
                }
            accuracy = prediction_accuracy(result.requests, predicted, slo_ns)
            flagged_share = len(predicted) / max(1, len(result.requests))
            rows.append(
                ["c", f"slo={multiplier:.0f}A", n_cores, name, accuracy,
                 round(flagged_share, 3)]
            )
    return rows


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 13 (MICA scaling, case studies, SLO sweep)."""
    n_requests = scaled(40_000, scale)
    rows = _panel_a(n_requests, seed) + _panel_b(n_requests, seed) + _panel_c(
        n_requests, seed
    )
    return ExperimentResult(
        exp_id="fig13",
        title="MICA scalability, case studies, SLO-target sensitivity",
        headers=["panel", "pattern", "cores", "system", "value", "extra"],
        rows=rows,
        notes=(
            "panel a: value = throughput@SLO (MRPS, p99 < 8.5us); AC rows\n"
            "  also report prediction accuracy at the best point.\n"
            "panel b: case studies 1-2 at 256 cores (value = MRPS@SLO).\n"
            "panel c: value = prediction accuracy at SLO in {5A,10A,20A};\n"
            "  extra = share of requests flagged as predicted violators\n"
            "  (the over-prediction burden the accuracy metric hides).\n"
            "Expect AC variants to scale near-linearly where RSS/Nebula\n"
            "flatten, rt+msg > rt, rw-tuned > syn-tuned, and accuracy to\n"
            "converge toward 1.0 at the relaxed 20A target."
        ),
    )
