"""Fig. 14 -- end-to-end MICA over nanoRPC, 64 cores, real-world traffic:
Nebula vs AC_rss-ISA vs AC_rss-MSR (p99 latency and SLO-violation ratio
vs throughput).

Workload: 99.5% ~50 ns GET/SET plus 0.5% ~50 us SCAN (the paper's mix;
mean ~315 ns, so 64-core capacity is ~200 MRPS -- the paper's x-axis to
700 MRPS is unreachable at this mix and we sweep to capacity, see
EXPERIMENTS.md).  Keys are Zipf-skewed, so scans cluster in their EREW
owner groups; Altocumulus evacuates the short requests out of
scan-clogged groups while Nebula's global JBSQ keeps committing them
behind scans.  The AC_rss configurations pair the commodity RSS/PCIe
NIC with the in-CPU Altocumulus hardware (dispatch_mode="hw"); ISA vs
MSR differ only in the software-hardware interface cost, which
stretches the MSR runtime's effective migration cadence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import (
    ExperimentResult,
    real_world_arrivals,
    scaled,
)
from repro.hw.constants import DEFAULT_CONSTANTS
from repro.kvs import MicaServiceModel, MicaWorkload, build_dataset
from repro.runner import PointSpec, ref, run_points
from repro.schedulers.jbsq import nebula
from repro.workload.service import Fixed


def _nebula_erew(sim, streams):
    system = nebula(sim, streams, N_CORES)
    system.startup_overhead_ns = DEFAULT_CONSTANTS.coherence_msg_ns
    return system

N_CORES = 64
N_GROUPS = 4
SCAN_FRACTION = 0.005
SCAN_NS = 50_000.0
RATES_MRPS = [25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 170.0, 185.0, 200.0]


def _service_model() -> MicaServiceModel:
    model = MicaServiceModel.nanorpc()
    return MicaServiceModel(
        stack_ns=model.stack_ns,
        get_extra_ns=model.get_extra_ns,
        set_extra_ns=model.set_extra_ns,
        scan_ns=SCAN_NS,
        probe_ns=model.probe_ns,
        scan_items=model.scan_items,
    )


def _mean_service_ns() -> float:
    return _service_model().mean_service_ns(get_fraction=0.5,
                                            scan_fraction=SCAN_FRACTION)


#: system name -> (Altocumulus interface, runtime enabled); ``None``
#: entries are the Nebula baseline.
_SYSTEMS: List[Tuple[str, object]] = [
    # Nebula has no partition-core affinity, so under EREW every
    # request pays one remote access to its owner partition.
    ("nebula", None),
    ("ac_rss_isa", ("isa", True)),
    ("ac_rss_msr", ("msr", True)),
    # The pre-runtime baseline of Fig. 14: the same RSS-fed groups
    # with prediction/migration switched off.
    ("ac_rss_norun", ("isa", False)),
]


def _wired_builder(sim, streams, system: str, seed: int):
    """Build one Fig. 14 system with its MICA workload wired in; the
    workload is constructed here (in the worker, deterministically from
    ``seed``) and handed back as ``(system, request_factory)``."""
    wiring = dict(_SYSTEMS)[system]
    if wiring is None:
        sys_obj = _nebula_erew(sim, streams)
    else:
        interface, runtime = wiring
        config = AltocumulusConfig(
            n_groups=N_GROUPS,
            group_size=N_CORES // N_GROUPS,
            variant="rss",
            dispatch_mode="hw",
            interface=interface,
            period_ns=100.0,
            bulk=40,
            concurrency=3,
            slo_multiplier=10.0,
            runtime_enabled=runtime,
        )
        sys_obj = AltocumulusSystem(sim, streams, config)
    workload = MicaWorkload(
        build_dataset(n_partitions=N_GROUPS, n_keys=4_000, seed=seed),
        _service_model(),
        n_groups=N_GROUPS,
        scan_fraction=SCAN_FRACTION,
        zipf_s=0.9,
        seed=seed,
    )
    if isinstance(sys_obj, AltocumulusSystem):
        sys_obj.execution_penalty = workload.execute
    else:
        sys_obj.completion_hooks.append(workload.execute)
    return sys_obj, workload.request_factory


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate Fig. 14 (end-to-end MICA: Nebula vs AC ISA/MSR)."""
    n_requests = scaled(80_000, scale)
    mean_ns = _mean_service_ns()
    slo_ns = 10.0 * mean_ns
    cells = [(name, mrps) for name, _ in _SYSTEMS for mrps in RATES_MRPS]
    specs = [
        PointSpec(
            builder=ref(_wired_builder, system=name, seed=seed),
            service=Fixed(mean_ns),  # overridden per request by the factory
            rate_rps=mrps * 1e6,
            n_requests=n_requests,
            seed=seed,
            arrivals=ref(real_world_arrivals),
            slo_ns=slo_ns,
            tag=f"{name}@{mrps:.0f}M",
        )
        for name, mrps in cells
    ]
    rows: List[List[object]] = []
    at_slo: Dict[str, float] = {}
    for (name, mrps), point in zip(cells, run_points(specs, label="fig14")):
        p99 = point.latency.p99
        rows.append(
            [
                name,
                mrps,
                p99 / 1000.0,
                point.violation_ratio,
                point.throughput_rps / 1e6,
            ]
        )
        if p99 <= slo_ns and mrps > at_slo.get(name, 0.0):
            at_slo[name] = mrps
        else:
            at_slo.setdefault(name, 0.0)
    notes = [
        f"SLO = 10 x mean service ({mean_ns:.0f} ns) = {slo_ns / 1000:.2f} us p99.",
        "throughput@SLO (MRPS): "
        + ", ".join(f"{k}={v:.0f}" for k, v in at_slo.items()),
    ]
    if at_slo.get("nebula"):
        notes.append(
            f"AC_rss-ISA / Nebula: {at_slo['ac_rss_isa'] / at_slo['nebula']:.2f}x "
            "(paper: ~2.5x)"
        )
    if at_slo.get("ac_rss_isa"):
        notes.append(
            f"MSR reaches {at_slo['ac_rss_msr'] / at_slo['ac_rss_isa']:.0%} of the "
            "ISA max throughput (paper: 91%)."
        )
    return ExperimentResult(
        exp_id="fig14",
        title="MICA/nanoRPC end-to-end: Nebula vs AC_rss ISA/MSR (64 cores)",
        headers=["system", "offered_mrps", "p99_us", "violation_ratio",
                 "achieved_mrps"],
        rows=rows,
        notes="\n".join(notes),
        series={"throughput_at_slo_mrps": at_slo},
    )
