"""Adaptive control plane vs static steering under chaos and drift.

Not a paper artifact -- the flagship experiment of the control-plane
subsystem (:mod:`repro.control`).  Two families of cells run identical
workloads:

* **Static** cells are the established steering policies (connection
  hash, power-of-2, shortest-expected-wait) with no control loop --
  whatever knobs they were constructed with are the knobs they die with.
* **Adaptive** cells start from the *weakest reasonable* configuration
  (power-of-d with d=2, default staleness) and attach a
  :class:`~repro.control.ControlLoop` with the hysteresis or bandit
  controller, which may escalate probe width / estimate freshness,
  admin-drain impaired servers, relax or tighten migration thresholds,
  and swap steering weights mid-run.

The comparison runs across three chaos scenarios on the 4x16 rack (a
mid-run server crash, a degraded ToR downlink, and a lossy NIC -- the
same window geometry as :mod:`~repro.experiments.fig_chaos`) plus a
non-stationary drifting-MMPP multi-tenant load on the datacenter tier.
The chaos scenarios report during-window p99; the drift scenario
reports whole-run p99 and SLO violation ratio.

The punchline the adaptive-smoke CI gate pins: on the lossy-NIC
scenario the hysteresis controller's during-window p99 is no worse than
the best static policy's, because draining a degraded-but-reachable
server beats merely biasing load away from it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.control import ControlConfig
from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.fig_chaos import (
    CORES_PER_SERVER,
    CRASH_DURATION_FRACTION,
    CRASH_START_FRACTION,
    N_SERVERS,
    RETRY,
    SERVICE_NS,
    windowed_p99,
)
from repro.experiments.fig_datacenter import datacenter_builder, tenant_pool
from repro.experiments.fig_rack import rack_builder, skewed_connections
from repro.faults import FaultEvent, FaultPlan
from repro.runner import PointSpec, ref, run_points
from repro.workload.arrivals import DriftingMMPPArrivals
from repro.workload.service import Exponential

#: Control epoch: ~5 us gives the controller tens of decision points
#: inside a chaos window at every scale the CI runs.
CONTROL_EPOCH_NS = 5_000.0

#: Offered load for the chaos scenarios, as a fraction of aggregate
#: capacity.  Deliberately higher than fig_chaos's 0.5: with deeper
#: queues a static policy's degradation *penalty* (a fixed handicap in
#: load units) stops being an effective exclusion -- healthy servers
#: routinely carry enough outstanding work that the impaired one wins
#: comparisons again -- while an admin drain excludes it outright.
CHAOS_LOAD_FRACTION = 0.7

#: Chaos scenarios: (label, fault kind, magnitude), all targeting
#: server 0 with the fig_chaos window geometry.
CHAOS_SCENARIOS: Tuple[Tuple[str, str, float], ...] = (
    ("crash", "server_crash", 0.0),
    ("tor_degrade", "tor_degrade", 0.1),
    ("nic_drop", "nic_drop", 0.9),
)

#: Static cells: the fig_chaos policy lineup, no control loop.
STATIC_CELLS: Tuple[Tuple[str, dict], ...] = (
    ("hash", {"policy": "hash"}),
    ("power_of_2", {"policy": "power_of_d", "d": 2}),
    ("shortest_wait", {"policy": "shortest_wait"}),
)

#: Adaptive cells: weakest-reasonable base policy + a controller.
ADAPTIVE_CELLS: Tuple[Tuple[str, str], ...] = (
    ("adaptive_hyst", "hysteresis"),
    ("adaptive_bandit", "bandit"),
)

#: Drift scenario shape (datacenter tier): mean load fraction and the
#: sinusoidal envelope the MMPP mean wanders along.  The burstiness is
#: tamed relative to the MMPP defaults so transient overload does not
#: saturate every cell identically -- steering quality has to be what
#: separates them.
DRIFT_LOAD_FRACTION = 0.45
DRIFT_PERIOD_NS = 200_000.0
DRIFT_AMPLITUDE = 0.35
DRIFT_BURST_FACTOR = 2.0
DRIFT_BATCH_MEAN = 2.0

#: Datacenter shape mirrored from fig_datacenter.
DC_RACKS = 4
DC_SERVERS = 4
DC_CORES = 8
DC_SLO_NS = 10 * SERVICE_NS


def drift_arrivals(rate_rps: float) -> DriftingMMPPArrivals:
    """Module-level arrivals factory (``ref``-able): drifting MMPP."""
    return DriftingMMPPArrivals(
        rate_rps,
        period_ns=DRIFT_PERIOD_NS,
        amplitude=DRIFT_AMPLITUDE,
        burst_factor=DRIFT_BURST_FACTOR,
        batch_mean=DRIFT_BATCH_MEAN,
    )


def _control(controller: str) -> ControlConfig:
    # drain_after_epochs=1: at a 5 us epoch the epoch itself is the
    # debounce, and every epoch of continued leakage onto a lossy
    # server costs retry-scale latency.  swap_at_level=1: under
    # sustained pressure the first escalation goes straight to the
    # exact-information swap policy -- widening power-of-d probes over
    # stale estimates herds load instead of spreading it.  max_level=1:
    # one knob rung is the sweet spot for the fault-episode posture too;
    # deeper rungs over-sample and re-herd (measured: rung 1 beats both
    # rung 2 and rung 3 on every chaos scenario).
    return ControlConfig(
        controller=controller,
        epoch_ns=CONTROL_EPOCH_NS,
        drain_after_epochs=1,
        swap_at_level=1,
        max_level=1,
    )


def _chaos_plan(kind: str, magnitude: float, duration_ns: float,
                start_ns: float) -> FaultPlan:
    return FaultPlan(
        events=(
            FaultEvent(
                time_ns=start_ns,
                kind=kind,
                target=0,
                magnitude=magnitude,
                duration_ns=duration_ns,
            ),
        ),
        retry=RETRY,
    )


def _chaos_specs(
    n_requests: int, seed: int
) -> Tuple[List[Tuple[str, str, PointSpec]], float, float]:
    """One spec per (scenario x cell); returns specs + window bounds."""
    capacity = N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
    rate_rps = CHAOS_LOAD_FRACTION * capacity
    duration_ns = n_requests / rate_rps * 1e9
    start_ns = CRASH_START_FRACTION * duration_ns
    window_ns = CRASH_DURATION_FRACTION * duration_ns
    end_ns = start_ns + window_ns
    specs: List[Tuple[str, str, PointSpec]] = []
    for scenario, kind, magnitude in CHAOS_SCENARIOS:
        plan = _chaos_plan(kind, magnitude, window_ns, start_ns)
        cells: List[Tuple[str, dict, Optional[ControlConfig]]] = [
            (name, polkw, None) for name, polkw in STATIC_CELLS
        ]
        cells.extend(
            (name, {"policy": "power_of_d", "d": 2}, _control(controller))
            for name, controller in ADAPTIVE_CELLS
        )
        for name, polkw, control in cells:
            specs.append((
                scenario,
                name,
                PointSpec(
                    builder=ref(rack_builder, n_servers=N_SERVERS,
                                cores_per_server=CORES_PER_SERVER, **polkw),
                    service=Exponential(SERVICE_NS),
                    rate_rps=rate_rps,
                    n_requests=n_requests,
                    seed=seed,
                    connections=ref(skewed_connections),
                    metrics=ref(windowed_p99, crash_start_ns=start_ns,
                                crash_end_ns=end_ns),
                    faults=plan,
                    control=control,
                    tag=f"adaptive:{scenario}:{name}",
                ),
            ))
    return specs, start_ns, end_ns


def _drift_specs(
    n_requests: int, seed: int
) -> List[Tuple[str, str, PointSpec]]:
    capacity = DC_RACKS * DC_SERVERS * DC_CORES / SERVICE_NS * 1e9
    rate_rps = DRIFT_LOAD_FRACTION * capacity
    specs: List[Tuple[str, str, PointSpec]] = []
    cells: List[Tuple[str, dict, Optional[ControlConfig]]] = [
        (name, polkw, None) for name, polkw in STATIC_CELLS
    ]
    cells.extend(
        (name, {"policy": "power_of_d", "d": 2}, _control(controller))
        for name, controller in ADAPTIVE_CELLS
    )
    for name, polkw, control in cells:
        specs.append((
            "drift",
            name,
            PointSpec(
                builder=ref(datacenter_builder, mix="skewed",
                            n_racks=DC_RACKS, n_servers=DC_SERVERS,
                            cores_per_server=DC_CORES, **polkw),
                service=Exponential(SERVICE_NS),
                rate_rps=rate_rps,
                n_requests=n_requests,
                seed=seed,
                arrivals=ref(drift_arrivals),
                connections=ref(tenant_pool, mix="skewed"),
                slo_ns=DC_SLO_NS,
                control=control,
                tag=f"adaptive:drift:{name}",
            ),
        ))
    return specs


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the adaptive-vs-static comparison."""
    n_requests = scaled(30_000, scale)
    chaos, start_ns, end_ns = _chaos_specs(n_requests, seed)
    drift = _drift_specs(scaled(40_000, scale), seed)
    labeled = chaos + drift
    results = run_points([spec for _, _, spec in labeled],
                         label="fig_adaptive")

    rows: List[List[object]] = []
    series: Dict[str, List[Optional[float]]] = {}
    for (scenario, name, spec), point in zip(labeled, results):
        inst = point.instruments
        if scenario == "drift":
            headline = point.p99_ns
            violation = point.violation_ratio
        else:
            headline = point.metrics.get("p99_during_ns")
            violation = None
        series.setdefault(scenario, []).append(
            None if headline is None or headline != headline
            else headline / 1000.0
        )
        rows.append([
            scenario,
            name,
            "-" if headline is None or headline != headline
            else round(headline / 1000.0, 2),
            "-" if violation is None else round(violation, 4),
            int(inst.get("control.epochs", 0)),
            int(inst.get("control.actuations", 0)),
            int(inst.get("control.drains", 0)),
            int(inst.get("control.knob_updates", 0)),
            int(inst.get("control.worker_moves", 0)),
            int(inst.get("client.retry.retries", 0)),
        ])
    return ExperimentResult(
        exp_id="fig_adaptive",
        title="adaptive controllers vs static steering (chaos + drift)",
        headers=["scenario", "cell", "p99_us", "slo_viol", "epochs",
                 "actuations", "drains", "knobs", "moves", "retries"],
        rows=rows,
        notes=(
            "Chaos scenarios: 4x16 rack at "
            f"{CHAOS_LOAD_FRACTION:.0%} load, fault window on server 0 for "
            f"arrivals in [{start_ns / 1000.0:.0f} us, "
            f"{end_ns / 1000.0:.0f} us); p99_us is during-window p99.\n"
            f"Drift scenario: {DC_RACKS}-rack datacenter at "
            f"{DRIFT_LOAD_FRACTION:.0%} mean load under a drifting MMPP "
            f"(amplitude {DRIFT_AMPLITUDE}); p99_us is whole-run p99 and "
            f"slo_viol the {DC_SLO_NS / 1000.0:.0f} us-SLO violation "
            "ratio.\n"
            "Static cells never touch their knobs; adaptive cells start "
            "from power-of-2 steering\n"
            "and let the controller escalate probe width / estimate "
            "freshness, drain impaired\n"
            "servers, and retune thresholds from live control.* "
            "telemetry."
        ),
        series=series,
    )
