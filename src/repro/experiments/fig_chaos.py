"""Chaos study: a mid-run server crash under three steering policies.

Not a paper artifact -- the flagship experiment of the fault-injection
subsystem (:mod:`repro.faults`).  A 4x16 Altocumulus rack runs
connection-skewed traffic at moderate load while a :class:`FaultPlan`
crashes server 0 for the middle ~third of the run; every request flows
through the retrying client (timeout, capped exponential backoff,
duplicate detection), so a blackholed attempt is retried rather than
silently lost.

The question is RackSched's failure story: which *inter-server* layer
notices the crash?  Health-aware policies (power-of-2, shortest-wait)
see server 0 leave the usable set and steer around it -- their
during-crash p99 stays within the healthy envelope and recovers
immediately.  Connection-hash cannot: a hash fabric has no health
feedback, so every flow that hashes to server 0 keeps being steered into
the blackhole, surviving only through client retries that land on the
same dead server.  Its during-crash p99 explodes to the retry-budget
scale (or requests fail outright) and only arrival of the recovery event
restores it.

The table reports per-arrival-window p99 (before / during / after the
crash window) plus the fault and retry accounting; every ``faults.*``
counter must match the injected plan exactly (one crash, one recovery),
which the chaos test battery pins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.fig_rack import rack_builder, skewed_connections
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.runner import PointSpec, ref, run_points
from repro.workload.service import Exponential

#: Mean per-request service time (1 us RPC handlers, as elsewhere).
SERVICE_NS = 1_000.0

#: Rack shape: 4 Altocumulus servers x 16 cores.
N_SERVERS = 4
CORES_PER_SERVER = 16

#: Offered load as a fraction of aggregate capacity.  0.5 keeps the
#: hash policy's hot server stable while healthy (so the crash, not
#: baseline skew, is what its p99 measures) and leaves the three
#: surviving servers at ~0.67 load during the crash, so health-aware
#: policies can absorb the failover traffic.
LOAD_FRACTION = 0.5

#: Crash window as fractions of the nominal run duration: server 0 dies
#: a quarter of the way in and stays dead for ~30% of the run.
CRASH_START_FRACTION = 0.25
CRASH_DURATION_FRACTION = 0.30

#: Policies compared.  Hash is the control: deliberately health-oblivious.
POLICIES: Tuple[Tuple[str, dict], ...] = (
    ("hash", {"policy": "hash"}),
    ("power_of_2", {"policy": "power_of_d", "d": 2}),
    ("shortest_wait", {"policy": "shortest_wait"}),
)

#: Client retry budget: sized so a hash-steered flow that arrives at the
#: start of the crash window can survive to recovery on retries (six
#: capped-backoff attempts span ~0.5 ms) instead of failing outright.
RETRY = RetryPolicy(
    timeout_ns=50_000.0,
    max_retries=6,
    backoff_base_ns=20_000.0,
    backoff_cap_ns=100_000.0,
    jitter=0.5,
)


def windowed_p99(result, crash_start_ns: float = 0.0,
                 crash_end_ns: float = 0.0) -> Dict[str, float]:
    """Metrics hook: p99 latency per arrival window (pre/during/post).

    Runs in the worker next to the request log; only this small dict
    crosses the process boundary.
    """
    windows: Dict[str, List[float]] = {"pre": [], "during": [], "post": []}
    for request in result.requests:
        if request.arrival < crash_start_ns:
            window = "pre"
        elif request.arrival < crash_end_ns:
            window = "during"
        else:
            window = "post"
        windows[window].append(request.latency)
    out: Dict[str, float] = {}
    for name, latencies in windows.items():
        out[f"p99_{name}_ns"] = (
            float(np.percentile(latencies, 99)) if latencies else float("nan")
        )
        out[f"n_{name}"] = float(len(latencies))
    return out


def _plan(crash_start_ns: float, crash_duration_ns: float) -> FaultPlan:
    """One crash/recovery cycle on server 0 (where the hot flow hashes)."""
    return FaultPlan(
        events=(
            FaultEvent(
                time_ns=crash_start_ns,
                kind="server_crash",
                target=0,
                duration_ns=crash_duration_ns,
            ),
        ),
        retry=RETRY,
    )


def _specs(n_requests: int, seed: int) -> Tuple[List[PointSpec], float, float]:
    capacity = N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
    rate_rps = LOAD_FRACTION * capacity
    duration_ns = n_requests / rate_rps * 1e9
    crash_start = CRASH_START_FRACTION * duration_ns
    crash_end = crash_start + CRASH_DURATION_FRACTION * duration_ns
    plan = _plan(crash_start, crash_end - crash_start)
    specs = [
        PointSpec(
            builder=ref(rack_builder, n_servers=N_SERVERS,
                        cores_per_server=CORES_PER_SERVER, **polkw),
            service=Exponential(SERVICE_NS),
            rate_rps=rate_rps,
            n_requests=n_requests,
            seed=seed,
            connections=ref(skewed_connections),
            metrics=ref(windowed_p99, crash_start_ns=crash_start,
                        crash_end_ns=crash_end),
            faults=plan,
            tag=f"chaos:{name}",
        )
        for name, polkw in POLICIES
    ]
    return specs, crash_start, crash_end


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the crash/recovery steering comparison."""
    n_requests = scaled(30_000, scale)
    specs, crash_start, crash_end = _specs(n_requests, seed)
    results = run_points(specs, label="fig_chaos")

    rows: List[List[object]] = []
    series: dict = {}
    for (name, _polkw), point in zip(POLICIES, results):
        inst = point.instruments
        windows: List[Optional[float]] = [
            point.metrics.get(f"p99_{w}_ns") for w in ("pre", "during", "post")
        ]
        series[name] = [
            None if v is None or v != v else v / 1000.0 for v in windows
        ]
        rows.append([
            name,
            *[
                "-" if v is None or v != v else round(v / 1000.0, 2)
                for v in windows
            ],
            int(inst.get("client.retry.succeeded", 0)),
            int(inst.get("client.retry.failed", 0)),
            int(inst.get("client.retry.retries", 0)),
            int(inst.get("client.retry.timed_out", 0)),
            int(inst.get("faults.requests_blackholed", 0)),
            int(inst.get("faults.responses_lost", 0)),
        ])
    return ExperimentResult(
        exp_id="fig_chaos",
        title="steering policies under a mid-run server crash",
        headers=["policy", "p99_pre_us", "p99_crash_us", "p99_post_us",
                 "ok", "failed", "retries", "timeouts", "blackholed",
                 "resp_lost"],
        rows=rows,
        notes=(
            f"4x16 Altocumulus rack at {LOAD_FRACTION:.0%} load, Zipf-skewed "
            "flows; server 0 (the hot\n"
            f"flow's hash target) is down for arrivals in "
            f"[{crash_start / 1000.0:.0f} us, {crash_end / 1000.0:.0f} us).\n"
            "Clients retry with capped exponential backoff after a "
            f"{RETRY.timeout_ns / 1000.0:.0f} us timeout.\n"
            "Health-aware steering (power-of-2, shortest-wait) routes around\n"
            "the crash, so its during-crash p99 stays near the healthy\n"
            "envelope; connection-hash has no health feedback and keeps\n"
            "steering into the blackhole, paying retry-scale latency until\n"
            "the recovery event lands."
        ),
        series=series,
    )
