"""Data-layer contention: ownership discipline x hot-key skew x
Altocumulus migration threshold.

Not a paper artifact -- the flagship experiment of the ownership layer
(:mod:`repro.kvs.ownership`).  The paper's Sec. IX charges EREW's
concurrency-free execution with a remote-owner penalty on migrated
requests and stops there; this experiment closes the loop ROADMAP has
pointed at since the rack tier landed: *the ownership policy decides
what migration costs*.

One 32-core Altocumulus server (4 manager groups x 8 cores) runs the
``hot_key`` MICA mix -- high-Zipf traffic with a configurable fraction
concentrated on a handful of keys all owned by partition 0 -- under
every ownership discipline, over a sweep of hot-key skew and migration
threshold:

* **EREW** gates every access to a partition exclusively.  Migration
  helps the *queues* (scan-clogged groups evacuate work) but every
  migrated request still pays the remote-owner penalty and then
  *serializes at the owner partition* -- on a hot-key mix the hot
  partition becomes a lock, and admission waits explode with skew.
  A lower migration threshold migrates more aggressively and only
  feeds the lock faster.
* **CREW + multiversion** lets reads proceed against the last committed
  version wherever they were dispatched (epoch-tracked, reclamation
  deferred): the hot partition stops serializing, reads pay a small
  concurrency-control constant instead, and p99 stays near the
  contention-free baseline -- the crossover the gate test pins.
* **d-CREW** interpolates: with ``d`` concurrent holders per partition
  its admission waits fall monotonically from EREW's (d=1) toward
  CREW's (d=inf) -- the second pinned property.
* **CRCW** never waits (zero admission gating), the optimistic floor.

Every cell surfaces the ``kvs.ownership.*`` instruments through the
point's telemetry snapshot; the table reports p99 alongside mean
admission wait, wait counts, and multiversion stale reads/reclamations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.experiments.common import ExperimentResult, scaled
from repro.kvs.ownership import KvsSpec
from repro.runner import PointSpec, ref, run_points
from repro.workload.service import Fixed

#: Server shape: 4 manager groups of 8 cores -- 4 EREW partitions.
N_GROUPS = 4
GROUP_SIZE = 8
N_CORES = N_GROUPS * GROUP_SIZE

#: Offered rate.  The contaminated hot_key mix's mean handler time is
#: ~165 ns (0.2% 50-us SCANs over ~65 ns GET/SETs), so 32 cores offer
#: ~190 MRPS; 12 MRPS keeps *cores* lightly loaded while (a) SCANs
#: periodically clog their group -- the queueing that makes migration
#: matter -- and (b) the hot partition, which sees skew + 1/4 of the
#: residual Zipf traffic, pushes toward an exclusive (EREW) owner lock
#: whose capacity is only ~1 / 65 ns ~ 15 MRPS.  The contention is in
#: the data layer, not raw core load: exactly the regime where
#: ownership policy decides what migration costs.
RATE_RPS = 12e6

#: SCAN contamination: rare 50-us operations whose queue buildup is
#: what the migration threshold reacts to (the Fig. 14 mechanism).
SCAN_FRACTION = 0.002

#: Fraction of traffic concentrated on the partition-0 hot keys.
SKEWS: Tuple[float, ...] = (0.0, 0.25, 0.5)

#: Altocumulus migration threshold, in *queue-length* units (Eq. 2's
#: T is a queue occupancy bound; T_upper = k*L + 1 = 71 here):
#: aggressive (evacuate a group as soon as two requests queue -- e.g.
#: behind a SCAN) vs lazy (nearly T_upper: clogged groups are almost
#: never evacuated).
THRESHOLDS: Tuple[float, ...] = (2.0, 64.0)

#: (label, KvsSpec kwargs) per ownership discipline.
MODES: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("erew", dict(mode="erew")),
    ("crew", dict(mode="crew")),
    ("crew+mv", dict(mode="crew", multiversion=True)),
    ("dcrew:d2", dict(mode="dcrew", d=2)),
    ("dcrew:d4", dict(mode="dcrew", d=4)),
    ("crcw", dict(mode="crcw")),
)


def contention_builder(sim, streams, threshold: float = 2.0):
    """Module-level (picklable) builder: one Altocumulus server with a
    fixed migration threshold, in queue-length units (the sweep's
    third axis)."""
    config = AltocumulusConfig(
        n_groups=N_GROUPS,
        group_size=GROUP_SIZE,
        threshold_mode="fixed",
        fixed_threshold=threshold,
    )
    return AltocumulusSystem(sim, streams, config)


def _specs(
    n_requests: int, seed: int
) -> List[Tuple[str, float, float, PointSpec]]:
    """One spec per (mode x skew x threshold)."""
    specs: List[Tuple[str, float, float, PointSpec]] = []
    for label, kwargs in MODES:
        for skew in SKEWS:
            for threshold in THRESHOLDS:
                spec = KvsSpec(
                    mix="hot_key",
                    scan_fraction=SCAN_FRACTION,
                    hot_key_fraction=skew,
                    **kwargs,
                )
                specs.append((
                    label,
                    skew,
                    threshold,
                    PointSpec(
                        builder=ref(contention_builder,
                                    threshold=threshold),
                        # Overridden per request by the KVS factory.
                        service=Fixed(100.0),
                        rate_rps=RATE_RPS,
                        n_requests=n_requests,
                        seed=seed,
                        kvs=spec,
                        tag=f"contention:{label}:s{skew}:t{threshold:.0f}",
                    ),
                ))
    return specs


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the ownership x skew x threshold contention sweep."""
    cells = _specs(scaled(20_000, scale), seed)
    results = run_points([s for _, _, _, s in cells], label="fig_contention")

    rows: List[List[object]] = []
    series: Dict[str, List[Optional[float]]] = {}
    p99: Dict[Tuple[str, float, float], float] = {}
    for (label, skew, threshold, _), point in zip(cells, results):
        inst = point.instruments
        admissions = inst.get("kvs.ownership.admissions", 0)
        wait_ns = inst.get("kvs.ownership.wait_ns", 0.0)
        waits = (inst.get("kvs.ownership.read_waits", 0)
                 + inst.get("kvs.ownership.write_waits", 0))
        p99[(label, skew, threshold)] = point.latency.p99
        series.setdefault(label, []).append(point.latency.p99 / 1000.0)
        rows.append([
            label,
            skew,
            threshold,
            round(point.latency.p99 / 1000.0, 3),
            round(point.latency.mean / 1000.0, 3),
            round(wait_ns / admissions, 1) if admissions else 0.0,
            int(waits),
            int(inst.get("kvs.ownership.aborts", 0)),
            int(inst.get("kvs.ownership.stale_reads", 0)),
            int(inst.get("kvs.ownership.reclaimed", 0)),
        ])

    crossover = []
    for skew in SKEWS:
        for threshold in THRESHOLDS:
            erew = p99[("erew", skew, threshold)]
            mv = p99[("crew+mv", skew, threshold)]
            if mv < erew:
                crossover.append(
                    f"skew={skew:.2f}/thr={threshold:.0f}: "
                    f"{erew / 1000:.2f} -> {mv / 1000:.2f} us "
                    f"({erew / mv:.1f}x)"
                )
    return ExperimentResult(
        exp_id="fig_contention",
        title="ownership discipline x hot-key skew x migration threshold",
        headers=["mode", "hot_frac", "threshold", "p99_us", "mean_us",
                 "mean_wait_ns", "waits", "aborts", "stale_reads",
                 "reclaimed"],
        rows=rows,
        notes=(
            f"One {N_CORES}-core Altocumulus server ({N_GROUPS} groups x "
            f"{GROUP_SIZE} cores) at {RATE_RPS / 1e6:.0f} MRPS on the "
            "hot_key MICA mix; hot_frac of traffic hits partition-0 keys."
            "\nEREW serializes the hot partition (admission waits "
            "dominate p99 as skew grows; migration only moves the "
            "queueing, not the lock); CREW+multiversion reads the last "
            "committed version and stays flat; d-CREW interpolates "
            "monotonically; CRCW never waits.\n"
            "EREW p99 -> CREW+mv p99 where multiversion wins: "
            + ("; ".join(crossover) if crossover else "(no crossover)")
        ),
        series=series,
    )
