"""Datacenter-scale steering study: inter-rack policy x tenant skew.

Not a paper artifact -- the fabric-tier experiment that grows the
reproduction from one rack to a spine-leaf datacenter.  R racks of
Altocumulus servers (each internally steered by power-of-2, the rack
tier's winner) sit behind a spine switch and an *inter-rack* steering
policy; traffic is a multi-tenant mix (:mod:`repro.workload.tenants`)
whose hot tenant concentrates its load on a few hot flows.

The sweep asks RackSched's question one level up: given a well-steered
rack, how much *datacenter* tail does the inter-rack layer leave on the
table?  Expected shape:

* ``hash`` (ECMP-style flow hashing across racks) pins the hot tenant's
  flows to whichever racks they hash to; those racks saturate while
  their neighbours idle, so the fabric p99 and the hot tenant's SLO
  attainment fall apart under skew -- even though every rack is
  internally load-aware.
* ``power_of_2`` (two sampled racks per decision) and ``shortest_wait``
  (RackSched-style periodic rack samples) close the imbalance per-rack
  policies cannot see, holding p99 near the one-rack baseline and every
  tenant near full attainment.
* Under a uniform tenant mix all policies look alike -- cross-rack
  steering only pays when tenancy is skewed, which is the point.

Every (policy, mix) cell is one :class:`~repro.runner.PointSpec` routed
through :mod:`repro.runner`, so the sweep fans out over ``--jobs``
workers, caches per point, and is bit-identical serial vs parallel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.topology import RackConfig
from repro.datacenter.topology import DatacenterConfig, build_topology
from repro.experiments.common import ExperimentResult, scaled
from repro.runner import PointSpec, ref, run_points
from repro.workload.service import Exponential
from repro.workload.tenants import (
    TenantClass,
    TenantConnectionPool,
    TenantMix,
)

#: Mean per-request service time (the quickstart's 1 us RPC handlers).
SERVICE_NS = 1_000.0

#: Fabric shape: R racks x S servers x C cores (Altocumulus inside,
#: power-of-2 across servers -- the rack tier's winner -- so any tail
#: left over is the inter-rack layer's responsibility).
N_RACKS = 4
N_SERVERS = 4
CORES_PER_SERVER = 8

#: Offered load as a fraction of aggregate fabric capacity.
LOAD_FRACTION = 0.7

#: Inter-rack steering policies compared.
POLICIES: Tuple[Tuple[str, dict], ...] = (
    ("hash", {"policy": "hash"}),
    ("power_of_2", {"policy": "power_of_d", "d": 2}),
    ("shortest_wait", {"policy": "shortest_wait"}),
)

#: Tenant mixes swept.  Shares sum to 1; ``slo_ns`` is each tenant's
#: latency target.  The skewed mix concentrates a dominant tenant on few
#: connections at high Zipf skew, so flow hashing pins most of the
#: fabric's load onto the racks its hot flows map to.
TENANT_MIXES: Dict[str, Tuple[TenantClass, ...]] = {
    "uniform": (
        TenantClass("web", 0.34, slo_ns=10 * SERVICE_NS, n_connections=4096),
        TenantClass("cache", 0.33, slo_ns=10 * SERVICE_NS, n_connections=4096),
        TenantClass("batch", 0.33, slo_ns=50 * SERVICE_NS, n_connections=4096),
    ),
    "skewed": (
        TenantClass("hot", 0.6, slo_ns=10 * SERVICE_NS, zipf_s=1.3,
                    n_connections=64),
        TenantClass("cache", 0.25, slo_ns=10 * SERVICE_NS, zipf_s=1.1,
                    n_connections=4096),
        TenantClass("batch", 0.15, slo_ns=50 * SERVICE_NS, n_connections=4096),
    ),
}


def datacenter_builder(
    sim,
    streams,
    mix: str = "skewed",
    policy: str = "shortest_wait",
    d: int = 2,
    n_racks: int = N_RACKS,
    n_servers: int = N_SERVERS,
    cores_per_server: int = CORES_PER_SERVER,
):
    """Module-level (picklable) datacenter builder for sweep workers."""
    return build_topology(
        sim,
        streams,
        DatacenterConfig(
            n_racks=n_racks,
            rack=RackConfig(
                n_servers=n_servers,
                cores_per_server=cores_per_server,
                system="altocumulus",
                policy="power_of_d",
                d=2,
            ),
            policy=policy,
            d=d,
            tenants=TENANT_MIXES[mix],
        ),
    )


def tenant_pool(mix: str = "skewed") -> TenantConnectionPool:
    """The tenant-partitioned connection mix every sweep point shares."""
    return TenantConnectionPool(TenantMix(TENANT_MIXES[mix]))


def _specs(n_requests: int, seed: int) -> List[PointSpec]:
    capacity = N_RACKS * N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
    specs: List[PointSpec] = []
    for mix in TENANT_MIXES:
        for name, polkw in POLICIES:
            specs.append(
                PointSpec(
                    builder=ref(datacenter_builder, mix=mix, **polkw),
                    service=Exponential(SERVICE_NS),
                    rate_rps=LOAD_FRACTION * capacity,
                    n_requests=n_requests,
                    seed=seed,
                    connections=ref(tenant_pool, mix=mix),
                    slo_ns=10 * SERVICE_NS,
                    tag=f"datacenter:{mix}:{name}",
                )
            )
    return specs


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the inter-rack steering x tenant skew comparison."""
    n_requests = scaled(30_000, scale)
    specs = _specs(n_requests, seed)
    results = run_points(specs, label="fig_datacenter")

    rows: List[List[object]] = []
    series: dict = {}
    cursor = 0
    for mix in TENANT_MIXES:
        tenant_names = [t.name for t in TENANT_MIXES[mix]]
        for name, _polkw in POLICIES:
            point = results[cursor]
            cursor += 1
            attain = [
                point.extra.get(f"tenant.{t}.attainment", 1.0)
                for t in tenant_names
            ]
            rows.append([
                mix,
                name,
                round(point.p99_ns / 1000.0, 2),
                round(point.mean_ns / 1000.0, 2),
                round(point.throughput_rps / 1e6, 2),
                round(point.extra.get("datacenter.imbalance_index", 0.0), 3),
                " ".join(
                    f"{t}={a:.3f}" for t, a in zip(tenant_names, attain)
                ),
                point.dropped,
            ])
            series[f"{mix}:{name}"] = [point.p99_ns / 1000.0]
    return ExperimentResult(
        exp_id="fig_datacenter",
        title="datacenter-scale inter-rack steering (multi-tenant skew)",
        headers=["mix", "policy", "p99_us", "mean_us", "thr_mrps",
                 "rack_imbalance", "slo_attainment", "dropped"],
        rows=rows,
        notes=(
            f"{N_RACKS} racks x {N_SERVERS} Altocumulus servers x "
            f"{CORES_PER_SERVER} cores behind a spine switch at "
            f"{LOAD_FRACTION:.0%} load,\nexponential 1 us service; racks "
            "internally steer with power-of-2.\nrack_imbalance = max/mean "
            "of per-rack completions (1.0 = even).\nExpect inter-rack hash "
            "to blow up p99 and the hot tenant's attainment\nunder the "
            "skewed mix (hot flows pin to few racks), while power-of-2\n"
            "and shortest-wait hold both; under the uniform mix the "
            "policies tie."
        ),
        series=series,
    )
