"""Job-structured requests: scatter-gather fan-out and multi-core gangs.

Not a paper artifact -- the flagship experiment of the job model
(:mod:`repro.workload.jobs`).  Two panels:

* **Panel A -- fan-out vs steering.**  A rack runs scatter-gather jobs
  of width ``k`` in {1, 2, 4, 8} at constant *sub-request* load (the
  job rate shrinks as ``1/k``), across four sibling-routing policies.
  Connection-hash steering with shared sibling flows pins every scatter
  to one server -- a self-inflicted k-request incast whose job p99
  blows up with ``k`` (tail-at-scale: the job completes on its slowest
  sibling, and hash makes all siblings share one queue).  The spread
  policy statically stripes siblings across servers; shortest-wait
  finds the same mitigation dynamically.  The gap between hash and
  either mitigation *grows* with ``k`` -- the regression gate in
  tests/test_fanout_gate.py pins that separation.

* **Panel B -- gang admission and the zero-queueing boundary.**  A
  single c-FCFS server runs multi-core jobs of demand ``c`` in
  {1, 2, 4} over a sweep of *core* load (the job rate shrinks as
  ``1/c``, so every cell offers the same core-seconds).  Gang admission
  holds a demand-``c`` job at the queue head until ``c`` cores are
  simultaneously idle, so the admission wait is driven by the
  idle-coincidence probability: at low core load every demand admits
  with near-zero wait (the zero-queueing regime of "Zero Queueing for
  Multi-Server Jobs"), while past a demand-dependent load boundary the
  head-of-line gang blocks the whole queue and waits diverge -- wider
  gangs cross the boundary at *lower* core load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult, scaled
from repro.experiments.fig_rack import rack_builder
from repro.runner import PointSpec, ref, run_points
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.jobs import FixedDegree, JobShape
from repro.workload.service import Exponential

#: Panel A rack shape: small servers make the k-wide incast visible at
#: moderate fan-out (k=8 saturates one 8-core server's worth of queue).
N_SERVERS = 4
CORES_PER_SERVER = 8
SERVICE_NS = 1000.0

#: Sub-request load for panel A, as a fraction of aggregate capacity.
#: 0.65 puts the hash incast well past the knee (the hash-vs-mitigated
#: p99 gap grows monotonically with k) while the mitigated policies
#: stay comfortably stable.
FANOUT_LOAD_FRACTION = 0.65

#: Scatter widths swept in panel A.
FANOUTS: Tuple[int, ...] = (1, 2, 4, 8)

#: Sibling-routing policies compared in panel A.
FANOUT_POLICIES: Tuple[str, ...] = ("hash", "sticky", "spread",
                                    "shortest_wait")

#: Panel B server shape and sweep: gang demands x core-load fractions.
GANG_CORES = 8
GANG_DEMANDS: Tuple[int, ...] = (1, 2, 4)
GANG_LOADS: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.85)


def gang_builder(sim, streams, n_cores: int = GANG_CORES):
    """Module-level (picklable) single-server gang-capable builder."""
    return ideal_cfcfs(sim, streams, n_cores)


def gang_admission_metrics(result) -> Dict[str, float]:
    """Admission wait of measured sub-requests: enqueue to dispatch.

    For a gang this is exactly the time the job spent at the queue head
    (plus its queueing behind earlier work) waiting for ``c`` cores to
    coincide idle -- the quantity whose collapse defines the
    zero-queueing regime.
    """
    waits = [
        r.started - r.enqueued
        for r in result.requests
        if r.started is not None and r.enqueued is not None
    ]
    if not waits:
        return {"mean_wait_ns": float("nan"), "p99_wait_ns": float("nan")}
    return {
        "mean_wait_ns": float(np.mean(waits)),
        "p99_wait_ns": float(np.percentile(waits, 99.0)),
    }


def _fanout_specs(
    base_jobs: int, seed: int
) -> List[Tuple[str, int, PointSpec]]:
    """One spec per (policy x k), constant sub-request load."""
    capacity = N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
    sub_rate = FANOUT_LOAD_FRACTION * capacity
    specs: List[Tuple[str, int, PointSpec]] = []
    for policy in FANOUT_POLICIES:
        for k in FANOUTS:
            n_jobs = max(1_000, base_jobs // k)
            specs.append((
                policy,
                k,
                PointSpec(
                    builder=ref(rack_builder, n_servers=N_SERVERS,
                                cores_per_server=CORES_PER_SERVER,
                                policy=policy),
                    service=Exponential(SERVICE_NS),
                    rate_rps=sub_rate / k,
                    n_requests=n_jobs,
                    seed=seed,
                    jobs=JobShape(fanout=FixedDegree(k),
                                  sibling_connections="shared"),
                    tag=f"fanout:{policy}:k{k}",
                ),
            ))
    return specs


def _gang_specs(
    base_jobs: int, seed: int
) -> List[Tuple[int, float, PointSpec]]:
    """One spec per (demand x core load), constant offered core-seconds."""
    specs: List[Tuple[int, float, PointSpec]] = []
    for demand in GANG_DEMANDS:
        for load in GANG_LOADS:
            job_rate = load * GANG_CORES / (SERVICE_NS * demand) * 1e9
            n_jobs = max(1_000, base_jobs // demand)
            specs.append((
                demand,
                load,
                PointSpec(
                    builder=ref(gang_builder, n_cores=GANG_CORES),
                    service=Exponential(SERVICE_NS),
                    rate_rps=job_rate,
                    n_requests=n_jobs,
                    seed=seed,
                    metrics=ref(gang_admission_metrics),
                    jobs=JobShape(core_demand=FixedDegree(demand)),
                    tag=f"gang:c{demand}:rho{load}",
                ),
            ))
    return specs


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the fan-out / gang-admission comparison."""
    fanout = _fanout_specs(scaled(16_000, scale), seed)
    gang = _gang_specs(scaled(12_000, scale), seed)
    results = run_points(
        [spec for _, _, spec in fanout] + [spec for _, _, spec in gang],
        label="fig_fanout",
    )
    fanout_results = results[:len(fanout)]
    gang_results = results[len(fanout):]

    rows: List[List[object]] = []
    series: Dict[str, List[Optional[float]]] = {}
    for (policy, k, spec), point in zip(fanout, fanout_results):
        # k=1 compiles down to the flat request path (no job.* extras by
        # contract); a 1-wide job's latency IS its request's latency.
        job_p99 = point.extra.get("job.p99_ns", point.latency.p99)
        job_mean = point.extra.get("job.mean_ns", point.latency.mean)
        series.setdefault(f"fanout:{policy}", []).append(job_p99 / 1000.0)
        rows.append([
            "fanout",
            policy,
            k,
            round(job_p99 / 1000.0, 2),
            round(job_mean / 1000.0, 2),
            int(point.extra.get("job.completed", point.latency.count)),
            int(point.extra.get("job.dropped", point.dropped)),
        ])
    for (demand, load, spec), point in zip(gang, gang_results):
        wait = point.metrics.get("mean_wait_ns")
        series.setdefault(f"gang:c{demand}", []).append(
            None if wait is None or wait != wait else wait / 1000.0
        )
        rows.append([
            "gang",
            f"c={demand}",
            load,
            round(point.extra.get("job.p99_ns", point.latency.p99) / 1000.0,
                  2),
            "-" if wait is None or wait != wait
            else round(wait / 1000.0, 3),
            # c=1 compiles down to the flat path (no job.* extras), so a
            # 1-wide job's completions are its requests'.
            int(point.extra.get("job.completed", point.latency.count)),
            int(point.extra.get("job.dropped", point.dropped)),
        ])
    return ExperimentResult(
        exp_id="fig_fanout",
        title="scatter-gather fan-out and multi-core gang admission",
        headers=["panel", "cell", "k_or_load", "job_p99_us",
                 "mean_us_or_wait", "completed", "dropped"],
        rows=rows,
        notes=(
            f"Panel A (fanout): {N_SERVERS}x{CORES_PER_SERVER}-core rack "
            f"at {FANOUT_LOAD_FRACTION:.0%} sub-request load; jobs "
            "scatter k shared-flow siblings and complete on the last "
            "response.\nHash steering pins each scatter to one server "
            "(incast: job p99 blows up with k); spread stripes siblings "
            "statically and shortest-wait dynamically -- the hash gap "
            "grows with k.\n"
            f"Panel B (gang): one {GANG_CORES}-core c-FCFS server; "
            "demand-c jobs hold the queue head until c cores are idle "
            "at once.  mean_us_or_wait is the mean admission wait -- "
            "near zero in the low-load zero-queueing regime, diverging "
            "past a boundary that wider gangs hit at lower core load."
        ),
        series=series,
    )
