"""Rack-scale steering study: servers x offered load x policy.

Not a paper artifact -- the first experiment of the cluster tier that
grows the reproduction beyond one machine.  A rack of identical
Altocumulus servers sits behind a ToR switch
(:mod:`repro.cluster.switch`) and an inter-server steering policy
(:mod:`repro.cluster.policies`); traffic is connection-skewed (Zipf hot
flows), the regime where load-oblivious steering pins hot flows to one
server.

The sweep asks the RackSched question: given near-perfect *intra*-server
scheduling, how much rack-level tail does the *inter*-server layer leave
on the table?  Expected shape:

* ``hash`` (RSS/ECMP-style) falls apart as load grows -- the hot-flow
  server saturates while its neighbours idle (imbalance well above 1).
* ``round_robin`` fixes request-count imbalance but still ignores
  queue-depth skew from service-time variance.
* ``power_of_d`` (d=2 sampled queues) and ``shortest_wait`` (RackSched's
  periodically-sampled shortest expected wait) track the aggregate
  capacity almost perfectly; stale variants degrade gracefully toward
  round-robin.

Every (servers, load, policy) cell is one
:class:`~repro.runner.PointSpec` routed through :mod:`repro.runner`, so
the sweep fans out over ``--jobs`` workers, caches per point, and is
bit-identical serial vs parallel like every other experiment.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.topology import RackConfig, build_rack
from repro.experiments.common import ExperimentResult, scaled
from repro.runner import PointSpec, ref, run_points
from repro.workload.connections import ConnectionPool
from repro.workload.service import Exponential

#: Mean per-request service time (the quickstart's 1 us RPC handlers).
SERVICE_NS = 1_000.0

#: Rack-level SLO: p99 under 10x mean service.
SLO_NS = 10.0 * SERVICE_NS

#: Rack shapes swept: (n_servers, cores_per_server).
RACK_SHAPES: Tuple[Tuple[int, int], ...] = ((4, 16), (8, 16))

#: Offered load as a fraction of aggregate rack capacity.
LOAD_FRACTIONS: Tuple[float, ...] = (0.5, 0.7, 0.85)

#: Steering policies compared; extra kwargs parameterize the builder.
POLICIES: Tuple[Tuple[str, dict], ...] = (
    ("hash", {"policy": "hash"}),
    ("round_robin", {"policy": "round_robin"}),
    ("power_of_2", {"policy": "power_of_d", "d": 2}),
    ("power_of_2_stale", {"policy": "power_of_d", "d": 2,
                          "staleness_ns": 10_000.0}),
    ("shortest_wait", {"policy": "shortest_wait"}),
)

#: Hot-flow traffic: few connections dominate, so hash steering pins
#: them to one server.  1024 flows at Zipf 1.1 puts ~28% of traffic on
#: the hottest flow.
CONNECTIONS = 1024
ZIPF_S = 1.1


def rack_builder(
    sim,
    streams,
    n_servers: int = 4,
    cores_per_server: int = 16,
    system: str = "altocumulus",
    policy: str = "power_of_d",
    d: int = 2,
    staleness_ns: float = 0.0,
    sample_period_ns: float = 2_000.0,
):
    """Module-level (picklable) rack builder for sweep workers."""
    return build_rack(
        sim,
        streams,
        RackConfig(
            n_servers=n_servers,
            cores_per_server=cores_per_server,
            system=system,
            policy=policy,
            d=d,
            staleness_ns=staleness_ns,
            sample_period_ns=sample_period_ns,
        ),
    )


def skewed_connections() -> ConnectionPool:
    """The hot-flow connection mix every sweep point shares."""
    return ConnectionPool.skewed(CONNECTIONS, zipf_s=ZIPF_S)


def _specs(n_requests: int, seed: int) -> List[PointSpec]:
    specs: List[PointSpec] = []
    for n_servers, cores in RACK_SHAPES:
        capacity = n_servers * cores / SERVICE_NS * 1e9
        for name, polkw in POLICIES:
            for fraction in LOAD_FRACTIONS:
                specs.append(
                    PointSpec(
                        builder=ref(rack_builder, n_servers=n_servers,
                                    cores_per_server=cores, **polkw),
                        service=Exponential(SERVICE_NS),
                        rate_rps=fraction * capacity,
                        n_requests=n_requests,
                        seed=seed,
                        connections=ref(skewed_connections),
                        slo_ns=SLO_NS,
                        tag=f"rack:{n_servers}x{cores}:{name}:{fraction}",
                    )
                )
    return specs


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Regenerate the rack-scale steering comparison."""
    n_requests = scaled(30_000, scale)
    specs = _specs(n_requests, seed)
    results = run_points(specs, label="fig_rack")

    rows: List[List[object]] = []
    series: dict = {}
    cursor = 0
    for n_servers, cores in RACK_SHAPES:
        for name, _polkw in POLICIES:
            p99_curve: List[Optional[float]] = []
            for fraction in LOAD_FRACTIONS:
                point = results[cursor]
                cursor += 1
                p99_us = point.p99_ns / 1000.0
                p99_curve.append(p99_us)
                rows.append([
                    f"{n_servers}x{cores}",
                    name,
                    fraction,
                    round(p99_us, 2),
                    round(point.mean_ns / 1000.0, 2),
                    round(point.throughput_rps / 1e6, 2),
                    round(point.instruments.get("cluster.imbalance_index", 0.0), 3),
                    point.violation_ratio or 0.0,
                    point.dropped,
                ])
            series[f"{n_servers}x{cores}:{name}"] = p99_curve
    return ExperimentResult(
        exp_id="fig_rack",
        title="rack-scale inter-server steering (skewed flows)",
        headers=["rack", "policy", "load", "p99_us", "mean_us",
                 "thr_mrps", "imbalance", "viol", "dropped"],
        rows=rows,
        notes=(
            "Racks of Altocumulus servers behind a ToR switch; traffic is\n"
            f"connection-skewed (Zipf {ZIPF_S} over {CONNECTIONS} flows), "
            "exponential 1 us service.\n"
            "imbalance = max/mean of per-server completions (1.0 = even).\n"
            "Expect hash steering to blow up its p99 and imbalance as load\n"
            "grows (hot flows pin to one server), round-robin to fix counts\n"
            "but not queue skew, and power-of-2 / shortest-wait to hold the\n"
            "SLO close to aggregate capacity; staleness degrades p2c only\n"
            "mildly thanks to optimistic in-flight tracking."
        ),
        series=series,
    )
