"""Quickstart: one small Altocumulus run with its telemetry surfaced.

Not a paper artifact -- this is the smoke-test experiment the telemetry
layer is demonstrated on::

    altocumulus-exp quickstart --trace trace.json --metrics-out m.json

It drives a single 32-core Altocumulus server at moderate load and
reports the headline instruments from the system's metric registry.
Because the run executes in-process (``--trace`` forces serial
execution), the capture context sees every request lifecycle, so the
exported Chrome trace contains the full per-request span chain
(nic_delivery -> netrx_queue -> dispatch -> worker_queue -> service ->
completed) plus NoC message spans.
"""

from __future__ import annotations

from typing import List

from repro.api import quick_run
from repro.experiments.common import ExperimentResult, scaled

#: The run shape: one tuned server, ~50% of saturation, 1us mean service.
N_CORES = 32
RATE_RPS = 12e6
MEAN_SERVICE_NS = 1000.0

#: Registry instruments surfaced in the table (missing ones are skipped,
#: so the table stays valid if a subsystem is reconfigured away).
HEADLINE_INSTRUMENTS = (
    "system.offered",
    "system.completed",
    "system.dropped",
    "system.scheduling_ops",
    "sched.descriptors_received",
    "sched.sw_migrate_descriptors",
    "sched.predicted_unique",
    "noc.messages",
    "noc.bytes",
    "nic.delivered",
)


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Run the quickstart workload and tabulate its telemetry."""
    n_requests = scaled(20_000, scale)
    result = quick_run(
        "altocumulus",
        n_cores=N_CORES,
        rate_rps=RATE_RPS,
        mean_service_ns=MEAN_SERVICE_NS,
        n_requests=n_requests,
        seed=seed,
    )
    rows: List[List[object]] = [
        ["latency.p50_us", round(result.latency.p50 / 1000.0, 3)],
        ["latency.p99_us", round(result.latency.p99 / 1000.0, 3)],
        ["throughput_mrps", round(result.throughput_rps / 1e6, 3)],
        ["utilization", round(result.utilization, 3)],
    ]
    for name in HEADLINE_INSTRUMENTS:
        if name in result.metrics:
            rows.append([name, result.metrics[name]])
    return ExperimentResult(
        exp_id="quickstart",
        title="telemetry smoke run (1 server, 32 cores)",
        headers=["metric", "value"],
        rows=rows,
        notes=(
            f"One Altocumulus server, {N_CORES} cores, Poisson "
            f"{RATE_RPS / 1e6:.0f} MRPS, exponential "
            f"{MEAN_SERVICE_NS:.0f}ns service, {n_requests} requests.\n"
            "Run with --trace PATH to export a Chrome-loadable request "
            "trace,\nand --metrics-out PATH for the full registry "
            "snapshot as JSON."
        ),
        series={"metrics": dict(result.metrics)},
    )
