"""The experiment registry: id -> (module, description, run function).

Lazily imports experiment modules so ``import repro`` stays cheap.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry entry: where an experiment lives and what it shows."""

    module: str
    description: str

    def __post_init__(self) -> None:
        if not self.description.strip():
            raise ValueError(f"experiment {self.module} needs a description")


#: Experiment id -> module + one-line description (each module exposes
#: ``run(scale, seed)``).
EXPERIMENTS: Dict[str, ExperimentInfo] = {
    "quickstart": ExperimentInfo(
        "repro.experiments.quickstart",
        "telemetry smoke run: one small server, registry + trace demo",
    ),
    "fig01": ExperimentInfo(
        "repro.experiments.fig01_stack_latency",
        "on-CPU latency: processing vs scheduling across stack generations",
    ),
    "fig03": ExperimentInfo(
        "repro.experiments.fig03_overhead",
        "sustainable load vs per-request scheduling overhead (64 cores)",
    ),
    "tab1": ExperimentInfo(
        "repro.experiments.tab1_comparison",
        "design-space comparison of the eight implemented systems",
    ),
    "fig07": ExperimentInfo(
        "repro.experiments.fig07_prediction",
        "SLO-violation prediction: threshold analysis and calibration",
    ),
    "fig09": ExperimentInfo(
        "repro.experiments.fig09_imbalance",
        "NetRX queue imbalance under load-oblivious NIC steering",
    ),
    "fig10": ExperimentInfo(
        "repro.experiments.fig10_comparison",
        "latency-throughput curves: AC variants vs all baselines",
    ),
    "fig11": ExperimentInfo(
        "repro.experiments.fig11_parameters",
        "migration-parameter sensitivity (period, bulk, concurrency)",
    ),
    "fig12": ExperimentInfo(
        "repro.experiments.fig12_effectiveness",
        "migration effectiveness breakdown via counterfactual ETAs",
    ),
    "fig13": ExperimentInfo(
        "repro.experiments.fig13_scalability",
        "MICA scalability, case studies, SLO-target sensitivity",
    ),
    "fig14": ExperimentInfo(
        "repro.experiments.fig14_endtoend",
        "end-to-end MICA KVS latency-throughput comparison",
    ),
    "tab2_tab3": ExperimentInfo(
        "repro.experiments.tab2_tab3",
        "hardware cost model: area, power, and interface latencies",
    ),
    # Not paper artifacts: the design-choice ablations DESIGN.md lists,
    # the closed-form queueing validation behind every measurement, and
    # the rack- and datacenter-scale tiers that grow the reproduction
    # beyond one server.
    "ablations": ExperimentInfo(
        "repro.experiments.ablations",
        "design-choice ablations over the Altocumulus mechanism set",
    ),
    "validation": ExperimentInfo(
        "repro.experiments.validation",
        "closed-form queueing validation (M/M/1, M/D/1, M/G/1, M/M/k)",
    ),
    "fig_rack": ExperimentInfo(
        "repro.experiments.fig_rack",
        "rack-scale tier: servers x load x inter-server steering policy",
    ),
    "fig_chaos": ExperimentInfo(
        "repro.experiments.fig_chaos",
        "fault injection: mid-run server crash vs steering policies",
    ),
    "fig_datacenter": ExperimentInfo(
        "repro.experiments.fig_datacenter",
        "datacenter tier: inter-rack steering x multi-tenant skew",
    ),
    "fig_adaptive": ExperimentInfo(
        "repro.experiments.fig_adaptive",
        "control plane: adaptive controllers vs static steering policies",
    ),
    "fig_fanout": ExperimentInfo(
        "repro.experiments.fig_fanout",
        "job model: scatter-gather fan-out x steering, gang admission",
    ),
    "fig_contention": ExperimentInfo(
        "repro.experiments.fig_contention",
        "data layer: ownership discipline x hot-key skew x migration",
    ),
}


def list_experiments() -> List[str]:
    """All experiment ids, in paper order."""
    return list(EXPERIMENTS)


def experiment_description(exp_id: str) -> str:
    """One-line description of a registered experiment."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id].description


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id to its ``run(scale, seed)`` function."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[exp_id].module)
    return module.run
