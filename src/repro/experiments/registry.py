"""The experiment registry: id -> run function.

Lazily imports experiment modules so ``import repro`` stays cheap.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List

from repro.experiments.common import ExperimentResult

#: Experiment id -> module path (each module exposes ``run``).
EXPERIMENTS: Dict[str, str] = {
    "fig01": "repro.experiments.fig01_stack_latency",
    "fig03": "repro.experiments.fig03_overhead",
    "tab1": "repro.experiments.tab1_comparison",
    "fig07": "repro.experiments.fig07_prediction",
    "fig09": "repro.experiments.fig09_imbalance",
    "fig10": "repro.experiments.fig10_comparison",
    "fig11": "repro.experiments.fig11_parameters",
    "fig12": "repro.experiments.fig12_effectiveness",
    "fig13": "repro.experiments.fig13_scalability",
    "fig14": "repro.experiments.fig14_endtoend",
    "tab2_tab3": "repro.experiments.tab2_tab3",
    # Not paper artifacts: the design-choice ablations DESIGN.md lists,
    # and the closed-form queueing validation behind every measurement.
    "ablations": "repro.experiments.ablations",
    "validation": "repro.experiments.validation",
}


def list_experiments() -> List[str]:
    """All experiment ids, in paper order."""
    return list(EXPERIMENTS)


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id to its ``run(scale, seed)`` function."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {', '.join(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[exp_id])
    return module.run
