"""Table I -- qualitative comparison of scheduler designs.

Static content (the table catalogues design points, not measurements),
rendered through the same harness so the full artifact set regenerates
uniformly.  Every row corresponds to a system implemented in this
repository; the "module" column maps the design point to its code.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

_ROWS = [
    [
        "ZygOS",
        "high s/w stealing rate",
        "d-FCFS + work stealing",
        "s/w, kernel-based",
        "shared caches",
        "repro.schedulers.work_stealing",
    ],
    [
        "IX",
        "imbalance",
        "d-FCFS",
        "s/w, kernel-based",
        "shared caches",
        "repro.schedulers.rss.IxSystem",
    ],
    [
        "Shinjuku",
        "imbalance, dispatcher throughput",
        "c-FCFS",
        "s/w, kernel-based",
        "shared caches",
        "repro.schedulers.centralized",
    ],
    [
        "eRSS",
        "imbalance, interconnects",
        "d-FCFS",
        "h/w, NIC RSS",
        "PCIe",
        "repro.schedulers.rss.RssSystem",
    ],
    [
        "nanoPU",
        "register file size, NoC",
        "c-FCFS (JBSQ)",
        "h/w, NIC-based",
        "register files",
        "repro.schedulers.jbsq.nanopu",
    ],
    [
        "RPCValet",
        "limited cohe. domain size, mem. b/w",
        "c-FCFS (JBSQ)",
        "h/w, NIC-based",
        "NIC",
        "repro.schedulers.jbsq.rpcvalet",
    ],
    [
        "Nebula",
        "limited coherence domain size",
        "c-FCFS (JBSQ)",
        "h/w, NIC-based",
        "NIC",
        "repro.schedulers.jbsq.nebula",
    ],
    [
        "Altocumulus",
        "mis-prediction penalty, NoC",
        "global d-FCFS, local c-FCFS",
        "h/w, SLO-aware user-level",
        "migration channel & shared caches",
        "repro.core.scheduler",
    ],
]


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Render Table I (design-space comparison)."""
    return ExperimentResult(
        exp_id="tab1",
        title="Comparison of Altocumulus with prior art (Table I)",
        headers=[
            "system",
            "scalability bottleneck",
            "scheduling scheme",
            "scheduling manager",
            "communication",
            "module",
        ],
        rows=[list(r) for r in _ROWS],
        notes="Static design-space table; every listed system is implemented.",
    )
