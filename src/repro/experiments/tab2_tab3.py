"""Tables II & III -- the message protocol and the instruction set,
rendered *from the implementation* rather than hand-copied.

Table II's rows come from :mod:`repro.hw.messaging` (message kinds,
payload sizes, the registers they touch); Table III's from
:mod:`repro.core.isa` (mnemonics, per-issue cost under both interface
lowerings).  Regenerating them from code keeps the documentation honest:
if the implementation drifts, the artifact changes.
"""

from __future__ import annotations

from repro.core.interface import HwInterface
from repro.core.isa import tick_instruction_budget
from repro.experiments.common import ExperimentResult
from repro.hw.constants import DEFAULT_CONSTANTS
from repro.hw.messaging import (
    ACK_BYTES,
    MIGRATE_HEADER_BYTES,
    UPDATE_BYTES,
    MessageType,
)

_MESSAGE_DESCRIPTIONS = {
    MessageType.PREDICT_CONFIG: (
        "configure PRs to adjust migration parameters",
        "core-local (no NoC traffic)",
        "<reg addr, reg value>",
    ),
    MessageType.MIGRATE: (
        "proactively dequeue RPCs from the MR tail to destination queue(s)",
        f"header {MIGRATE_HEADER_BYTES}B + n x "
        f"{DEFAULT_CONSTANTS.mr_entry_bytes}B descriptors",
        "S, QD, *MR[Tail]",
    ),
    MessageType.UPDATE: (
        "broadcast local queue length to all other managers",
        f"{UPDATE_BYTES}B, one unicast per peer",
        "<q>",
    ),
    MessageType.ACK: (
        "acknowledge completion of a MIGRATE (source forgets descriptors)",
        f"{ACK_BYTES}B",
        "-",
    ),
    MessageType.NACK: (
        "reject a MIGRATE (full receive FIFO / MRs); source restores, "
        "never replays",
        f"{ACK_BYTES}B",
        "-",
    ),
}


def run(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Render Tables II & III from the implementation."""
    rows = []
    for kind in MessageType:
        desc, wire, fmt = _MESSAGE_DESCRIPTIONS[kind]
        rows.append(["II", kind.value, desc, wire, fmt])

    isa, msr = HwInterface.isa(), HwInterface.msr()
    instructions = [
        ("altom_send r1,r2,r3",
         "send local MR offset content to a peer MR with a batch size",
         isa.access_ns, msr.access_ns),
        ("altom_status r3,r4,r5",
         "return local head, tail and threshold pointers",
         isa.access_ns, msr.access_ns),
        ("altom_update r6,q<n,1>",
         "update local rx queue depth to all managers (vector reg)",
         isa.access_ns, 16 * msr.access_ns),
        ("altom_predict_config r7",
         "update migration-related registers",
         isa.access_ns, msr.access_ns),
    ]
    for mnemonic, desc, isa_ns, msr_ns in instructions:
        rows.append(["III", mnemonic, desc,
                     f"{isa_ns:.1f} ns", f"{msr_ns:.0f} ns (MSR lowering)"])

    budget_isa = tick_instruction_budget(isa, n_managers=16, migrate_sends=3)
    budget_msr = tick_instruction_budget(msr, n_managers=16, migrate_sends=3)
    return ExperimentResult(
        exp_id="tab2_tab3",
        title="Message protocol (Table II) and instruction set (Table III)",
        headers=["table", "name", "description", "cost/wire", "format"],
        rows=rows,
        notes=(
            "Rendered from repro.hw.messaging and repro.core.isa.\n"
            f"One Algorithm-1 tick on a 16-manager machine issues this\n"
            f"stream for {budget_isa:.0f} ns under the custom ISA vs "
            f"{budget_msr:.0f} ns under MSR syscalls\n"
            "-- the gap behind Fig. 14's ISA/MSR split."
        ),
    )
