"""Simulator validation artifact: measured vs closed-form mean waits.

Not a paper figure -- this is the credibility check behind every other
artifact: the DES must agree with M/M/1, M/D/1, M/G/1 (P-K) and M/M/k
(Erlang-C) closed forms before its scheduling comparisons mean anything.
"""

from __future__ import annotations

from repro.analysis.validation import validate_simulator
from repro.experiments.common import ExperimentResult, scaled


def run(scale: float = 1.0, seed: int = 29) -> ExperimentResult:
    """Run the closed-form queueing validation."""
    n_requests = scaled(120_000, scale, minimum=30_000)
    points = validate_simulator(n_requests=n_requests, seed=seed)
    rows = [
        [p.model, p.k, p.rho, p.predicted_wait_ns, p.measured_wait_ns,
         p.relative_error]
        for p in points
    ]
    worst = max(p.relative_error for p in points)
    return ExperimentResult(
        exp_id="validation",
        title="DES vs closed-form queueing theory (mean waits, ns)",
        headers=["model", "k", "rho", "predicted_ns", "measured_ns",
                 "rel_error"],
        rows=rows,
        notes=(
            f"Worst relative error: {worst:.1%}. A healthy simulator sits\n"
            "well under 10% at this sample size; the benchmark gates on 15%."
        ),
    )
