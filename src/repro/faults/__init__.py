"""Deterministic, seeded fault injection for the Altocumulus repro.

The paper's claim is that scheduling stays sound under pressure;
this package supplies the pressure.  A :class:`FaultPlan` schedules
server crashes, core stalls, ToR port degradation/partition, NIC drop
bursts, and manager failures at absolute simulator times; the
:class:`FaultInjector` wires the plan into a live system (single server
or rack); the :class:`RetryClient` absorbs the damage with per-request
timeouts, capped exponential backoff retries, and KVS-layer duplicate
detection.  Everything draws from dedicated RNG streams, so faulted
runs are bit-reproducible and fault-free runs are bit-identical to the
pre-fault engine (both pinned by the golden determinism gate).

See ``docs/faults.md`` for the plan schema, the determinism contract,
and the telemetry the layer emits.
"""

from repro.faults.client import RetryClient
from repro.faults.health import ALL_HEALTHY, DEFAULT_DEGRADED_PENALTY, HealthView
from repro.faults.injector import NULL_FAULTS, FaultInjector, NullFaults
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    ONESHOT_KINDS,
    PAIRED_KINDS,
    RECOVERY_KINDS,
    RetryPolicy,
)
from repro.faults.runtime import active_fault_plan, use_fault_plan

__all__ = [
    "ALL_HEALTHY",
    "DEFAULT_DEGRADED_PENALTY",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "HealthView",
    "NULL_FAULTS",
    "NullFaults",
    "ONESHOT_KINDS",
    "PAIRED_KINDS",
    "RECOVERY_KINDS",
    "RetryClient",
    "RetryPolicy",
    "active_fault_plan",
    "use_fault_plan",
]
