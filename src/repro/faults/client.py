"""The retrying client that sits between the load generator and a
(possibly faulty) system.

With no fault plan attached the generator offers requests straight into
the system and the system's own ``expect()`` terminates the run.  With a
plan, requests can vanish (crashed server, NIC burst, partition) or
complete twice (a timed-out attempt finishing after its retry), so the
client takes over both delivery and termination:

* every *logical* request (one generator emission) is sent as attempt 0;
* an attempt with no response within ``retry.timeout_ns`` is counted
  ``timed_out`` and -- budget permitting -- re-sent as a fresh attempt
  after capped exponential backoff (jitter drawn from the dedicated
  ``"client_retry"`` stream, so workload streams are unperturbed);
* responses are fenced through the injector (a response from a downed
  server is lost) and deduplicated through the KVS-layer
  :class:`~repro.kvs.dedup.DuplicateDetector` before a logical request
  is marked succeeded;
* the run stops when every logical request has succeeded or exhausted
  its retries -- not when the *system* saw N terminals, since one
  logical request may cost several attempts.

Conservation contract (pinned by the property suite): every attempt the
client sends lands in exactly one terminal bucket, so at shutdown ::

    completed + dropped + timed_out + in_flight_at_end
        == injected + retries

Measurement: analysis reads the generator's original request objects, so
on logical success the client back-stamps the original's ``finished``
timestamp (and clears ``dropped``) with the accepted attempt's
completion time; exhausted requests are marked ``dropped``.  The
re-stamp happens in :meth:`finalize`, after the simulation, so a late
server-side completion of the original cannot overwrite the latency the
client actually observed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.kvs.dedup import DuplicateDetector
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry
from repro.workload.request import Request

from repro.faults.plan import RetryPolicy

#: Attempt req_ids live in their own id space far above any generator
#: id, so per-request telemetry can't collide with workload requests.
_ATTEMPT_ID_BASE = 2**32


class _Logical:
    """Client-side state of one logical request."""

    __slots__ = (
        "original", "attempts_sent", "open_attempts", "succeeded",
        "failed", "success_ns", "resend_event",
    )

    def __init__(self, original: Request) -> None:
        self.original = original
        self.attempts_sent = 0
        self.open_attempts = 0
        self.succeeded = False
        self.failed = False
        self.success_ns = 0.0
        self.resend_event: Optional[Event] = None

    @property
    def terminal(self) -> bool:
        return self.succeeded or self.failed


class RetryClient:
    """Timeout/retry/failover layer over any system's ``offer`` duck."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        system,
        retry: RetryPolicy,
        ingress: Optional[Callable[[Request], None]] = None,
        response_delivered: Optional[Callable[[Request], bool]] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.sim = sim
        self.retry = retry
        self.system = system
        self._ingress = ingress if ingress is not None else system.offer
        #: Response fence: False when the completing attempt's response
        #: was lost (its server is down).  The injector supplies this.
        self._response_delivered = response_delivered
        self._rng = streams.get("client_retry")
        registry = (
            registry
            if registry is not None
            else getattr(system, "metrics", None) or MetricRegistry()
        )
        self.detector = DuplicateDetector(registry)
        self._m_injected = registry.counter("client.retry.injected")
        self._m_retries = registry.counter("client.retry.retries")
        self._m_completed = registry.counter("client.retry.completed")
        self._m_dropped = registry.counter("client.retry.dropped")
        self._m_timed_out = registry.counter("client.retry.timed_out")
        self._m_responses = registry.counter("client.retry.responses")
        self._m_duplicates = registry.counter("client.retry.duplicates")
        self._m_late_successes = registry.counter("client.retry.late_successes")
        self._m_succeeded = registry.counter("client.retry.succeeded")
        self._m_failed = registry.counter("client.retry.failed")
        registry.gauge(
            "client.retry.in_flight_at_end", fn=lambda: self._open_attempts
        )
        self.trace = getattr(system, "trace", None)
        #: Attempt req_id -> (logical, timeout event or None once fired).
        self._attempts: Dict[int, "_Attempt"] = {}
        self._logical: Dict[int, _Logical] = {}
        self._open_attempts = 0
        self._next_attempt_id = _ATTEMPT_ID_BASE
        self._expected: Optional[int] = None
        self._terminal_logical = 0
        #: Called as ``hook(original_request, succeeded)`` at each
        #: logical verdict -- the per-sub-request terminal the job
        #: tracker observes under faults (empty outside job workloads,
        #: so plain fault runs are untouched).
        self.logical_hooks: list = []
        system.completion_hooks.append(self._on_attempt_completed)
        system.drop_hooks.append(self._on_attempt_dropped)

    # ------------------------------------------------------------------
    # Load-generator interface
    # ------------------------------------------------------------------
    def send(self, request: Request) -> None:
        """Sink for the load generator: attempt 0 of a logical request."""
        request.logical_id = request.req_id
        request.attempt = 0
        state = _Logical(request)
        self._logical[request.req_id] = state
        self._m_injected.value += 1
        self._send_attempt(state, request)

    def expect(self, n_requests: int) -> None:
        """Stop the simulation after ``n_requests`` logical terminals."""
        if n_requests <= 0:
            raise ValueError(f"expected count must be positive, got {n_requests}")
        self._expected = n_requests

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------
    def _send_attempt(self, state: _Logical, request: Request) -> None:
        state.attempts_sent += 1
        state.open_attempts += 1
        self._open_attempts += 1
        timeout = self.sim.schedule(
            self.retry.timeout_ns, self._on_timeout, request
        )
        self._attempts[request.req_id] = _Attempt(state, timeout)
        self._ingress(request)

    def _retry_or_fail(self, state: _Logical) -> None:
        """An attempt just went terminal without success."""
        if state.terminal:
            return
        retries_used = state.attempts_sent - 1
        if retries_used >= self.retry.max_retries:
            # Other attempts may still be open (e.g. timed out but alive
            # inside the server); the logical verdict doesn't wait for
            # them -- a real client has answered its caller by now.
            self._fail(state)
            return
        if state.resend_event is not None:
            return  # a backoff resend is already pending
        wait = self.retry.backoff_ns(retries_used + 1)
        if self.retry.jitter:
            # One uniform draw per scheduled retry, from the dedicated
            # client stream: stream-exact with respect to the workload.
            span = 2.0 * self.retry.jitter
            wait *= 1.0 - self.retry.jitter + span * self._rng.random()
        state.resend_event = self.sim.schedule(wait, self._resend, state)

    def _resend(self, state: _Logical) -> None:
        state.resend_event = None
        if state.terminal:
            return
        original = state.original
        clone = Request(
            req_id=self._next_attempt_id,
            arrival=self.sim.now,
            service_time=original.service_time,
            size_bytes=original.size_bytes,
            connection=original.connection,
            kind=original.kind,
            key=original.key,
            value=original.value,
        )
        self._next_attempt_id += 1
        clone.logical_id = original.req_id
        clone.attempt = state.attempts_sent
        self._m_retries.value += 1
        trace = self.trace
        if trace is not None and trace.enabled and trace.sampled(original.req_id):
            trace.mark(original.req_id, "retry", self.sim.now)
        self._send_attempt(state, clone)

    # ------------------------------------------------------------------
    # Terminal transitions (each attempt lands in exactly one bucket)
    # ------------------------------------------------------------------
    def _on_timeout(self, request: Request) -> None:
        attempt = self._attempts[request.req_id]
        attempt.timeout = None  # fired; nothing left to cancel
        if attempt.terminal:
            return
        attempt.terminal = True
        attempt.state.open_attempts -= 1
        self._open_attempts -= 1
        self._m_timed_out.value += 1
        trace = self.trace
        if trace is not None and trace.enabled:
            lid = request.logical_id
            if lid is not None and trace.sampled(lid):
                trace.mark(lid, "timeout", self.sim.now)
        self._retry_or_fail(attempt.state)

    def _on_attempt_dropped(self, request: Request) -> None:
        attempt = self._attempts.get(request.req_id)
        if attempt is None or attempt.terminal:
            # Not ours, or already timed out client-side: the drop is
            # server-side cleanup of an attempt we gave up on.
            return
        attempt.terminal = True
        self._cancel_timeout(attempt)
        attempt.state.open_attempts -= 1
        self._open_attempts -= 1
        self._m_dropped.value += 1
        self._retry_or_fail(attempt.state)

    def _on_attempt_completed(self, request: Request) -> None:
        attempt = self._attempts.get(request.req_id)
        if attempt is None:
            return  # not sent by this client
        if self._response_delivered is not None and not self._response_delivered(
            request
        ):
            # Response lost (server down): the attempt stays open until
            # its timeout fires -- exactly what a real client observes.
            return
        late = attempt.terminal
        if not late:
            attempt.terminal = True
            self._cancel_timeout(attempt)
            attempt.state.open_attempts -= 1
            self._open_attempts -= 1
            self._m_completed.value += 1
        self._m_responses.value += 1
        state = attempt.state
        duplicate = self.detector.observe(request.logical_id)
        if duplicate:
            self._m_duplicates.value += 1
            return
        if state.terminal:
            # First service of a logical request the client already
            # failed: the work happened, but the verdict stands.
            return
        if late:
            self._m_late_successes.value += 1
        self._succeed(state)

    # ------------------------------------------------------------------
    # Logical verdicts
    # ------------------------------------------------------------------
    def _succeed(self, state: _Logical) -> None:
        state.succeeded = True
        state.success_ns = self.sim.now
        self._cancel_resend(state)
        self._logical_terminal(state)

    def _fail(self, state: _Logical) -> None:
        state.failed = True
        self._cancel_resend(state)
        self._m_failed.value += 1
        trace = self.trace
        if trace is not None and trace.enabled and trace.sampled(
            state.original.req_id
        ):
            trace.mark(state.original.req_id, "retry_exhausted", self.sim.now)
        self._logical_terminal(state)

    def _logical_terminal(self, state: _Logical) -> None:
        if state.succeeded:
            self._m_succeeded.value += 1
        for hook in self.logical_hooks:
            hook(state.original, state.succeeded)
        self._terminal_logical += 1
        if (
            self._expected is not None
            and self._terminal_logical >= self._expected
        ):
            self.sim.stop()

    def _cancel_timeout(self, attempt: "_Attempt") -> None:
        if attempt.timeout is not None:
            self.sim.cancel(attempt.timeout)
            attempt.timeout = None

    def _cancel_resend(self, state: _Logical) -> None:
        if state.resend_event is not None:
            self.sim.cancel(state.resend_event)
            state.resend_event = None

    # ------------------------------------------------------------------
    # Post-run
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Re-stamp the generator's original requests with the client's
        observed outcome, so ``measured_requests()`` and the analysis
        layer read client-side truth (call after ``sim.run``)."""
        for state in self._logical.values():
            original = state.original
            if state.succeeded:
                original.finished = state.success_ns
                original.dropped = False
            else:
                original.dropped = True

    # ------------------------------------------------------------------
    # Introspection (conservation tests read these)
    # ------------------------------------------------------------------
    @property
    def open_attempts(self) -> int:
        return self._open_attempts

    @property
    def succeeded(self) -> int:
        return self._m_succeeded.value

    @property
    def failed(self) -> int:
        return self._m_failed.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RetryClient injected={self._m_injected.value} "
            f"retries={self._m_retries.value} open={self._open_attempts}>"
        )


class _Attempt:
    """Terminal-bucket bookkeeping for one sent attempt."""

    __slots__ = ("state", "timeout", "terminal")

    def __init__(self, state: _Logical, timeout: Event) -> None:
        self.state = state
        self.timeout: Optional[Event] = timeout
        self.terminal = False


__all__ = ["RetryClient"]
