"""The cluster health view steering policies route by.

RackSched tracks per-server liveness in the switch so steering can
excise failed servers from the candidate pool; :class:`HealthView` is
that state for the rack tier.  The fault injector writes it (crash,
partition, degradation windows) and health-aware policies read it.

The fast path mirrors :class:`repro.telemetry.trace.NullSink`: a run
with no fault plan attached never constructs a ``HealthView`` at all --
policies hold the shared :data:`ALL_HEALTHY` singleton, whose
``impaired`` flag is a class-level ``False``, so the healthy steering
path costs one attribute check and is bit-identical to the pre-fault
engine.
"""

from __future__ import annotations

from typing import List

#: Load penalty (in outstanding-request units) a degraded server carries
#: in load-comparison policies: it must look this much shorter than a
#: healthy alternative to win a decision.
DEFAULT_DEGRADED_PENALTY = 16.0


class _AllHealthy:
    """Null health view: nothing is ever down or degraded."""

    impaired = False

    def usable(self, server: int) -> bool:
        return True

    def penalty(self, server: int) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ALL_HEALTHY>"


#: Shared null view held by policies when no fault plan is attached.
ALL_HEALTHY = _AllHealthy()


class HealthView:
    """Mutable per-server liveness/degradation state.

    ``down`` means unreachable (crashed server or partitioned ToR port):
    steering must route around it and in-flight responses from it are
    lost.  ``degraded`` means reachable but impaired (straggler core,
    lossy NIC, throttled downlink): health-aware policies bias away via
    :meth:`penalty` without excising the server.
    """

    impaired = False  # becomes an instance attribute on first fault

    def __init__(
        self,
        n_servers: int,
        degraded_penalty: float = DEFAULT_DEGRADED_PENALTY,
    ) -> None:
        if n_servers <= 0:
            raise ValueError(f"need at least one server, got {n_servers}")
        self.n_servers = int(n_servers)
        self.degraded_penalty = float(degraded_penalty)
        self._down: List[bool] = [False] * self.n_servers
        self._degraded: List[int] = [0] * self.n_servers

    # ------------------------------------------------------------------
    # Injector write side
    # ------------------------------------------------------------------
    def set_down(self, server: int, down: bool) -> None:
        self._down[server] = down
        self._recompute()

    def add_degraded(self, server: int) -> None:
        """Open one degradation window on ``server`` (windows nest)."""
        self._degraded[server] += 1
        self._recompute()

    def remove_degraded(self, server: int) -> None:
        self._degraded[server] -= 1
        if self._degraded[server] < 0:
            raise ValueError(
                f"server {server} has no open degradation window to close"
            )
        self._recompute()

    def _recompute(self) -> None:
        self.impaired = any(self._down) or any(self._degraded)

    # ------------------------------------------------------------------
    # Control-plane write side
    # ------------------------------------------------------------------
    def set_degraded_penalty(self, penalty: float) -> None:
        """Retune the degradation handicap mid-run (the control plane's
        health-staleness knob: every subsequent :meth:`penalty` read
        reflects the new value immediately)."""
        if penalty < 0:
            raise ValueError(f"penalty must be >= 0, got {penalty}")
        self.degraded_penalty = float(penalty)

    # ------------------------------------------------------------------
    # Policy read side
    # ------------------------------------------------------------------
    def usable(self, server: int) -> bool:
        """Can steering send new work to ``server``?"""
        return not self._down[server]

    def down(self, server: int) -> bool:
        return self._down[server]

    def degraded(self, server: int) -> bool:
        return self._degraded[server] > 0

    def penalty(self, server: int) -> float:
        """Load-units handicap for ``server`` in shortest-queue scans."""
        return self.degraded_penalty if self._degraded[server] else 0.0

    def usable_servers(self) -> List[int]:
        return [s for s in range(self.n_servers) if not self._down[s]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HealthView down={[i for i, d in enumerate(self._down) if d]} "
            f"degraded={[i for i, d in enumerate(self._degraded) if d]}>"
        )
