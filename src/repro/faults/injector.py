"""Drives a :class:`~repro.faults.plan.FaultPlan` into a live system.

The injector is built once per run, after the system and before the
load generator starts.  It

* schedules every expanded plan event at its absolute simulator time
  (``schedule_at``), so fault timing is part of the deterministic event
  order;
* wraps each server's delivery entry point so requests steered at a
  downed server are blackholed at the NIC (and NIC drop bursts flip a
  per-request coin from the dedicated ``"faults"`` stream);
* writes the rack's :class:`~repro.faults.health.HealthView` so
  health-aware steering policies route around the blast radius;
* applies per-layer knobs: :attr:`Core.slowdown` for stalls/stragglers,
  the ToR switch's per-port bandwidth factor and partition flag, and
  :meth:`AltocumulusSystem.fail_manager` for manager loss;
* accounts everything under ``faults.*`` instruments and records one
  trace span per fault window on the ``"faults"`` track, so a Chrome
  trace shows the blast radius alongside the request lifecycles.

Runs without a plan never construct an injector: the delivery path,
policies (via :data:`~repro.faults.health.ALL_HEALTHY`), and switch all
keep their zero-overhead fast paths, mirroring ``NullSink``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry
from repro.workload.request import Request

from repro.faults.health import HealthView
from repro.faults.plan import FaultEvent, FaultPlan, FaultPlanError


class NullFaults:
    """Shared do-nothing injector: the no-plan fast path.

    ``enabled`` is False at class level so fault-aware call sites can
    guard with one attribute check, exactly like ``NullSink.enabled``.
    """

    enabled = False

    def response_delivered(self, request: Request) -> bool:
        return True

    def finalize(self) -> None:
        pass


#: The singleton held wherever no fault plan is attached.
NULL_FAULTS = NullFaults()


class FaultInjector:
    """Wires one plan into one system (single server or rack)."""

    enabled = True

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        plan: FaultPlan,
        system,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.system = system
        self._rng = streams.get("faults")
        registry: MetricRegistry = getattr(system, "metrics", None)
        if registry is None:
            registry = MetricRegistry()
        self.registry = registry
        # Tier detection by duck attributes: a rack exposes `servers`
        # and `switch`; a datacenter exposes `servers` (its racks --
        # this tier's unit of failure) and `spine`.  Either way the
        # entries of `servers` are what crash/blackhole faults address.
        servers = getattr(system, "servers", None)
        self._is_rack = servers is not None
        self._servers = list(servers) if self._is_rack else [system]
        self._switch = getattr(system, "switch", None)
        self._spine = getattr(system, "spine", None)
        health = getattr(system, "health", None)
        if health is None or not isinstance(health, HealthView):
            health = HealthView(len(self._servers))
        self.health = health
        if self._is_rack:
            system.health = health
            policy_health = getattr(system.policy, "health", None)
            if policy_health is not None:
                system.policy.health = health
        self.trace = getattr(system, "trace", None)
        if self.trace is None and self._servers:
            self.trace = getattr(self._servers[0], "trace", None)

        # faults.* instruments -- registered only here, so plain builds
        # keep the pinned metrics schema untouched.
        counter = registry.counter
        self._m_events = counter("faults.events_fired")
        self._m_skipped = counter("faults.events_skipped")
        self._m_crashes = counter("faults.server_crashes")
        self._m_recoveries = counter("faults.server_recoveries")
        self._m_blackholed = counter("faults.requests_blackholed")
        self._m_nic_dropped = counter("faults.nic_burst_dropped")
        self._m_partition_dropped = counter("faults.partition_dropped")
        self._m_responses_lost = counter("faults.responses_lost")
        self._m_core_stalls = counter("faults.core_stalls")
        self._m_tor_degrades = counter("faults.tor_degrades")
        self._m_partitions = counter("faults.tor_partitions")
        self._m_spine_degrades = counter("faults.spine_degrades")
        self._m_spine_partitions = counter("faults.spine_partitions")
        self._m_manager_fails = counter("faults.manager_fails")
        self._m_in_flight_forgotten = counter("faults.in_flight_forgotten")
        self._m_orphans_redispatched = counter("faults.orphans_redispatched")
        counter(
            "faults.dead_nack_descriptors",
            fn=lambda: sum(
                getattr(s, "dead_nack_descriptors", 0) for s in self._servers
            ),
        )

        #: Per-server NIC burst drop probability (0 = no burst active).
        self._nic_drop_p: List[float] = [0.0] * len(self._servers)
        #: Open fault windows: (kind, target, subtarget) -> start time.
        self._open_windows: Dict[Tuple[str, int, int], float] = {}

        self._wrap_delivery()
        for event in plan.expanded_events():
            sim.schedule_at(max(event.time_ns, sim.now), self._fire, event)

        # A sharded coordinator mirrors the NIC-edge admission decision
        # (health gate + drop coin) at message-ship time; it needs this
        # injector's plan, RNG stream and counters to reproduce the
        # serial decision stream exactly, so it registers interest via
        # this optional duck hook.
        attach = getattr(system, "on_fault_injector_attached", None)
        if attach is not None:
            attach(self)

    # ------------------------------------------------------------------
    # Ingress guards
    # ------------------------------------------------------------------
    def _wrap_delivery(self) -> None:
        if self._is_rack:
            deliver = self.system._deliver
            for idx in range(len(deliver)):
                deliver[idx] = self._make_guard(idx, deliver[idx])
            if self._switch is not None:
                self._switch.on_partition_drop = self.on_partition_drop
            if self._spine is not None:
                self._spine.on_partition_drop = self.on_partition_drop
        else:
            # Single server: everything the client sends flows through
            # one guard in front of the system's NIC.
            self._single_offer = self.system.offer

    @property
    def ingress(self):
        """Where the retry client sends attempts: the rack's own
        steering ingress, or the single-server guard."""
        return self.system.offer if self._is_rack else self.guarded_offer

    def guarded_offer(self, request: Request) -> None:
        """Single-server ingress: the client sends through this."""
        request.server_id = 0
        if not self._admit(request, 0):
            return
        self._single_offer(request)

    def _make_guard(self, idx: int, deliver):
        def guarded(request: Request) -> None:
            request.server_id = idx
            if self._admit(request, idx):
                deliver(request)

        return guarded

    def _admit(self, request: Request, server: int) -> bool:
        """NIC-edge fate of one arriving request at ``server``."""
        if not self.health.usable(server):
            # Crashed or partitioned away: the packet is silently lost;
            # only the client's timeout will notice.
            self._m_blackholed.value += 1
            self._mark(request, "fault_blackholed")
            return False
        p = self._nic_drop_p[server]
        if p > 0.0 and self._rng.random() < p:
            self._m_nic_dropped.value += 1
            self._mark(request, "fault_nic_dropped")
            return False
        return True

    def _mark(self, request: Request, phase: str) -> None:
        trace = self.trace
        if trace is not None and trace.enabled:
            rid = (
                request.logical_id
                if request.logical_id is not None
                else request.req_id
            )
            if trace.sampled(rid):
                trace.mark(rid, phase, self.sim.now)

    # ------------------------------------------------------------------
    # Response fencing (the client consults this per completion)
    # ------------------------------------------------------------------
    def response_delivered(self, request: Request) -> bool:
        server = request.server_id
        if server is None or self.health.usable(server):
            return True
        self._m_responses_lost.value += 1
        return False

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is None:  # pragma: no cover - kinds are validated
            raise FaultPlanError(f"no handler for fault kind {event.kind!r}")
        applied = handler(event)
        if applied:
            self._m_events.value += 1
        else:
            # Structurally inapplicable (ToR fault on a single server,
            # manager_fail on a non-Altocumulus system): counted, not
            # fatal, so one plan can sweep across heterogeneous systems.
            self._m_skipped.value += 1

    def _check_server(self, event: FaultEvent) -> bool:
        if not 0 <= event.target < len(self._servers):
            raise FaultPlanError(
                f"{event.kind} target {event.target} out of range "
                f"[0, {len(self._servers)})"
            )
        return True

    # -- server crash / recover ----------------------------------------
    def _on_server_crash(self, event: FaultEvent) -> bool:
        self._check_server(event)
        self.health.set_down(event.target, True)
        self._m_crashes.value += 1
        self._window_open("server_crash", event.target, 0)
        return True

    def _on_server_recover(self, event: FaultEvent) -> bool:
        self._check_server(event)
        self.health.set_down(event.target, False)
        self._m_recoveries.value += 1
        self._window_close("server_crash", event.target, 0)
        return True

    # -- NIC drop bursts -----------------------------------------------
    def _on_nic_drop(self, event: FaultEvent) -> bool:
        self._check_server(event)
        self._nic_drop_p[event.target] = event.magnitude
        self.health.add_degraded(event.target)
        self._window_open("nic_drop", event.target, 0)
        return True

    def _on_nic_drop_stop(self, event: FaultEvent) -> bool:
        self._check_server(event)
        self._nic_drop_p[event.target] = 0.0
        self.health.remove_degraded(event.target)
        self._window_close("nic_drop", event.target, 0)
        return True

    # -- core stall / straggler ----------------------------------------
    def _on_core_stall(self, event: FaultEvent) -> bool:
        self._check_server(event)
        cores = getattr(self._servers[event.target], "cores", None)
        if cores is None:
            # The targeted unit has no directly addressable cores (a
            # rack inside a datacenter): structurally inapplicable.
            return False
        if not 0 <= event.subtarget < len(cores):
            raise FaultPlanError(
                f"core_stall core {event.subtarget} out of range "
                f"[0, {len(cores)})"
            )
        cores[event.subtarget].slowdown = event.magnitude
        self.health.add_degraded(event.target)
        self._m_core_stalls.value += 1
        self._window_open("core_stall", event.target, event.subtarget)
        return True

    def _on_core_resume(self, event: FaultEvent) -> bool:
        self._check_server(event)
        cores = getattr(self._servers[event.target], "cores", None)
        if cores is None:
            return False
        cores[event.subtarget].slowdown = 1.0
        self.health.remove_degraded(event.target)
        self._window_close("core_stall", event.target, event.subtarget)
        return True

    # -- ToR port faults (rack only) -----------------------------------
    def _on_tor_degrade(self, event: FaultEvent) -> bool:
        if self._switch is None:
            return False
        self._switch.set_port_bandwidth_factor(event.target, event.magnitude)
        self.health.add_degraded(event.target)
        self._m_tor_degrades.value += 1
        self._window_open("tor_degrade", event.target, 0)
        return True

    def _on_tor_restore(self, event: FaultEvent) -> bool:
        if self._switch is None:
            return False
        self._switch.set_port_bandwidth_factor(event.target, 1.0)
        self.health.remove_degraded(event.target)
        self._window_close("tor_degrade", event.target, 0)
        return True

    def _on_tor_partition(self, event: FaultEvent) -> bool:
        if self._switch is None:
            return False
        self._switch.set_port_partitioned(event.target, True)
        # A partitioned port is indistinguishable from a crash to the
        # client and the steering layer: unreachable, responses lost.
        self.health.set_down(event.target, True)
        self._m_partitions.value += 1
        self._window_open("tor_partition", event.target, 0)
        return True

    def _on_tor_heal(self, event: FaultEvent) -> bool:
        if self._switch is None:
            return False
        self._switch.set_port_partitioned(event.target, False)
        self.health.set_down(event.target, False)
        self._window_close("tor_partition", event.target, 0)
        return True

    # -- spine port faults (datacenter only) ---------------------------
    def _on_spine_degrade(self, event: FaultEvent) -> bool:
        if self._spine is None:
            return False
        self._spine.set_port_bandwidth_factor(event.target, event.magnitude)
        self.health.add_degraded(event.target)
        self._m_spine_degrades.value += 1
        self._window_open("spine_degrade", event.target, 0)
        return True

    def _on_spine_restore(self, event: FaultEvent) -> bool:
        if self._spine is None:
            return False
        self._spine.set_port_bandwidth_factor(event.target, 1.0)
        self.health.remove_degraded(event.target)
        self._window_close("spine_degrade", event.target, 0)
        return True

    def _on_spine_partition(self, event: FaultEvent) -> bool:
        if self._spine is None:
            return False
        self._spine.set_port_partitioned(event.target, True)
        # A partitioned spine port cuts off the whole rack behind it:
        # unreachable, responses lost -- a rack-granular crash as far as
        # the client and the inter-rack steering layer can tell.
        self.health.set_down(event.target, True)
        self._m_spine_partitions.value += 1
        self._window_open("spine_partition", event.target, 0)
        return True

    def _on_spine_heal(self, event: FaultEvent) -> bool:
        if self._spine is None:
            return False
        self._spine.set_port_partitioned(event.target, False)
        self.health.set_down(event.target, False)
        self._window_close("spine_partition", event.target, 0)
        return True

    def on_partition_drop(self, request: Request, port: int) -> None:
        """Switch callback: a request hit a partitioned port mid-flight."""
        self._m_partition_dropped.value += 1
        self._mark(request, "fault_partition_dropped")

    # -- manager failure (Altocumulus only) ----------------------------
    def _on_manager_fail(self, event: FaultEvent) -> bool:
        self._check_server(event)
        server = self._servers[event.target]
        fail = getattr(server, "fail_manager", None)
        if fail is None:
            return False
        forgotten, redispatched = fail(event.subtarget)
        self._m_manager_fails.value += 1
        self._m_in_flight_forgotten.value += forgotten
        self._m_orphans_redispatched.value += redispatched
        return True

    # ------------------------------------------------------------------
    # Blast-radius trace spans
    # ------------------------------------------------------------------
    def _window_open(self, kind: str, target: int, subtarget: int) -> None:
        self._open_windows[(kind, target, subtarget)] = self.sim.now

    def _window_close(self, kind: str, target: int, subtarget: int) -> None:
        start = self._open_windows.pop((kind, target, subtarget), None)
        if start is None:
            return
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.span("faults", target, kind, start, self.sim.now)

    def finalize(self) -> None:
        """Close any still-open fault windows' trace spans (call after
        ``sim.run``)."""
        trace = self.trace
        if trace is not None and trace.enabled:
            for (kind, target, _sub), start in self._open_windows.items():
                trace.span("faults", target, kind, start, self.sim.now)
        self._open_windows.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector events={len(self.plan.events)} "
            f"fired={self._m_events.value}>"
        )
