"""Declarative fault schedules: what breaks, when, and for how long.

A :class:`FaultPlan` is a frozen, picklable description of every fault a
run injects, plus the client-side :class:`RetryPolicy` that absorbs
them.  Plans are *data*, never behaviour: the same plan attached to the
same seed always produces the same simulation, because

* every fault fires at an absolute simulator time (``time_ns``), never
  at a wall-clock or random instant, and
* all randomness the fault layer consumes (NIC drop coin flips, retry
  backoff jitter) comes from dedicated named RNG streams (``"faults"``,
  ``"client_retry"``), so attaching a plan never perturbs the draws of
  the workload streams -- the stream-exact determinism contract the
  golden tests pin.

Being plain frozen dataclasses, plans hash cleanly through the sweep
runner's content-addressed cache (:func:`repro.runner.spec.fingerprint`)
and round-trip through JSON for the ``--faults`` CLI flag.

Fault kinds
-----------
==================  ======================  =================================
kind                target / subtarget      magnitude
==================  ======================  =================================
``server_crash``    server index            --  (paired: ``server_recover``)
``core_stall``      server idx / core idx   service-time slowdown factor > 1
``nic_drop``        server index            drop probability in (0, 1]
``tor_degrade``     switch port             bandwidth factor in (0, 1)
``tor_partition``   switch port             --  (silent blackhole)
``spine_degrade``   spine port (rack idx)   bandwidth factor in (0, 1)
``spine_partition`` spine port (rack idx)   --  (silent blackhole)
``manager_fail``    server idx / group idx  --  (one-shot, no pair)
==================  ======================  =================================

The ``spine_*`` kinds target the datacenter tier's spine switch (one
port per rack); against a system with no spine they are structurally
inapplicable and counted as skipped, exactly like ``tor_*`` kinds
against a single server.  At the datacenter tier, ``server_crash`` and
friends address *racks* (the tier's unit of failure).

A ``duration_ns`` on a window kind expands into the paired recovery
event; one-shot kinds (``manager_fail``) take no duration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Fault kinds that open a window and are closed by a paired recovery
#: event (generated from ``duration_ns`` or listed explicitly).
PAIRED_KINDS: Dict[str, str] = {
    "server_crash": "server_recover",
    "core_stall": "core_resume",
    "nic_drop": "nic_drop_stop",
    "tor_degrade": "tor_restore",
    "tor_partition": "tor_heal",
    "spine_degrade": "spine_restore",
    "spine_partition": "spine_heal",
}

#: Recovery kinds, mapping back to the window they close.
RECOVERY_KINDS: Dict[str, str] = {v: k for k, v in PAIRED_KINDS.items()}

#: One-shot kinds with no recovery pair.
ONESHOT_KINDS: Tuple[str, ...] = ("manager_fail",)

#: Every kind accepted in a plan.
FAULT_KINDS: Tuple[str, ...] = (
    tuple(PAIRED_KINDS) + tuple(RECOVERY_KINDS) + ONESHOT_KINDS
)

#: Window kinds whose magnitude is required and range-checked.
_MAGNITUDE_RANGE = {
    "core_stall": (1.0, float("inf")),  # slowdown factor
    "nic_drop": (0.0, 1.0),  # drop probability (0 excluded below)
    "tor_degrade": (0.0, 1.0),  # bandwidth factor (both ends excluded)
    "spine_degrade": (0.0, 1.0),  # bandwidth factor (both ends excluded)
}


class FaultPlanError(ValueError):
    """Raised when a plan (or its JSON form) is malformed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side timeout/retry behaviour while a plan is attached.

    Attributes
    ----------
    timeout_ns:
        Per-attempt response deadline.  An attempt with no response by
        then is counted ``timed_out`` and (budget permitting) retried.
    max_retries:
        Retry attempts *after* the original send; 0 disables retries
        (timeouts then fail the request immediately).
    backoff_base_ns / backoff_cap_ns:
        Capped exponential backoff: retry ``k`` (1-based) waits
        ``min(cap, base * 2**(k-1))``, scaled by jitter.
    jitter:
        Fractional +/- jitter applied to each backoff wait, drawn from
        the dedicated ``"client_retry"`` stream (0 = deterministic
        spacing; 0.5 = waits in [0.5x, 1.5x]).
    """

    timeout_ns: float = 50_000.0
    max_retries: int = 3
    backoff_base_ns: float = 10_000.0
    backoff_cap_ns: float = 100_000.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout_ns <= 0:
            raise FaultPlanError(
                f"timeout_ns must be positive, got {self.timeout_ns}"
            )
        if self.max_retries < 0:
            raise FaultPlanError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise FaultPlanError("backoff times must be >= 0")
        if self.backoff_cap_ns < self.backoff_base_ns:
            raise FaultPlanError(
                f"backoff_cap_ns ({self.backoff_cap_ns}) must be >= "
                f"backoff_base_ns ({self.backoff_base_ns})"
            )
        if not 0 <= self.jitter < 1:
            raise FaultPlanError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_ns(self, retry_index: int) -> float:
        """Nominal (pre-jitter) wait before retry ``retry_index`` (1-based)."""
        return min(
            self.backoff_cap_ns, self.backoff_base_ns * 2 ** (retry_index - 1)
        )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``duration_ns`` is expansion sugar: a window event carrying it is
    split into the start event plus its paired recovery event at
    ``time_ns + duration_ns`` (see :meth:`FaultPlan.expanded_events`).
    """

    time_ns: float
    kind: str
    target: int = 0
    subtarget: int = 0
    magnitude: float = 0.0
    duration_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.time_ns < 0:
            raise FaultPlanError(f"time_ns must be >= 0, got {self.time_ns}")
        if self.target < 0 or self.subtarget < 0:
            raise FaultPlanError("target/subtarget must be >= 0")
        if self.duration_ns is not None:
            if self.kind not in PAIRED_KINDS:
                raise FaultPlanError(
                    f"{self.kind!r} takes no duration_ns (one-shot or "
                    "recovery event)"
                )
            if self.duration_ns <= 0:
                raise FaultPlanError(
                    f"duration_ns must be positive, got {self.duration_ns}"
                )
        rng = _MAGNITUDE_RANGE.get(self.kind)
        if rng is not None:
            lo, hi = rng
            if not lo <= self.magnitude <= hi or (
                self.kind in ("nic_drop", "tor_degrade", "spine_degrade")
                and not 0 < self.magnitude
            ) or (
                self.kind in ("tor_degrade", "spine_degrade")
                and self.magnitude >= 1.0
            ):
                raise FaultPlanError(
                    f"{self.kind!r} magnitude {self.magnitude} out of range"
                )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultEvent` plus the client
    :class:`RetryPolicy` that rides with it."""

    events: Tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Tolerate list input (JSON, hand-written plans) by freezing it.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def expanded_events(self) -> List[FaultEvent]:
        """The concrete schedule: durations split into start/stop pairs,
        sorted by (time, declaration order) for deterministic firing."""
        concrete: List[FaultEvent] = []
        for event in self.events:
            if event.duration_ns is not None:
                stop_kind = PAIRED_KINDS[event.kind]
                concrete.append(replace(event, duration_ns=None))
                concrete.append(
                    FaultEvent(
                        time_ns=event.time_ns + event.duration_ns,
                        kind=stop_kind,
                        target=event.target,
                        subtarget=event.subtarget,
                    )
                )
            else:
                concrete.append(event)
        order = {id(e): i for i, e in enumerate(concrete)}
        concrete.sort(key=lambda e: (e.time_ns, order[id(e)]))
        return concrete

    # ------------------------------------------------------------------
    # JSON round-trip (the --faults CLI surface)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "retry": {
                "timeout_ns": self.retry.timeout_ns,
                "max_retries": self.retry.max_retries,
                "backoff_base_ns": self.retry.backoff_base_ns,
                "backoff_cap_ns": self.retry.backoff_cap_ns,
                "jitter": self.retry.jitter,
            },
            "events": [
                {
                    key: value
                    for key, value in (
                        ("time_ns", e.time_ns),
                        ("kind", e.kind),
                        ("target", e.target),
                        ("subtarget", e.subtarget),
                        ("magnitude", e.magnitude),
                        ("duration_ns", e.duration_ns),
                    )
                    if value is not None
                }
                for e in self.events
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {"retry", "events"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                "expected 'retry' and 'events'"
            )
        try:
            retry = RetryPolicy(**data.get("retry", {}))
            events = tuple(
                FaultEvent(**entry) for entry in data.get("events", [])
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc
        return cls(events=events, retry=retry)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
