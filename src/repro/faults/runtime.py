"""Process-global default fault plan (the ``--faults`` CLI surface).

Mirrors :func:`repro.telemetry.capture`: the CLI installs a plan for
the duration of an experiment invocation, and every
:func:`repro.api.run_workload` call that was not handed an explicit
``faults=`` argument picks it up.  Like telemetry capture, the global
lives in the current process only -- the CLI forces ``--jobs 1`` and
``--no-cache`` when a plan is installed, so faulted runs always execute
in-process (runner sweeps that want parallel faulted points carry the
plan explicitly in their :class:`~repro.runner.spec.PointSpec`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan

_ACTIVE_PLAN: Optional[FaultPlan] = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The process-global default plan, or None."""
    return _ACTIVE_PLAN


@contextmanager
def use_fault_plan(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Install ``plan`` as the default for the duration of the block."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield
    finally:
        _ACTIVE_PLAN = previous
