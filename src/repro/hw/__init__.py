"""Hardware models: NIC, NoC, PCIe, QPI, core tiles, and the Altocumulus
manager-tile microarchitecture (migration registers, parameter registers,
FIFOs, migrator and controller).

Latency constants follow Sec. VII-B of the paper exactly: ~30 ns NIC MAC +
serial I/O + transport, 3 ns per NoC hop, 150 ns QPI, 200-800 ns PCIe
(size-dependent), and >= 70 cycles @ 2 GHz per coherence message.
"""

from repro.hw.constants import HwConstants, DEFAULT_CONSTANTS
from repro.hw.topology import MeshTopology
from repro.hw.noc import Noc, NocMessage
from repro.hw.pcie import PcieLink
from repro.hw.qpi import QpiLink
from repro.hw.nic import DeliveryModel, HwTerminatedDelivery, PcieDelivery, RssSteering
from repro.hw.cores import Core
from repro.hw.registers import HardwareFifo, MigrationRegisterFile, ParameterRegisters
from repro.hw.coherence import CoherenceModel
from repro.hw.memory import MemoryBandwidthModel
from repro.hw.messaging import ManagerTileHw, MessageType

__all__ = [
    "HwConstants",
    "DEFAULT_CONSTANTS",
    "MeshTopology",
    "Noc",
    "NocMessage",
    "PcieLink",
    "QpiLink",
    "DeliveryModel",
    "HwTerminatedDelivery",
    "PcieDelivery",
    "RssSteering",
    "Core",
    "HardwareFifo",
    "MigrationRegisterFile",
    "ParameterRegisters",
    "CoherenceModel",
    "MemoryBandwidthModel",
    "ManagerTileHw",
    "MessageType",
]
