"""Cache-coherence communication cost model.

Software schedulers move work between cores through shared caches, so
their costs are coherence costs:

* handing one message to a worker: >= 70 cycles (Shinjuku's measured
  dispatch floor [26]);
* one work-steal: 2-3 cache misses, 200-400 ns [54];
* falling back to an inter-processor interrupt: ~1 us [26].

Altocumulus's register-level messaging exists precisely to bypass these;
baselines charge them on every scheduling operation.
"""

from __future__ import annotations

import numpy as np

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants


class CoherenceModel:
    """Samples software inter-core communication costs."""

    def __init__(self, constants: HwConstants = DEFAULT_CONSTANTS) -> None:
        self.constants = constants

    def dispatch_ns(self) -> float:
        """Centralized-dispatcher hand-off of one request to a worker
        (deterministic floor: 70 cycles)."""
        return self.constants.coherence_msg_ns

    def steal_ns(self, rng: np.random.Generator) -> float:
        """One work-stealing operation: find + fetch pending requests
        from a remote queue (2-3 cache misses, uniform 200-400 ns)."""
        c = self.constants
        return float(rng.uniform(c.steal_min_ns, c.steal_max_ns))

    def interrupt_ns(self) -> float:
        """Inter-processor interrupt (the slow preemption path)."""
        return self.constants.interrupt_ns

    def shared_cache_update_ns(self, n_readers: int) -> float:
        """Publishing one cache line of state to ``n_readers`` cores.

        Each reader misses once; the writer's cost is one coherence
        message, but the *visibility latency* seen by the last reader
        grows with the reader count.  Used to contrast software queue-
        length sharing against hardware UPDATE broadcasts (Sec. V-A).
        """
        if n_readers < 0:
            raise ValueError(f"n_readers must be >= 0, got {n_readers}")
        return self.constants.coherence_msg_ns * max(1, n_readers)
