"""Latency and sizing constants from the paper's methodology (Sec. VII-B)
and hardware-cost discussion (Secs. V-B, VI).

All latencies in nanoseconds; all cycle counts assume the paper's 2 GHz
cores unless a frequency is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HwConstants:
    """One immutable bag of modelling constants, shared by a system.

    Attributes map one-to-one onto numbers quoted in the paper:

    * ``nic_terminate_ns`` -- Ethernet MAC + serial I/O + transport
      interpretation on a hardware-terminated NIC: ~30 ns total [23].
    * ``noc_hop_ns`` -- per-hop NoC packet latency: 3 ns.
    * ``qpi_ns`` -- QPI point-to-point latency: 150 ns [6].
    * ``pcie_min_ns`` / ``pcie_max_ns`` -- PCIe transfer: 200-800 ns
      depending on data size [46].
    * ``coherence_msg_cycles`` -- minimum cycles to move a message to a
      worker through the cache-coherence protocol: 70 cycles [26].
    * ``steal_min_ns`` / ``steal_max_ns`` -- software work-stealing cost:
      2-3 cache misses, 200-400 ns [54].
    * ``interrupt_ns`` -- inter-processor interrupt: ~1 us [26].
    * ``msr_access_cycles`` -- ``rdmsr``/``wrmsr`` syscall: ~100 cycles.
    * ``isa_access_cycles`` -- custom Altocumulus instruction: a few
      cycles of register-level data movement.
    * ``mr_entry_bytes`` -- migration-register descriptor: 8 B pointer +
      48-bit IP/port = 14 B.
    * ``send_fifo_entries`` -- send/receive FIFO depth: 16 entries.
    * ``freq_ghz`` -- core clock used to convert cycle counts.
    """

    nic_terminate_ns: float = 30.0
    noc_hop_ns: float = 3.0
    qpi_ns: float = 150.0
    pcie_min_ns: float = 200.0
    pcie_max_ns: float = 800.0
    pcie_full_size_bytes: int = 2048
    coherence_msg_cycles: int = 70
    steal_min_ns: float = 200.0
    steal_max_ns: float = 400.0
    interrupt_ns: float = 1_000.0
    msr_access_cycles: int = 100
    isa_access_cycles: int = 3
    mr_entry_bytes: int = 14
    send_fifo_entries: int = 16
    recv_fifo_entries: int = 16
    freq_ghz: float = 2.0

    # ------------------------------------------------------------------
    def cycles_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds at this system's clock."""
        return cycles / self.freq_ghz

    @property
    def coherence_msg_ns(self) -> float:
        """Cost of one coherence-protocol message hand-off, in ns."""
        return self.cycles_ns(self.coherence_msg_cycles)

    @property
    def msr_access_ns(self) -> float:
        """Cost of one MSR syscall-based register access, in ns."""
        return self.cycles_ns(self.msr_access_cycles)

    @property
    def isa_access_ns(self) -> float:
        """Cost of one custom-instruction register access, in ns."""
        return self.cycles_ns(self.isa_access_cycles)


#: The default constants instance used when none is supplied.
DEFAULT_CONSTANTS = HwConstants()
