"""CPU core model.

A :class:`Core` executes one request at a time.  Two execution modes
cover every scheduler in the evaluation:

* **Run-to-completion** (RSS, IX, ZygOS, Nebula, Altocumulus workers):
  the request occupies the core for its full remaining service time.
* **Quantum-preemptive** (Shinjuku's 5 us preemption, nanoPU's bounded
  quantum): the request runs for at most ``quantum_ns``, then is handed
  back to the scheduler with its ``remaining`` decremented and the
  preemption overhead charged.

The core never chooses work -- scheduling policy lives entirely in the
owning system, which supplies the ``on_complete`` / ``on_preempt``
callbacks.  Utilization accounting (busy ns) feeds the CPU-efficiency
analysis.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Event, Simulator
from repro.workload.request import Request

CompleteFn = Callable[["Core", Request], None]
PreemptFn = Callable[["Core", Request], None]


class Core:
    """One hardware thread executing RPC handlers run-to-completion or
    under a preemption quantum."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        on_complete: CompleteFn,
        on_preempt: Optional[PreemptFn] = None,
    ) -> None:
        self.sim = sim
        self.core_id = int(core_id)
        self.on_complete = on_complete
        self.on_preempt = on_preempt
        self.current: Optional[Request] = None
        #: Wall-clock stretch factor applied to service time (fault
        #: injection's core-stall/straggler knob).  1.0 = healthy; the
        #: multiply is guarded so the healthy path stays bit-identical.
        self.slowdown: float = 1.0
        self.busy_ns: float = 0.0
        self.completed: int = 0
        self.preemptions: int = 0
        self._event: Optional[Event] = None
        self._run_started: float = 0.0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a request occupies the core."""
        return self.current is not None

    def assign(
        self,
        request: Request,
        startup_ns: float = 0.0,
        quantum_ns: Optional[float] = None,
        switch_overhead_ns: float = 0.0,
    ) -> None:
        """Begin executing ``request``.

        Parameters
        ----------
        startup_ns:
            Latency before useful work starts (e.g. fetching the request
            across the coherence fabric, a steal's cache misses).  It is
            charged to the core *and* to the request.
        quantum_ns:
            If set, preempt after this much service; ``on_preempt`` fires
            with the request's ``remaining`` updated.
        switch_overhead_ns:
            Context-switch cost added on preemption (charged to the
            request as ``extra_latency`` and to the core as busy time).
        """
        if self.busy:
            raise RuntimeError(f"core {self.core_id} is already busy")
        if quantum_ns is not None and quantum_ns <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_ns}")
        self.current = request
        request.core_id = self.core_id
        if request.started is None:
            request.started = self.sim.now + startup_ns
        run = request.remaining
        preempting = quantum_ns is not None and run > quantum_ns
        if preempting:
            run = quantum_ns
        self._run_started = self.sim.now
        wall_run = run if self.slowdown == 1.0 else run * self.slowdown
        total = startup_ns + wall_run + (switch_overhead_ns if preempting else 0.0)
        if preempting:
            request.extra_latency += switch_overhead_ns
        if startup_ns:
            request.extra_latency += startup_ns
        # A core's completion event is exclusively owned by the core (no
        # scheduler cancels it), so the fired event from the previous
        # slice is re-armed instead of allocating one per request.
        self._event = self.sim.schedule_timer(
            total, self._finish_slice, request, run, preempting, event=self._event
        )

    def _finish_slice(self, request: Request, ran_ns: float, preempted: bool) -> None:
        self.busy_ns += self.sim.now - self._run_started
        self.current = None
        request.remaining -= ran_ns
        if preempted:
            self.preemptions += 1
            if self.on_preempt is None:
                raise RuntimeError(
                    f"core {self.core_id} preempted without an on_preempt handler"
                )
            self.on_preempt(self, request)
        else:
            request.remaining = 0.0
            request.finished = self.sim.now
            self.completed += 1
            self.on_complete(self, request)

    # ------------------------------------------------------------------
    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` this core spent executing."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"running #{self.current.req_id}" if self.current else "idle"
        return f"<Core {self.core_id} {state} done={self.completed}>"
