"""Shared memory-bandwidth contention model.

Table I lists "mem. b/w" among the hardware schedulers' scalability
bottlenecks, and the MICA experiments move real value bytes (512 B
values, DRAM-resident log).  This model captures the first-order
effect: cores share a finite DRAM bandwidth, and when the aggregate
demand within a window approaches it, each access's effective latency
inflates.

The model is deliberately coarse -- a sliding-window utilization
estimate, not a DRAM controller: it answers "how much does a 512 B
value copy cost when the machine moves N GB/s?" which is all the
service-time modelling needs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.sim.engine import Simulator

#: DDR4-class single-socket bandwidth: ~100 GB/s = 0.1 B/ns per... in
#: ns-and-bytes units: 100 GB/s = 100 bytes/ns.
DEFAULT_BANDWIDTH_BYTES_PER_NS = 100.0

#: Uncontended DRAM access latency.
DEFAULT_IDLE_LATENCY_NS = 80.0


class MemoryBandwidthModel:
    """Sliding-window bandwidth accounting with latency inflation.

    ``access(bytes)`` records a transfer and returns its modelled
    latency: the idle DRAM latency, plus the transfer time at full
    bandwidth, inflated by ``1 / (1 - utilization)`` as the window's
    demand approaches capacity (the standard open-queue approximation
    for a bandwidth-shared resource).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_ns: float = DEFAULT_BANDWIDTH_BYTES_PER_NS,
        idle_latency_ns: float = DEFAULT_IDLE_LATENCY_NS,
        window_ns: float = 10_000.0,
        max_inflation: float = 20.0,
    ) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if idle_latency_ns < 0:
            raise ValueError("idle latency must be >= 0")
        if window_ns <= 0:
            raise ValueError("window must be positive")
        if max_inflation < 1:
            raise ValueError("max inflation must be >= 1")
        self.sim = sim
        self.bandwidth = float(bandwidth_bytes_per_ns)
        self.idle_latency_ns = float(idle_latency_ns)
        self.window_ns = float(window_ns)
        self.max_inflation = float(max_inflation)
        self._events: Deque[Tuple[float, int]] = deque()
        self._window_bytes = 0
        self.total_bytes = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    def _expire(self) -> None:
        horizon = self.sim.now - self.window_ns
        events = self._events
        while events and events[0][0] < horizon:
            _, size = events.popleft()
            self._window_bytes -= size

    def utilization(self) -> float:
        """Fraction of the window's byte capacity currently claimed."""
        self._expire()
        capacity = self.bandwidth * self.window_ns
        return min(1.0, self._window_bytes / capacity)

    def access(self, size_bytes: int) -> float:
        """Record a transfer; return its modelled latency in ns."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        self._expire()
        utilization = self.utilization()
        inflation = min(self.max_inflation,
                        1.0 / max(1e-9, 1.0 - utilization))
        self._events.append((self.sim.now, size_bytes))
        self._window_bytes += size_bytes
        self.total_bytes += size_bytes
        self.accesses += 1
        transfer_ns = size_bytes / self.bandwidth
        return self.idle_latency_ns + transfer_ns * inflation

    # ------------------------------------------------------------------
    def achieved_bandwidth_bytes_per_ns(self) -> float:
        """Long-run average demand (diagnostics)."""
        if self.sim.now <= 0:
            return 0.0
        return self.total_bytes / self.sim.now
