"""The manager-tile messaging hardware: migrator + controller (Fig. 6)
implementing the four-message protocol of Table II over the NoC.

Message types
-------------
* ``PREDICT_CONFIG`` -- core-local PR write; never crosses the NoC.
* ``MIGRATE`` -- carries ``req_num`` 14 B descriptors from the source
  manager's MR tail to the destination's MR tail.
* ``UPDATE`` -- broadcasts the local queue length to all other managers.
* ``ACK``/``NACK`` -- migration accepted (source forgets the
  descriptors) or rejected because the destination's receive FIFO / MR
  file is full (source restores them; the migration is *not* replayed,
  per Sec. V-A).

Fidelity notes
--------------
The paper keeps migrated descriptors valid in the source MRs until the
ACK arrives.  We instead hold in-flight descriptors in a pending buffer
and restore them on NACK: the observable behaviour (no loss, no
duplication, no replay) is identical, without modelling speculative
double-dispatch.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.sim.engine import Simulator
from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.noc import Noc, NocMessage
from repro.hw.registers import HardwareFifo, MigrationRegisterFile, ParameterRegisters
from repro.telemetry import MetricRegistry
from repro.workload.request import Request

#: Virtual network reserved for Altocumulus traffic (Sec. V-B).
ALTOCUMULUS_VNET = 1

#: Bytes of MIGRATE header: req_num + src_mid + dst_mid + tail pointer.
MIGRATE_HEADER_BYTES = 8

#: Bytes of an UPDATE payload: one queue-length word.
UPDATE_BYTES = 8

#: Bytes of an ACK/NACK message.
ACK_BYTES = 4


class MessageType(enum.Enum):
    """The Table II message classes."""
    PREDICT_CONFIG = "predict_config"
    MIGRATE = "migrate"
    UPDATE = "update"
    ACK = "ack"
    NACK = "nack"


#: Payloads ride inside every protocol message; slotted where the
#: runtime supports it (``dataclass(slots=True)`` needs Python 3.10).
_SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_SLOTTED)
class _Payload:
    """What rides inside a NocMessage for this protocol."""

    kind: MessageType
    src_manager: int
    dst_manager: int
    requests: List[Request] = field(default_factory=list)
    queue_len: int = 0
    migrate_id: int = 0


@dataclass
class MessagingStats:
    """Point-in-time view of one tile's protocol counters.

    Snapshot of the registry-owned instruments; read via
    :attr:`ManagerTileHw.stats`.
    """

    migrates_sent: int = 0
    migrates_acked: int = 0
    migrates_nacked: int = 0
    descriptors_sent: int = 0
    descriptors_accepted: int = 0
    updates_sent: int = 0
    updates_received: int = 0
    send_backpressure: int = 0


#: Counter suffixes registered per tile, in MessagingStats field order.
_TILE_COUNTERS = (
    "migrates_sent",
    "migrates_acked",
    "migrates_nacked",
    "descriptors_sent",
    "descriptors_accepted",
    "updates_sent",
    "updates_received",
    "send_backpressure",
)


class ManagerTileHw:
    """One manager tile's migration hardware.

    The runtime (software) talks to this object through three calls --
    :meth:`configure` (PREDICT_CONFIG), :meth:`send_migrate` (MIGRATE)
    and :meth:`broadcast_update` (UPDATE) -- and receives three
    callbacks: ``on_migrate_in``, ``on_update`` and
    ``on_migrate_rejected``.
    """

    def __init__(
        self,
        sim: Simulator,
        noc: Noc,
        tile_id: int,
        manager_index: int,
        constants: HwConstants = DEFAULT_CONSTANTS,
        mr_capacity: Optional[int] = None,
        on_migrate_in: Optional[Callable[[List[Request], int], None]] = None,
        on_update: Optional[Callable[[int, int], None]] = None,
        on_migrate_rejected: Optional[Callable[[List[Request], int], None]] = None,
        migrator_ns_per_entry: float = 0.5,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.sim = sim
        self.noc = noc
        self.tile_id = int(tile_id)
        self.manager_index = int(manager_index)
        self.constants = constants
        self.mrs = MigrationRegisterFile(
            capacity=mr_capacity, entry_bytes=constants.mr_entry_bytes
        )
        self.prs = ParameterRegisters()
        self.send_fifo = HardwareFifo(constants.send_fifo_entries)
        self.recv_fifo = HardwareFifo(constants.recv_fifo_entries)
        self.on_migrate_in = on_migrate_in
        self.on_update = on_update
        self.on_migrate_rejected = on_migrate_rejected
        self.migrator_ns_per_entry = float(migrator_ns_per_entry)
        # Protocol accounting lives in owned registry instruments under
        # a per-tile namespace; a standalone tile gets a private
        # registry.  Bumping a slotted instrument's ``value`` costs the
        # same as the old dataclass field increments.
        self.registry = registry if registry is not None else MetricRegistry()
        prefix = f"messaging.m{self.manager_index}"
        (
            self._m_migrates_sent,
            self._m_migrates_acked,
            self._m_migrates_nacked,
            self._m_descriptors_sent,
            self._m_descriptors_accepted,
            self._m_updates_sent,
            self._m_updates_received,
            self._m_send_backpressure,
        ) = [
            self.registry.counter(f"{prefix}.{suffix}")
            for suffix in _TILE_COUNTERS
        ]
        self._peers: Dict[int, "ManagerTileHw"] = {}
        self._others: List["ManagerTileHw"] = []
        self._pending_acks: Dict[int, List[Request]] = {}
        self._next_migrate_id = 0
        #: Migrate ids forgotten by a crash-restart (:meth:`fail`):
        #: their eventual ACK is benign (the batch lives on at the
        #: destination), their NACK means the descriptors are lost.
        self._dead_migrate_ids: Set[int] = set()
        #: Called with the lost descriptors when a NACK returns for a
        #: forgotten migrate id (the restarted manager no longer holds
        #: the pending buffer to restore them from).
        self.on_dead_nack: Optional[Callable[[List[Request]], None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, peers: List["ManagerTileHw"]) -> None:
        """Register every manager tile (including self) for routing."""
        self._peers = {p.manager_index: p for p in peers}
        # UPDATE fan-out targets, precomputed: broadcast_update runs once
        # per manager per tick, so rebuilding this list there was pure
        # per-tick overhead.
        self._others = [p for p in peers if p is not self]

    def _peer(self, manager_index: int) -> "ManagerTileHw":
        if manager_index not in self._peers:
            raise KeyError(f"manager {manager_index} is not connected")
        return self._peers[manager_index]

    # ------------------------------------------------------------------
    # Software-visible operations
    # ------------------------------------------------------------------
    def configure(self, **params: object) -> None:
        """PREDICT_CONFIG: core-local PR write (no NoC traffic)."""
        self.prs.configure(**params)

    def send_migrate(self, dst_manager: int, requests: List[Request]) -> bool:
        """MIGRATE ``requests`` (already removed from the local MR tail)
        to another manager.  Returns False and leaves the caller to
        restore the requests if the send FIFO lacks room (back-pressure).
        """
        if dst_manager == self.manager_index:
            raise ValueError("cannot migrate to self")
        if not requests:
            return True
        if self.send_fifo.free_slots() < len(requests):
            self._m_send_backpressure.value += 1
            return False
        for r in requests:
            self.send_fifo.push(r)
        migrate_id = self._next_migrate_id
        self._next_migrate_id += 1
        self._pending_acks[migrate_id] = list(requests)
        payload = _Payload(
            kind=MessageType.MIGRATE,
            src_manager=self.manager_index,
            dst_manager=dst_manager,
            requests=list(requests),
            migrate_id=migrate_id,
        )
        dst_tile = self._peer(dst_manager).tile_id
        size = MIGRATE_HEADER_BYTES + len(requests) * self.constants.mr_entry_bytes
        # The migrator reads req_num pointers from local MRs into the
        # send FIFO before injection (register-to-register movement).
        inject_delay = len(requests) * self.migrator_ns_per_entry
        self.sim.schedule(
            inject_delay,
            self._inject,
            NocMessage(
                src=self.tile_id,
                dst=dst_tile,
                payload=payload,
                size_bytes=size,
                vnet=ALTOCUMULUS_VNET,
            ),
        )
        self._m_migrates_sent.value += 1
        self._m_descriptors_sent.value += len(requests)
        return True

    def broadcast_update(self, queue_len: int) -> None:
        """UPDATE: broadcast the local queue length to all other managers."""
        for peer in self._others:
            payload = _Payload(
                kind=MessageType.UPDATE,
                src_manager=self.manager_index,
                dst_manager=peer.manager_index,
                queue_len=queue_len,
            )
            self.noc.send(
                NocMessage(
                    src=self.tile_id,
                    dst=peer.tile_id,
                    payload=payload,
                    size_bytes=UPDATE_BYTES,
                    vnet=ALTOCUMULUS_VNET,
                ),
                self._deliver,
            )
            self._m_updates_sent.value += 1

    # ------------------------------------------------------------------
    # Hardware internals
    # ------------------------------------------------------------------
    def _inject(self, msg: NocMessage) -> None:
        # Entries leave the send FIFO as the message enters the NoC.
        payload: _Payload = msg.payload
        for _ in payload.requests:
            self.send_fifo.pop()
        self.noc.send(msg, self._deliver)

    def _deliver(self, msg: NocMessage) -> None:
        """Controller receive path: runs on the *destination* tile."""
        payload: _Payload = msg.payload
        receiver = self._peer(payload.dst_manager)
        receiver._handle(payload)

    def _handle(self, payload: _Payload) -> None:
        if payload.dst_manager != self.manager_index:
            raise RuntimeError(
                f"misrouted message for manager {payload.dst_manager} "
                f"delivered to {self.manager_index}"
            )
        if payload.kind is MessageType.UPDATE:
            self._m_updates_received.value += 1
            self.prs.queue_lengths = list(self.prs.queue_lengths)
            if self.on_update is not None:
                self.on_update(payload.src_manager, payload.queue_len)
            return
        if payload.kind is MessageType.MIGRATE:
            self._receive_migrate(payload)
            return
        if payload.kind in (MessageType.ACK, MessageType.NACK):
            self._receive_ack(payload)
            return
        raise RuntimeError(f"unexpected message kind {payload.kind}")

    def _receive_migrate(self, payload: _Payload) -> None:
        requests = payload.requests
        mr_free = self.mrs.free_slots()
        room = self.recv_fifo.free_slots() >= len(requests) and (
            mr_free is None or mr_free >= len(requests)
        )
        if not room:
            self._reply(payload, MessageType.NACK)
            return
        self.recv_fifo.push_many(requests)
        # The migrator drains the receive FIFO into the local MR file.
        drain = len(requests) * self.migrator_ns_per_entry
        self.sim.schedule(drain, self._drain_into_mrs, payload)

    def _drain_into_mrs(self, payload: _Payload) -> None:
        for _ in payload.requests:
            self.recv_fifo.pop()
        for r in payload.requests:
            r.migrations += 1
            self.mrs.enqueue(r)
        self._m_descriptors_accepted.value += len(payload.requests)
        self._reply(payload, MessageType.ACK)
        if self.on_migrate_in is not None:
            self.on_migrate_in(payload.requests, payload.src_manager)

    def _reply(self, original: _Payload, kind: MessageType) -> None:
        reply = _Payload(
            kind=kind,
            src_manager=self.manager_index,
            dst_manager=original.src_manager,
            migrate_id=original.migrate_id,
            requests=original.requests if kind is MessageType.NACK else [],
        )
        src_tile = self._peer(original.src_manager).tile_id
        self.noc.send(
            NocMessage(
                src=self.tile_id,
                dst=src_tile,
                payload=reply,
                size_bytes=ACK_BYTES,
                vnet=ALTOCUMULUS_VNET,
            ),
            self._deliver,
        )

    def _receive_ack(self, payload: _Payload) -> None:
        pending = self._pending_acks.pop(payload.migrate_id, None)
        if pending is None:
            if payload.migrate_id in self._dead_migrate_ids:
                # Reply to a batch forgotten in a crash-restart: an ACK
                # means the batch already lives at the destination; a
                # NACK means nobody holds the descriptors any more.
                self._dead_migrate_ids.discard(payload.migrate_id)
                if (
                    payload.kind is MessageType.NACK
                    and self.on_dead_nack is not None
                ):
                    self.on_dead_nack(list(payload.requests))
                return
            raise RuntimeError(
                f"manager {self.manager_index} got {payload.kind.value} for "
                f"unknown migrate id {payload.migrate_id}"
            )
        if payload.kind is MessageType.ACK:
            self._m_migrates_acked.value += 1
            return
        # NACK: the destination rejected the batch; restore it locally.
        # The slots are still logically reserved at the source, so the
        # restore bypasses the capacity check.
        self._m_migrates_nacked.value += 1
        for r in pending:
            self.mrs.enqueue_reserved(r)
        if self.on_migrate_rejected is not None:
            self.on_migrate_rejected(pending, payload.src_manager)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail(self) -> List[Request]:
        """Crash-restart this tile's migration protocol state.

        The pending-ACK buffer is forgotten (its migrate ids move to the
        dead set; see :meth:`_receive_ack` for their replies' fates) and
        the MR file is drained.  Returns the orphaned MR descriptors, in
        arrival order, for the owning system to re-dispatch or drop.
        Send/receive FIFO entries mid-transfer ride out with their
        already-scheduled events -- the model's manager failure is an
        instantaneous state loss plus restart, not an outage window.
        """
        self._dead_migrate_ids.update(self._pending_acks)
        self._pending_acks.clear()
        orphans = list(self.mrs.entries)
        self.mrs.entries.clear()
        return orphans

    # ------------------------------------------------------------------
    @property
    def stats(self) -> MessagingStats:
        """Snapshot of this tile's registry instruments."""
        return MessagingStats(
            migrates_sent=self._m_migrates_sent.value,
            migrates_acked=self._m_migrates_acked.value,
            migrates_nacked=self._m_migrates_nacked.value,
            descriptors_sent=self._m_descriptors_sent.value,
            descriptors_accepted=self._m_descriptors_accepted.value,
            updates_sent=self._m_updates_sent.value,
            updates_received=self._m_updates_received.value,
            send_backpressure=self._m_send_backpressure.value,
        )

    @property
    def in_flight_descriptors(self) -> int:
        """Descriptors sent but not yet ACKed/NACKed."""
        return sum(len(v) for v in self._pending_acks.values())
