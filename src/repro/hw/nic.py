"""NIC models: steering policies and NIC-to-core delivery costs.

Two orthogonal concerns live here:

* **Steering** -- which receive queue gets a packet.  :class:`RssSteering`
  implements the commodity load-oblivious policies the paper models in
  Fig. 9: ``connection`` (hash of the flow tuple, real RSS), ``random``
  and ``round-robin``.
* **Delivery** -- the latency from wire arrival until the request is
  visible to the scheduling layer.  :class:`PcieDelivery` models a
  commodity PCIe-attached NIC; :class:`HwTerminatedDelivery` models the
  integrated NICs of Nebula/nanoPU/AC_int where the network stack is
  terminated in hardware (~30 ns total).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.pcie import PcieLink
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request


class DeliveryModel(abc.ABC):
    """Latency from NIC wire arrival to scheduler visibility.

    Concrete models keep two running counters -- requests delivered and
    total delivery latency charged -- exposed to a telemetry registry as
    bound ``nic.*`` instruments via :meth:`register_metrics`.
    """

    def __init__(self) -> None:
        self.delivered = 0
        self.delivery_ns_total = 0.0

    @abc.abstractmethod
    def delivery_ns(self, request: Request) -> float:
        """Per-request NIC -> host delivery latency in ns."""

    def register_metrics(self, registry, prefix: str = "nic") -> None:
        """Register bound delivery counters into ``registry``."""
        registry.counter(
            f"{prefix}.delivered", fn=lambda: getattr(self, "delivered", 0)
        )
        registry.counter(
            f"{prefix}.delivery_ns_total",
            fn=lambda: getattr(self, "delivery_ns_total", 0.0),
        )


class HwTerminatedDelivery(DeliveryModel):
    """Hardware-terminated network stack: MAC + serial I/O + transport
    interpretation, ~30 ns total (nanoPU/Nebula style)."""

    def __init__(self, constants: HwConstants = DEFAULT_CONSTANTS) -> None:
        super().__init__()
        self.constants = constants

    def delivery_ns(self, request: Request) -> float:
        ns = self.constants.nic_terminate_ns
        self.delivered += 1
        self.delivery_ns_total += ns
        return ns


class PcieDelivery(DeliveryModel):
    """Commodity NIC behind PCIe: termination plus a size-dependent
    PCIe transfer (200-800 ns)."""

    def __init__(self, constants: HwConstants = DEFAULT_CONSTANTS) -> None:
        super().__init__()
        self.constants = constants
        self._pcie = PcieLink(constants)

    def delivery_ns(self, request: Request) -> float:
        ns = self.constants.nic_terminate_ns + self._pcie.transfer_ns(
            request.size_bytes
        )
        self.delivered += 1
        self.delivery_ns_total += ns
        return ns

    def register_metrics(self, registry, prefix: str = "nic") -> None:
        super().register_metrics(registry, prefix)
        self._pcie.register_metrics(registry, prefix=f"{prefix}.pcie")


class RssSteering:
    """Load-oblivious receive-queue selection.

    Policies (Fig. 9):

    * ``"connection"`` -- hash the flow id (default; real RSS behaviour).
      Hot flows pin to one queue, creating persistent imbalance.
    * ``"random"`` -- uniformly random queue per packet.
    * ``"round_robin"`` -- strict rotation; the most balanced oblivious
      policy, but still ignorant of queue occupancy and service times.
    """

    POLICIES = ("connection", "random", "round_robin")

    def __init__(
        self,
        n_queues: int,
        policy: str = "connection",
        rng: Optional[np.random.Generator] = None,
        pool: Optional[ConnectionPool] = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"need at least one queue, got {n_queues}")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {self.POLICIES}")
        if policy == "random" and rng is None:
            raise ValueError("random policy requires an rng")
        self.n_queues = int(n_queues)
        self.policy = policy
        self.rng = rng
        self.pool = pool or ConnectionPool(1 << 16)
        self._rr_next = 0

    def pick_queue(self, request: Request) -> int:
        """Choose the receive queue for a request."""
        if self.policy == "connection":
            return self.pool.hash_to_queue(request.connection, self.n_queues)
        if self.policy == "random":
            assert self.rng is not None
            return int(self.rng.integers(0, self.n_queues))
        # round_robin
        queue = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_queues
        return queue
