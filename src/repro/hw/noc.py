"""Network-on-chip message transport.

Altocumulus messages (MIGRATE, UPDATE, ACK/NACK) travel over the NoC on
a dedicated virtual network with deterministic routing (Sec. V-B).  The
model charges:

* per-hop latency (3 ns default) times the XY hop count, plus
* serialization of the message's flits at the injection port, plus
* optional endpoint congestion -- each receiver drains messages one at a
  time, so bursts of migrations toward one manager queue up.

Because the paper observes the NoC is lightly loaded for scheduling
traffic [58], link-level contention is *not* modelled; endpoint
serialization captures the only congestion the protocol can create
(many-to-one migration bursts).
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.hw.topology import MeshTopology
from repro.telemetry import MetricRegistry, trace_sink

#: Width of one NoC flit in bytes (typical 128-bit links).
FLIT_BYTES = 16

#: Messages are allocated once per MIGRATE/UPDATE/ACK, which at tick
#: rates means tens of thousands per run -- slotted where the runtime
#: supports it (``dataclass(slots=True)`` needs Python 3.10).
_SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_SLOTTED)
class NocMessage:
    """One message in flight: source/destination tiles and opaque payload."""

    src: int
    dst: int
    payload: Any
    size_bytes: int = FLIT_BYTES
    vnet: int = 0
    injected_at: float = 0.0
    delivered_at: Optional[float] = None

    @property
    def flits(self) -> int:
        """Number of flits the message occupies (header rides in flit 0)."""
        return max(1, math.ceil(self.size_bytes / FLIT_BYTES))


@dataclass
class NocStats:
    """Point-in-time view of NoC accounting for overhead studies.

    Snapshot of the registry-owned instruments; read via
    :attr:`Noc.stats`.  Mutating a snapshot does not affect the NoC.
    """

    messages: int = 0
    bytes: int = 0
    total_latency_ns: float = 0.0
    by_vnet: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.messages if self.messages else 0.0


class Noc:
    """Delivers messages between mesh tiles with hop + serialization delay."""

    def __init__(
        self,
        sim: Simulator,
        topology: MeshTopology,
        per_hop_ns: float = 3.0,
        flit_ns: float = 1.0,
        endpoint_serialization: bool = True,
        link_contention: bool = False,
        registry: Optional[MetricRegistry] = None,
        metrics_prefix: str = "noc",
    ) -> None:
        if per_hop_ns < 0 or flit_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.sim = sim
        self.topology = topology
        self.per_hop_ns = float(per_hop_ns)
        self.flit_ns = float(flit_ns)
        self.endpoint_serialization = endpoint_serialization
        #: Optional higher-fidelity mode: serialize messages on each
        #: XY-route link, not just the ejection port.  Off by default
        #: because scheduling traffic leaves the NoC lightly loaded
        #: ([58], Sec. V-B) -- the mode exists to *verify* that claim.
        self.link_contention = link_contention
        # Accounting lives in owned registry instruments (a slotted
        # ``value`` attribute costs the same to bump as the old
        # dataclass fields); a standalone NoC gets a private registry.
        self.registry = registry if registry is not None else MetricRegistry()
        p = metrics_prefix
        self._m_messages = self.registry.counter(f"{p}.messages")
        self._m_bytes = self.registry.counter(f"{p}.bytes")
        self._m_latency = self.registry.counter(f"{p}.latency_ns_total")
        self._by_vnet: Dict[int, int] = {}
        self.registry.gauge(
            f"{p}.by_vnet",
            fn=lambda: {str(v): n for v, n in sorted(self._by_vnet.items())},
        )
        self._trace = trace_sink()
        # Earliest time each receiver's ejection port frees up.
        self._ejection_free: Dict[int, float] = {}
        # Earliest time each directed link (a -> b) frees up.
        self._link_free: Dict[Tuple[int, int], float] = {}

    @property
    def stats(self) -> NocStats:
        """Snapshot of the NoC's registry instruments."""
        return NocStats(
            messages=self._m_messages.value,
            bytes=self._m_bytes.value,
            total_latency_ns=self._m_latency.value,
            by_vnet=self._by_vnet,
        )

    def latency(self, msg: NocMessage) -> float:
        """Uncontended wire latency for a message."""
        hops = self.topology.hops(msg.src, msg.dst)
        return hops * self.per_hop_ns + msg.flits * self.flit_ns

    def send(
        self,
        msg: NocMessage,
        on_delivery: Callable[[NocMessage], None],
    ) -> float:
        """Inject ``msg`` now; invoke ``on_delivery(msg)`` at arrival.

        Returns the scheduled delivery time.  If endpoint serialization
        is enabled and the destination's ejection port is still draining
        an earlier message, delivery is pushed back accordingly.
        """
        now = self.sim.now
        msg.injected_at = now
        # Compute the flit count once per send: ``msg.flits`` is a
        # property doing float ceil math, and the hot path needs it up
        # to twice (latency + ejection-port hold).  Integer ceil is
        # exact for byte counts.
        flit_time = max(1, -(-msg.size_bytes // FLIT_BYTES)) * self.flit_ns
        if self.link_contention:
            arrival = self._contended_arrival(msg)
        else:
            arrival = (
                now
                + self.topology.hops(msg.src, msg.dst) * self.per_hop_ns
                + flit_time
            )
        if self.endpoint_serialization:
            free_at = self._ejection_free.get(msg.dst, 0.0)
            if free_at > arrival:
                arrival = free_at
            # The ejection port is busy for the message's flit time.
            self._ejection_free[msg.dst] = arrival + flit_time
        msg.delivered_at = arrival
        self._m_messages.value += 1
        self._m_bytes.value += msg.size_bytes
        self._m_latency.value += arrival - now
        by_vnet = self._by_vnet
        by_vnet[msg.vnet] = by_vnet.get(msg.vnet, 0) + 1
        trace = self._trace
        if trace.enabled:
            trace.span("noc", msg.dst, f"vnet{msg.vnet}", now, arrival)
        self.sim.schedule_at(arrival, on_delivery, msg)
        return arrival

    def _contended_arrival(self, msg: NocMessage) -> float:
        """Wormhole-style traversal with per-link serialization.

        The head flit waits for each link on the XY route to free, then
        holds it for the message's serialization time; the tail flit
        arrives one serialization window after the head.
        """
        serialization = msg.flits * self.flit_ns
        t = self.sim.now
        for link in self.topology.route_links(msg.src, msg.dst):
            t = max(t, self._link_free.get(link, 0.0))
            self._link_free[link] = t + serialization
            t += self.per_hop_ns
        return t + serialization

    def broadcast(
        self,
        src: int,
        dsts: "list[int]",
        payload: Any,
        size_bytes: int,
        on_delivery: Callable[[NocMessage], None],
        vnet: int = 0,
    ) -> None:
        """Send one copy of ``payload`` from ``src`` to each tile in ``dsts``.

        Models UPDATE broadcasts: one unicast per destination (no tree),
        matching the simple controller hardware of Fig. 6.
        """
        for dst in dsts:
            if dst == src:
                continue
            self.send(
                NocMessage(src=src, dst=dst, payload=payload,
                           size_bytes=size_bytes, vnet=vnet),
                on_delivery,
            )
