"""PCIe link model.

Commodity NIC-to-CPU transfers cross PCIe, whose latency the paper takes
from Neugebauer et al. [46]: 200-800 ns depending on transfer size.  The
model interpolates linearly between the endpoints up to a "full" size,
saturating beyond it.  The AC_rss and RSS-baseline systems charge this
per delivered request; integrated-NIC systems (Nebula, nanoPU, AC_int)
bypass it.
"""

from __future__ import annotations

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants


class PcieLink:
    """Size-dependent PCIe transfer latency."""

    def __init__(self, constants: HwConstants = DEFAULT_CONSTANTS) -> None:
        self.constants = constants
        self.transfers = 0
        self.bytes = 0

    def transfer_ns(self, size_bytes: int) -> float:
        """Latency to move ``size_bytes`` across the link, in ns."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        c = self.constants
        self.transfers += 1
        self.bytes += size_bytes
        frac = min(1.0, size_bytes / c.pcie_full_size_bytes)
        return c.pcie_min_ns + frac * (c.pcie_max_ns - c.pcie_min_ns)

    def register_metrics(self, registry, prefix: str = "pcie") -> None:
        """Register bound transfer counters into a telemetry registry."""
        registry.counter(f"{prefix}.transfers", fn=lambda: self.transfers)
        registry.counter(f"{prefix}.bytes", fn=lambda: self.bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.constants
        return f"<PcieLink {c.pcie_min_ns:.0f}-{c.pcie_max_ns:.0f}ns>"
