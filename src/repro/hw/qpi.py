"""QPI (inter-socket) link model.

Systems larger than one coherence domain pay QPI latency (150 ns
point-to-point [6]) whenever a request or scheduling message crosses
sockets.  The Fig. 14 experiment caps itself at 64 cores precisely
because "large core count needs cross QPI bus, whose latency is
detrimental for 50 ns GET/SET" -- this model lets the scalability
experiments quantify that.
"""

from __future__ import annotations

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants


class QpiLink:
    """Socket-crossing cost for a system partitioned into sockets."""

    def __init__(
        self,
        cores_per_socket: int = 64,
        constants: HwConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if cores_per_socket <= 0:
            raise ValueError(f"cores_per_socket must be positive, got {cores_per_socket}")
        self.cores_per_socket = int(cores_per_socket)
        self.constants = constants
        self.crossings = 0
        self.crossing_ns_total = 0.0

    def socket_of(self, core_id: int) -> int:
        """Which socket a core lives on."""
        if core_id < 0:
            raise ValueError(f"core id must be >= 0, got {core_id}")
        return core_id // self.cores_per_socket

    def crossing_ns(self, src_core: int, dst_core: int) -> float:
        """Latency added if the two cores are on different sockets."""
        if self.socket_of(src_core) == self.socket_of(dst_core):
            return 0.0
        self.crossings += 1
        self.crossing_ns_total += self.constants.qpi_ns
        return self.constants.qpi_ns

    def register_metrics(self, registry, prefix: str = "qpi") -> None:
        """Register bound socket-crossing counters into a registry."""
        registry.counter(f"{prefix}.crossings", fn=lambda: self.crossings)
        registry.counter(
            f"{prefix}.crossing_ns_total", fn=lambda: self.crossing_ns_total
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QpiLink {self.constants.qpi_ns:.0f}ns "
            f"cores/socket={self.cores_per_socket}>"
        )
