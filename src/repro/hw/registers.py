"""Manager-tile register structures (Fig. 6).

Each Altocumulus manager tile adds:

* **Migration registers (MRs)** -- an in-order file of 14 B descriptors
  (8 B pointer + 48-bit IP/port) pointing at RPC messages that live in
  the LLC.  Bounded per Sec. V-B: near saturation E[Nq] ~ 11 per group,
  so one 154 B file (11 entries) suffices -- but the capacity is a
  parameter so sizing studies can sweep it.
* **Parameter registers (PRs)** -- Period, Bulk, Concurrency, threshold
  T and the queue-length vector q, written by PREDICT_CONFIG.
* **Send/receive FIFOs** -- 16-entry staging buffers between the
  migrator and the NoC; a full receive FIFO NACKs incoming migrations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.workload.request import Request


class HardwareFifo:
    """A bounded FIFO of request descriptors.

    ``push`` returns False when full -- callers translate that into a
    NACK (receive path) or back-pressure (send path) rather than
    dropping silently.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: Deque[Request] = deque()
        self.high_watermark = 0
        self.rejected = 0

    def push(self, request: Request) -> bool:
        if len(self._entries) >= self.capacity:
            self.rejected += 1
            return False
        self._entries.append(request)
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return True

    def push_many(self, requests: List[Request]) -> bool:
        """All-or-nothing bulk push (one MIGRATE payload)."""
        if len(self._entries) + len(requests) > self.capacity:
            self.rejected += 1
            return False
        for r in requests:
            self._entries.append(r)
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return True

    def pop(self) -> Request:
        if not self._entries:
            raise IndexError("pop from empty hardware FIFO")
        return self._entries.popleft()

    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity


class MigrationRegisterFile:
    """The in-order descriptor file of one manager tile.

    Unlike the FIFOs, the MR file backs the manager's NetRX queue view:
    descriptors are appended at the tail in arrival order, dispatched
    from the head, and migrated *from the tail* (Algorithm 1 dequeues
    ``NetRX[j].tail``) because the newest arrivals are the predicted
    SLO violators.
    """

    def __init__(self, capacity: Optional[int] = None, entry_bytes: int = 14) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.entry_bytes = int(entry_bytes)
        #: Backing store.  Exposed (read-only by convention) because the
        #: dispatch loop polls queue emptiness/length once per request;
        #: going through ``len(mrs)`` costs a method call each time.
        #: The deque is only ever mutated in place, never rebound, so
        #: holding a reference to it stays valid for the file's lifetime.
        self.entries: Deque[Request] = deque()
        self._entries = self.entries
        self.high_watermark = 0

    def enqueue(self, request: Request) -> bool:
        """Append at the tail; False if the file is full."""
        if self.capacity is not None and len(self._entries) >= self.capacity:
            return False
        self._entries.append(request)
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return True

    def enqueue_reserved(self, request: Request) -> None:
        """Re-insert a descriptor whose slot is logically still reserved.

        The paper keeps migrated descriptors valid in the source MRs
        until the ACK arrives; our pending-buffer model removes them
        eagerly, so a NACK restore must never fail on capacity -- the
        slot was never really freed.
        """
        self._entries.append(request)
        self.high_watermark = max(self.high_watermark, len(self._entries))

    def dequeue_head(self) -> Request:
        """Remove the oldest descriptor (normal dispatch path)."""
        if not self._entries:
            raise IndexError("dequeue from empty MR file")
        return self._entries.popleft()

    def dequeue_tail(self, count: int) -> List[Request]:
        """Remove up to ``count`` newest descriptors (migration path).

        Returned in arrival order so the destination can re-enqueue them
        preserving FIFO semantics among themselves.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        taken: List[Request] = []
        for _ in range(min(count, len(self._entries))):
            taken.append(self._entries.pop())
        taken.reverse()
        return taken

    def dequeue_tail_where(self, count: int, predicate) -> List[Request]:
        """Remove up to ``count`` newest descriptors satisfying
        ``predicate``, skipping over ineligible ones (which stay put in
        their original order).

        Used by migration selection: freshly migrated requests sit at
        the tail but are ineligible (at-most-once rule), so the migrator
        must look past them.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        taken: List[Request] = []
        skipped: List[Request] = []
        while self._entries and len(taken) < count:
            candidate = self._entries.pop()
            if predicate(candidate):
                taken.append(candidate)
            else:
                skipped.append(candidate)
        for r in reversed(skipped):
            self._entries.append(r)
        taken.reverse()
        return taken

    def peek_all(self) -> List[Request]:
        """Snapshot of queued descriptors in arrival order (read-only)."""
        return list(self._entries)

    def peek_tail(self, count: int) -> List[Request]:
        """The up-to-``count`` newest descriptors (newest first)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out: List[Request] = []
        for request in reversed(self._entries):
            if len(out) >= count:
                break
            out.append(request)
        return out

    def free_slots(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return len(self._entries) * self.entry_bytes


@dataclass
class ParameterRegisters:
    """The PR block: runtime-tunable migration parameters (Table II's
    PREDICT_CONFIG writes land here)."""

    period_ns: float = 200.0
    bulk: int = 16
    concurrency: int = 1
    threshold: float = float("inf")
    queue_lengths: List[int] = field(default_factory=list)

    def configure(self, **kwargs: object) -> None:
        """Apply a PREDICT_CONFIG register write."""
        for key, value in kwargs.items():
            if not hasattr(self, key):
                raise KeyError(f"unknown parameter register {key!r}")
            setattr(self, key, value)
        if self.period_ns <= 0:
            raise ValueError("period_ns must be positive")
        if self.bulk <= 0:
            raise ValueError("bulk must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
