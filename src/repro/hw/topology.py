"""On-chip mesh topology.

Fig. 6 places manager and worker tiles on a 2-D mesh (the T0..T15 tile
grid).  The NoC model needs hop counts between tiles; everything else
(routing, virtual networks) is folded into the per-hop latency and the
message model in :mod:`repro.hw.noc`.
"""

from __future__ import annotations

import math
from typing import Tuple


class MeshTopology:
    """A 2-D mesh of ``n_tiles`` tiles with XY (dimension-ordered) routing.

    The mesh is the smallest square (or near-square rectangle) that fits
    the tile count, matching how tiled manycores are laid out.  XY routing
    is deterministic -- which is precisely why the paper chooses it for
    Altocumulus messages (Sec. V-B, Message Ordering).
    """

    def __init__(self, n_tiles: int) -> None:
        if n_tiles <= 0:
            raise ValueError(f"need at least one tile, got {n_tiles}")
        self.n_tiles = int(n_tiles)
        self.width = int(math.ceil(math.sqrt(n_tiles)))
        self.height = int(math.ceil(n_tiles / self.width))
        #: Hop-count memo: pairs recur constantly (the NoC asks for the
        #: same manager<->manager and manager<->worker distances on every
        #: message), and the mesh is small enough that the table of all
        #: ordered pairs is negligible.
        self._hops_cache: dict = {}

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) position of a tile in the mesh."""
        self._check(tile)
        return tile % self.width, tile // self.width

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles under XY routing."""
        key = (src, dst)
        cached = self._hops_cache.get(key)
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        result = abs(sx - dx) + abs(sy - dy)
        self._hops_cache[key] = result
        return result

    def route(self, src: int, dst: int) -> "list[int]":
        """The XY (dimension-ordered) route as a tile sequence, source
        included.  Deterministic -- the ordering guarantee Altocumulus
        messages rely on (Sec. V-B)."""
        self._check(src)
        self._check(dst)
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        while x != dx:
            x += 1 if dx > x else -1
            path.append(y * self.width + x)
        while y != dy:
            y += 1 if dy > y else -1
            path.append(y * self.width + x)
        return path

    def route_links(self, src: int, dst: int) -> "list[tuple[int, int]]":
        """Directed links traversed by the XY route."""
        path = self.route(src, dst)
        return list(zip(path, path[1:]))

    def max_hops(self) -> int:
        """Network diameter (worst-case hop count)."""
        return (self.width - 1) + (self.height - 1)

    def mean_hops(self) -> float:
        """Average hop count over all ordered tile pairs (src != dst).

        Used by latency budget estimates; O(n^2) but only ever called on
        small meshes during configuration.
        """
        if self.n_tiles == 1:
            return 0.0
        total = 0
        for s in range(self.n_tiles):
            for d in range(self.n_tiles):
                if s != d:
                    total += self.hops(s, d)
        return total / (self.n_tiles * (self.n_tiles - 1))

    def _check(self, tile: int) -> None:
        if not 0 <= tile < self.n_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.n_tiles})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MeshTopology {self.width}x{self.height} tiles={self.n_tiles}>"
