"""A MICA-like in-memory key-value store (Sec. IX).

MICA [Lim et al., NSDI'14] is the end-to-end application the paper (and
Nebula / nanoPU / HERD before it) evaluates.  This package implements a
functional Python equivalent:

* :mod:`repro.kvs.log` -- the DRAM-resident circular log holding values.
* :mod:`repro.kvs.hashtable` -- the bucketed hash index over the log.
* :mod:`repro.kvs.store` -- EREW-partitioned store (one partition per
  owner, no concurrency control -- MICA's highest-performance mode).
* :mod:`repro.kvs.dataset` -- the paper's dataset shape: 1.6M pairs of
  16 B keys / 512 B values (~819 MB per manager partition; scaled down
  by default for test-speed).
* :mod:`repro.kvs.dedup` -- at-most-once duplicate detection for
  retried RPCs (the fault-injection client's server-side window).
* :mod:`repro.kvs.handlers` -- GET/SET/SCAN RPC handlers with the
  service-time model for the eRPC (~850 ns) and nanoRPC (~50 ns)
  stacks, plus the EREW remote-owner penalty migrated requests pay.
* :mod:`repro.kvs.ownership` -- pluggable per-key concurrency control
  (EREW / CREW / CRCW / d-CREW admission gating) with RLU-style
  multiversion reads, and the picklable :class:`KvsSpec` that wires a
  KVS-backed workload through quick_run/run_workload/PointSpec.
* :mod:`repro.kvs.wiring` -- attaches a KvsSpec's store + workload to
  any built system (single server, rack, datacenter).
"""

from repro.kvs.log import CircularLog, LogRecord
from repro.kvs.hashtable import HashIndex
from repro.kvs.store import MicaPartition, MicaStore
from repro.kvs.dataset import Dataset, build_dataset
from repro.kvs.dedup import DuplicateDetector
from repro.kvs.handlers import MicaServiceModel, MicaWorkload
from repro.kvs.ownership import (
    MIX_PRESETS,
    OWNERSHIP_MODES,
    Admission,
    KvsSpec,
    MultiversionAccessor,
    OwnershipTable,
)
from repro.kvs.wiring import wire_kvs

__all__ = [
    "CircularLog",
    "LogRecord",
    "HashIndex",
    "MicaPartition",
    "MicaStore",
    "Dataset",
    "build_dataset",
    "DuplicateDetector",
    "MicaServiceModel",
    "MicaWorkload",
    "OWNERSHIP_MODES",
    "MIX_PRESETS",
    "Admission",
    "KvsSpec",
    "MultiversionAccessor",
    "OwnershipTable",
    "wire_kvs",
]
