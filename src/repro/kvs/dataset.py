"""Dataset construction for the MICA experiments.

The paper deploys an 819 MB dataset per manager of 1.6M 16 B/512 B
key/value pairs, 50/50 GET/SET.  Loading 1.6M Python objects per
partition is pointless for a simulation, so :func:`build_dataset`
defaults to a scaled-down population with the same key/value shape;
the full-size figure is a parameter away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.kvs.store import MicaStore
from repro.telemetry import MetricRegistry

#: Paper's key/value sizes.
KEY_BYTES = 16
VALUE_BYTES = 512


@dataclass
class Dataset:
    """A loaded key population and the store holding it."""

    keys: List[bytes]
    store: MicaStore
    value_bytes: int

    def __len__(self) -> int:
        return len(self.keys)

    def sample_key(self, rng: np.random.Generator, zipf_s: float = 0.0) -> bytes:
        """Draw a key: uniform by default, Zipf-skewed when ``zipf_s > 0``
        (hot-key popularity typical of KVS traffic)."""
        n = len(self.keys)
        if zipf_s <= 0:
            return self.keys[int(rng.integers(0, n))]
        # Bounded-Zipf via rejection-free inverse-CDF approximation.
        u = rng.random()
        rank = int(n * u ** (1.0 / (1.0 - zipf_s))) if zipf_s < 1.0 else int(
            min(n - 1, (n**u - 1))
        )
        return self.keys[min(rank, n - 1)]


def make_key(i: int) -> bytes:
    """Deterministic 16 B key for index ``i``."""
    return i.to_bytes(8, "little") + b"\x00" * (KEY_BYTES - 8)


def build_dataset(
    n_partitions: int,
    n_keys: int = 20_000,
    value_bytes: int = VALUE_BYTES,
    n_buckets_per_partition: int = 2_048,
    log_bytes_per_partition: int = 32 << 20,
    seed: int = 7,
    registry: Optional[MetricRegistry] = None,
) -> Dataset:
    """Create a store and preload ``n_keys`` key/value pairs.

    Values are pseudo-random bytes of the configured size; keys are
    dense and deterministic so tests can re-derive them.  Pass
    ``registry`` to surface the per-partition ``kvs.p<i>.*`` counters
    through an existing telemetry hierarchy.
    """
    if n_keys <= 0:
        raise ValueError(f"need at least one key, got {n_keys}")
    store = MicaStore(
        n_partitions,
        n_buckets_per_partition=n_buckets_per_partition,
        log_bytes_per_partition=log_bytes_per_partition,
        registry=registry,
    )
    rng = np.random.default_rng(seed)
    keys: List[bytes] = []
    value_pool = [
        rng.bytes(value_bytes) for _ in range(min(64, n_keys))
    ]  # share value buffers; contents are irrelevant to behaviour
    for i in range(n_keys):
        key = make_key(i)
        keys.append(key)
        store.set(key, value_pool[i % len(value_pool)])
    return Dataset(keys=keys, store=store, value_bytes=value_bytes)
