"""At-most-once duplicate detection for retried RPCs.

When the client retries a timed-out request, the original attempt may
still be live inside the server (queued behind a long RPC, in a
migration buffer, mid-service) -- so the store can end up executing the
same logical operation twice.  Real KVS stacks guard against that with a
per-client sequence window; here the :class:`DuplicateDetector` models
that window as a set of served logical ids.

Every completed attempt is passed through :meth:`observe`.  The first
completion of a logical id is *unique* (the operation's effects apply);
any later completion of the same id is flagged as a *duplicate* and its
effects are discarded by the caller.  The conservation test suite pins
the bookkeeping identity::

    responses_observed == kvs.dedup.unique + kvs.dedup.duplicates

so no request can be served twice without the duplicate counter
incrementing -- the at-most-once contract, made auditable.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.telemetry import MetricRegistry


class DuplicateDetector:
    """Tracks which logical request ids have already been served."""

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self._served: Set[int] = set()
        registry = registry if registry is not None else MetricRegistry()
        self._m_unique = registry.counter("kvs.dedup.unique")
        self._m_duplicates = registry.counter("kvs.dedup.duplicates")

    def observe(self, logical_id: int) -> bool:
        """Record one completed attempt; True when it is a duplicate."""
        if logical_id in self._served:
            self._m_duplicates.value += 1
            return True
        self._served.add(logical_id)
        self._m_unique.value += 1
        return False

    def seen(self, logical_id: int) -> bool:
        return logical_id in self._served

    @property
    def unique(self) -> int:
        return self._m_unique.value

    @property
    def duplicates(self) -> int:
        return self._m_duplicates.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DuplicateDetector unique={self.unique} "
            f"duplicates={self.duplicates}>"
        )
