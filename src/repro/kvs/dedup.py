"""At-most-once duplicate detection for retried RPCs.

When the client retries a timed-out request, the original attempt may
still be live inside the server (queued behind a long RPC, in a
migration buffer, mid-service) -- so the store can end up executing the
same logical operation twice.  Real KVS stacks guard against that with a
per-client sequence window; here the :class:`DuplicateDetector` models
that window as a set of served logical ids.

Every completed attempt is passed through :meth:`observe`.  The first
completion of a logical id is *unique* (the operation's effects apply);
any later completion of the same id is flagged as a *duplicate* and its
effects are discarded by the caller.  The conservation test suite pins
the bookkeeping identity::

    responses_observed == kvs.dedup.unique + kvs.dedup.duplicates

so no request can be served twice without the duplicate counter
incrementing -- the at-most-once contract, made auditable.

Real windows are *bounded*: the server only remembers the last ``W``
ids per shard, so a sufficiently late duplicate arrives after its id
expired and goes undetected (executed again, counted unique).  Pass
``window=W`` to model that bound; the default ``None`` keeps the exact
unbounded legacy behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set, Union

from repro.telemetry import MetricRegistry


class DuplicateDetector:
    """Tracks which logical request ids have already been served.

    With ``window=W`` only the ``W`` most recently *first-served* ids
    are remembered (strict FIFO on first service -- a duplicate does not
    refresh its id's position).  Ids falling out of the window bump the
    ``kvs.dedup.expired`` counter; a duplicate arriving after expiry is
    indistinguishable from a fresh request and counts unique again.
    """

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        window: Optional[int] = None,
    ) -> None:
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._served: Union[Set[int], "OrderedDict[int, None]"] = (
            set() if window is None else OrderedDict()
        )
        registry = registry if registry is not None else MetricRegistry()
        self._m_unique = registry.counter("kvs.dedup.unique")
        self._m_duplicates = registry.counter("kvs.dedup.duplicates")
        self._m_expired = registry.counter("kvs.dedup.expired")

    def observe(self, logical_id: int) -> bool:
        """Record one completed attempt; True when it is a duplicate."""
        if logical_id in self._served:
            self._m_duplicates.value += 1
            return True
        if self.window is None:
            self._served.add(logical_id)
        else:
            self._served[logical_id] = None
            if len(self._served) > self.window:
                self._served.popitem(last=False)
                self._m_expired.value += 1
        self._m_unique.value += 1
        return False

    def seen(self, logical_id: int) -> bool:
        return logical_id in self._served

    @property
    def unique(self) -> int:
        return self._m_unique.value

    @property
    def duplicates(self) -> int:
        return self._m_duplicates.value

    @property
    def expired(self) -> int:
        return self._m_expired.value

    @property
    def tracked(self) -> int:
        """How many ids the window currently remembers."""
        return len(self._served)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DuplicateDetector unique={self.unique} "
            f"duplicates={self.duplicates}>"
        )
