"""MICA RPC handlers: operation mix, service-time model and EREW
execution semantics (Sec. IX).

The service-time model follows the two network stacks the paper ports
MICA onto:

* **eRPC** -- full stack lowers RPC latency to ~850 ns [27]; per-op
  costs ride on top.
* **nanoRPC** -- hardware-terminated stack at ~40 ns [23]; GET/SET
  handlers complete in ~50 ns, SCANs in ~50 us (the Fig. 14 mix:
  99.5% GET/SET + 0.5% SCAN).

GETs fetch the value from the MICA log and write it to the response
buffer, so they run slightly longer than SETs (Sec. IX-B).  Hash-bucket
probe depth adds a small per-probe cost, making service times respond
to the actual store state.

EREW penalty: each key partition is owned by one manager group.  A
request that was migrated away from its owner group pays one extra
remote cache access (or a QPI crossing on multi-socket layouts) to
reach the owner's partition -- the application-level concurrency
overhead the paper measures as a 13.6-15.4% throughput@SLO loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.memory import MemoryBandwidthModel
from repro.kvs.dataset import Dataset
from repro.kvs.ownership import OWNERSHIP_MODES, OwnershipTable
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request, RequestKind


@dataclass(frozen=True)
class MicaServiceModel:
    """On-core handler time for each MICA operation (all ns)."""

    stack_ns: float
    get_extra_ns: float
    set_extra_ns: float
    scan_ns: float
    probe_ns: float = 2.0
    scan_items: int = 64

    @staticmethod
    def erpc() -> "MicaServiceModel":
        """eRPC stack: ~850 ns on-CPU per small RPC."""
        return MicaServiceModel(
            stack_ns=850.0, get_extra_ns=100.0, set_extra_ns=50.0, scan_ns=50_000.0
        )

    @staticmethod
    def nanorpc() -> "MicaServiceModel":
        """nanoRPC stack: ~40 ns stack, ~50 ns GET/SET, ~50 us SCAN."""
        return MicaServiceModel(
            stack_ns=40.0, get_extra_ns=15.0, set_extra_ns=10.0, scan_ns=50_000.0
        )

    def service_ns(self, kind: RequestKind, probe_depth: int) -> float:
        """Handler time for one operation."""
        if kind is RequestKind.SCAN:
            return self.scan_ns
        # DELETE is a SET without the value write; GET pays the log
        # fetch + response-buffer write.
        extra = self.get_extra_ns if kind is RequestKind.GET else self.set_extra_ns
        if kind is RequestKind.DELETE:
            extra = self.set_extra_ns * 0.5
        return self.stack_ns + extra + probe_depth * self.probe_ns

    def mean_service_ns(
        self,
        get_fraction: float,
        scan_fraction: float = 0.0,
        delete_fraction: float = 0.0,
        probe_depth: float = 1.0,
    ) -> float:
        """Analytic mean of the op mix.

        ``delete_fraction`` carves DELETEs out of the non-SCAN mass
        (mirroring :meth:`MicaWorkload.request_factory`'s draw order),
        and ``probe_depth`` is the expected hash-bucket probe depth --
        pass the store's measured mean instead of assuming 1.
        """
        if not 0 <= scan_fraction <= 1 or not 0 <= get_fraction <= 1:
            raise ValueError("fractions must be in [0,1]")
        if not 0 <= delete_fraction <= 1:
            raise ValueError("delete_fraction must be in [0,1]")
        if scan_fraction + delete_fraction > 1:
            raise ValueError("scan + delete fractions exceed 1")
        if probe_depth < 0:
            raise ValueError(f"probe_depth must be >= 0, got {probe_depth}")
        gs = 1.0 - scan_fraction - delete_fraction
        probe = probe_depth * self.probe_ns
        get = self.stack_ns + self.get_extra_ns + probe
        set_ = self.stack_ns + self.set_extra_ns + probe
        delete = self.stack_ns + self.set_extra_ns * 0.5 + probe
        return (
            gs * (get_fraction * get + (1 - get_fraction) * set_)
            + scan_fraction * self.scan_ns
            + delete_fraction * delete
        )


class MicaWorkload:
    """Binds a dataset, an op mix and a service model into the hooks the
    simulation needs: a ``request_factory`` for the load generator and
    an ``execute`` hook that runs the op against the real store.

    Partition-to-group locality: the workload pre-computes, for each
    partition, a connection id whose RSS hash lands on the owner group,
    so un-migrated requests always execute in their EREW owner's group
    (the paper's partition-per-manager mapping).
    """

    #: Per-op concurrency-control cost in the non-EREW modes (version
    #: check / optimistic validation on every access -- the overhead
    #: EREW avoids, Sec. IX-B).
    CREW_CONTROL_NS = 8.0

    def __init__(
        self,
        dataset: Dataset,
        model: MicaServiceModel,
        n_groups: int,
        get_fraction: float = 0.5,
        scan_fraction: float = 0.0,
        delete_fraction: float = 0.0,
        zipf_s: float = 0.0,
        mode: str = "erew",
        seed: int = 11,
        constants: HwConstants = DEFAULT_CONSTANTS,
        groups_per_socket: Optional[int] = None,
        memory: Optional[MemoryBandwidthModel] = None,
        ownership: Optional[OwnershipTable] = None,
        hot_key_fraction: float = 0.0,
        hot_keys: int = 16,
        affinity: bool = True,
        sim=None,
    ) -> None:
        if affinity and dataset.store.n_partitions != n_groups:
            raise ValueError(
                f"dataset has {dataset.store.n_partitions} partitions but the "
                f"system has {n_groups} groups; EREW needs one partition per group"
            )
        if not 0 <= get_fraction <= 1 or not 0 <= scan_fraction <= 1:
            raise ValueError("fractions must be in [0,1]")
        if not 0 <= delete_fraction <= 1:
            raise ValueError("delete_fraction must be in [0,1]")
        if scan_fraction + delete_fraction > 1:
            raise ValueError("scan + delete fractions exceed 1")
        if mode not in OWNERSHIP_MODES:
            raise ValueError(
                f"mode must be one of {OWNERSHIP_MODES}, got {mode!r}"
            )
        if not 0 <= hot_key_fraction <= 1:
            raise ValueError("hot_key_fraction must be in [0,1]")
        self.dataset = dataset
        self.model = model
        self.n_groups = int(n_groups)
        self.get_fraction = float(get_fraction)
        self.scan_fraction = float(scan_fraction)
        self.delete_fraction = float(delete_fraction)
        self.mode = mode
        self.zipf_s = float(zipf_s)
        self.constants = constants
        self.groups_per_socket = groups_per_socket
        #: Optional shared DRAM bandwidth model: value transfers then
        #: pay contention-dependent latency (Table I's "mem. b/w"
        #: bottleneck becomes observable at high throughput).
        self.memory = memory
        #: Admission gate (repro.kvs.ownership).  CRCW/d-CREW require
        #: one (created here if absent); EREW/CREW gate only when one is
        #: passed explicitly -- the legacy path stays table-free and
        #: bit-identical.
        if ownership is None and mode in ("crcw", "dcrew"):
            ownership = OwnershipTable(dataset.store.n_partitions, mode)
        if ownership is not None and ownership.mode != mode:
            raise ValueError(
                f"ownership table is {ownership.mode!r} but workload mode "
                f"is {mode!r}"
            )
        if (ownership is not None
                and ownership.n_partitions != dataset.store.n_partitions):
            raise ValueError(
                f"ownership table covers {ownership.n_partitions} partitions "
                f"but the store has {dataset.store.n_partitions}"
            )
        self.ownership = ownership
        #: Simulator supplying the clock for admission bookkeeping; set
        #: by wire_kvs (admission waits need simulated time).
        self.sim = sim
        self.affinity = bool(affinity)
        self.hot_key_fraction = float(hot_key_fraction)
        self._hot_keys = (
            self._pick_hot_keys(int(hot_keys)) if hot_key_fraction > 0 else []
        )
        self._rng = np.random.default_rng(seed)
        self._pool = ConnectionPool(max(1024, 64 * n_groups))
        self._conn_for_group = (
            self._find_representative_connections() if affinity else []
        )
        sample = dataset.store.get(dataset.keys[0]) if dataset.keys else None
        self._sample_value = sample or b"\x00" * dataset.value_bytes
        self.executed = 0
        self.remote_accesses = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    #: Connections per group: enough that a baseline with per-core
    #: queues still sees a realistic many-flow mix.
    CONNS_PER_GROUP = 32

    #: Partition that owns the hot-key set (fixed so the hot-key mix is
    #: a *single-partition* hot spot by construction).
    HOT_PARTITION = 0

    def _pick_hot_keys(self, n: int) -> list:
        """The first ``n`` dataset keys owned by :data:`HOT_PARTITION`."""
        if n <= 0:
            raise ValueError(f"need at least one hot key, got {n}")
        store = self.dataset.store
        hot = [k for k in self.dataset.keys
               if store.owner_of(k) == self.HOT_PARTITION][:n]
        if not hot:
            raise ValueError(
                f"dataset has no keys owned by partition {self.HOT_PARTITION}"
            )
        return hot

    def _find_representative_connections(self) -> list:
        """For each group, a pool of connection ids that RSS-hash onto it
        (under the group-count modulus this workload targets)."""
        found: list = [[] for _ in range(self.n_groups)]
        remaining = self.n_groups
        conn = 0
        while remaining and conn < 4_000_000:
            g = self._pool.hash_to_queue(conn, self.n_groups)
            bucket = found[g]
            if len(bucket) < self.CONNS_PER_GROUP:
                bucket.append(conn)
                if len(bucket) == self.CONNS_PER_GROUP:
                    remaining -= 1
            conn += 1
        if any(not bucket for bucket in found):
            raise RuntimeError("could not find connections covering all groups")
        return found

    # ------------------------------------------------------------------
    # Load-generator hook
    # ------------------------------------------------------------------
    def request_factory(self, request: Request) -> None:
        """Assign op kind, key, owner-aligned connection and service time."""
        r = self._rng.random()
        if r < self.scan_fraction:
            kind = RequestKind.SCAN
        elif r < self.scan_fraction + self.delete_fraction:
            kind = RequestKind.DELETE
        else:
            rest = 1.0 - self.scan_fraction - self.delete_fraction
            threshold = self.scan_fraction + self.delete_fraction
            if r < threshold + rest * self.get_fraction:
                kind = RequestKind.GET
            else:
                kind = RequestKind.SET
        if (self.hot_key_fraction > 0.0
                and self._rng.random() < self.hot_key_fraction):
            # Hot-key mix: a concentrated slice of traffic hammers a
            # handful of keys all owned by one partition.
            hot = self._hot_keys
            key = hot[int(self._rng.integers(0, len(hot)))]
        else:
            key = self.dataset.sample_key(self._rng, self.zipf_s)
        owner = self.dataset.store.owner_of(key)
        request.kind = kind
        request.key = key
        if self.affinity:
            pool = self._conn_for_group[owner % self.n_groups]
            request.connection = pool[int(self._rng.integers(0, len(pool)))]
        else:
            # Multi-leaf fabrics: no owner-affine flow placement; the
            # fabric's own steering decides where the request lands.
            request.connection = int(
                self._rng.integers(0, self._pool.n_connections)
            )
        probe = self.dataset.store.partitions[owner].index.bucket_load(key)
        request.service_time = self.model.service_ns(kind, probe)
        if self.mode != "erew":
            # Non-exclusive modes pay concurrency control (version
            # check / validation) on every access.
            request.service_time += self.CREW_CONTROL_NS
        request.remaining = request.service_time

    # ------------------------------------------------------------------
    # Execution hook (AltocumulusSystem.execution_penalty compatible)
    # ------------------------------------------------------------------
    def executor_for(self, group_offset: int):
        """An ``execute`` hook whose leaf occupies the global group-id
        range starting at ``group_offset`` (multi-leaf fabrics share one
        workload; each leaf's local group ids are disambiguated by its
        offset for the ownership audits)."""
        def _execute(request: Request, _off: int = int(group_offset)) -> float:
            return self.execute(request, group_offset=_off)
        return _execute

    def execute(self, request: Request, group_offset: int = 0) -> float:
        """Run the op against the store; return extra on-core latency
        (admission wait under the ownership discipline, plus the EREW
        remote-owner penalty for migrated requests)."""
        if request.key is None:
            return 0.0
        if request.gang_shadow:
            # Gang shadows are bookkeeping clones of their primary; the
            # primary alone touches the store.
            return 0.0
        store = self.dataset.store
        admission_wait = 0.0
        if self.ownership is not None:
            owner = store.owner_of(request.key)
            write = request.kind in (RequestKind.SET, RequestKind.DELETE)
            here = group_offset + (
                request.group_id if request.group_id is not None else 0
            )
            if self.ownership.mode == "erew":
                # EREW forwards every access to the owner group.
                touch = owner
            elif self.ownership.mode == "crcw":
                touch = here
            else:
                # CREW/d-CREW: writes go to the owner, reads run local.
                touch = owner if write else here
            adm = self.ownership.admit(
                owner,
                write,
                now=self.sim.now if self.sim is not None else 0.0,
                hold_ns=request.service_time,
                group=touch,
            )
            if adm.aborted:
                self.aborted += 1
                request.app_result = None
                return 0.0
            admission_wait = adm.wait_ns
        self.executed += 1
        if request.kind is RequestKind.GET:
            request.app_result = store.get(request.key)
        elif request.kind is RequestKind.SET:
            store.set(request.key, self._sample_value)
        elif request.kind is RequestKind.SCAN:
            request.app_result = len(store.scan(request.key, self.model.scan_items))
        elif request.kind is RequestKind.DELETE:
            request.app_result = store.delete(request.key)
        penalty = admission_wait
        if self.memory is not None and request.kind in (
            RequestKind.GET, RequestKind.SET
        ):
            # The DRAM-resident value moves once per GET/SET; under
            # aggregate bandwidth pressure this inflates.
            penalty += self.memory.access(self.dataset.value_bytes)
        if self.mode == "crcw":
            # CRCW: every group accesses every partition directly -- no
            # ownership penalty in either direction.
            return penalty
        if self.mode in ("crew", "dcrew") and request.kind in (
            RequestKind.GET, RequestKind.SCAN
        ):
            # CREW/d-CREW: reads are concurrent everywhere -- no
            # ownership penalty even for migrated requests.
            return penalty
        if request.migrations > 0:
            # Migrated away from the EREW owner: one remote access to the
            # owner's partition.
            self.remote_accesses += 1
            penalty = admission_wait + self.constants.coherence_msg_ns
            if self.groups_per_socket is not None:
                owner = store.owner_of(request.key)
                here = request.group_id if request.group_id is not None else owner
                if owner // self.groups_per_socket != here // self.groups_per_socket:
                    penalty += self.constants.qpi_ns
        return penalty
