"""MICA's hash index: fixed bucket array mapping key hashes to log
offsets.

The paper's configuration uses 2M hash buckets per store.  Buckets hold
(tag, offset) slots; collisions chain within the bucket list.  The index
never stores values -- it resolves a key to a circular-log offset, and
lookups validate liveness against the log (an evicted record reads as a
miss, mirroring MICA's offset-window check).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple


def key_hash(key: bytes) -> int:
    """64-bit stable hash of a key (SHA-1 truncation; MICA uses keyhash
    from SipHash-like functions -- only distribution and stability
    matter here)."""
    return int.from_bytes(hashlib.sha1(bytes(key)).digest()[:8], "little")


class HashIndex:
    """Bucketed key -> log-offset index."""

    def __init__(self, n_buckets: int = 2_048) -> None:
        if n_buckets <= 0:
            raise ValueError(f"need at least one bucket, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        #: bucket -> list of (key, offset); key kept for exact match on
        #: collision (MICA keeps a 16-bit tag + full-key compare in log).
        self._buckets: List[Dict[bytes, int]] = [dict() for _ in range(n_buckets)]
        self.entries = 0

    # ------------------------------------------------------------------
    def _bucket_of(self, key: bytes) -> Dict[bytes, int]:
        return self._buckets[key_hash(key) % self.n_buckets]

    def put(self, key: bytes, offset: int) -> None:
        """Insert or update the index entry for ``key``."""
        key = bytes(key)
        bucket = self._bucket_of(key)
        if key not in bucket:
            self.entries += 1
        bucket[key] = offset

    def get(self, key: bytes) -> Optional[int]:
        """Resolve a key to its latest log offset (None on miss)."""
        return self._bucket_of(bytes(key)).get(bytes(key))

    def delete(self, key: bytes) -> bool:
        """Remove an entry; True if it existed."""
        key = bytes(key)
        bucket = self._bucket_of(key)
        if key in bucket:
            del bucket[key]
            self.entries -= 1
            return True
        return False

    # ------------------------------------------------------------------
    def bucket_load(self, key: bytes) -> int:
        """Chain length of the bucket holding ``key`` (collision probe
        depth; feeds the service-time model's per-probe cost)."""
        return len(self._bucket_of(bytes(key)))

    def scan(self, start_key: bytes, count: int) -> Iterator[Tuple[bytes, int]]:
        """Yield up to ``count`` (key, offset) pairs starting at the
        bucket of ``start_key`` and walking buckets in order.

        MICA has no ordered scan; this models the SCAN RPC of the
        paper's workload mix as a bucket-order range walk.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        start = key_hash(bytes(start_key)) % self.n_buckets
        yielded = 0
        for step in range(self.n_buckets):
            bucket = self._buckets[(start + step) % self.n_buckets]
            for key, offset in bucket.items():
                if yielded >= count:
                    return
                yield key, offset
                yielded += 1

    def __len__(self) -> int:
        return self.entries
