"""MICA's circular log.

Values live in a DRAM-resident append-only circular log (default 4 GB
in the paper's configuration).  Appends allocate at the head; when the
log wraps, the oldest records are garbage -- MICA's lossy "store mode
with automatic eviction".  Readers validate a record's offset against
the live window, so dangling index entries are detected rather than
returning stale bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Per-record header: key length + value length + validity word.
RECORD_HEADER_BYTES = 16


@dataclass(frozen=True)
class LogRecord:
    """One appended key-value record."""

    offset: int
    key: bytes
    value: bytes

    @property
    def size(self) -> int:
        return RECORD_HEADER_BYTES + len(self.key) + len(self.value)


class CircularLog:
    """Append-only circular value store with wrap-around eviction.

    ``capacity_bytes`` bounds the live window; the implementation keeps
    a dict of live records keyed by offset (the Python stand-in for raw
    DRAM) and evicts from the tail as the head advances past capacity.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= RECORD_HEADER_BYTES:
            raise ValueError(
                f"capacity must exceed one header ({RECORD_HEADER_BYTES}B), "
                f"got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._head = 0  # next append offset (monotonic, never wraps)
        self._tail = 0  # oldest live offset
        self._records: dict[int, LogRecord] = {}
        self._live_bytes = 0
        self.appends = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def append(self, key: bytes, value: bytes) -> LogRecord:
        """Write a record at the head, evicting old records as needed."""
        record = LogRecord(offset=self._head, key=bytes(key), value=bytes(value))
        if record.size > self.capacity_bytes:
            raise ValueError(
                f"record of {record.size}B exceeds log capacity "
                f"{self.capacity_bytes}B"
            )
        while self._live_bytes + record.size > self.capacity_bytes:
            self._evict_oldest()
        self._records[record.offset] = record
        self._head += record.size
        self._live_bytes += record.size
        self.appends += 1
        return record

    def read(self, offset: int) -> Optional[LogRecord]:
        """Fetch the record at ``offset``; None if it has been evicted."""
        return self._records.get(offset)

    def is_live(self, offset: int) -> bool:
        return offset in self._records

    # ------------------------------------------------------------------
    def _evict_oldest(self) -> None:
        if not self._records:
            raise RuntimeError("log invariant broken: no records but bytes live")
        # Offsets are append-ordered, so the minimum is the oldest;
        # track tail to find it without a full scan.
        while self._tail not in self._records:
            self._tail += 1
        record = self._records.pop(self._tail)
        self._tail += record.size
        self._live_bytes -= record.size
        self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def live_records(self) -> int:
        return len(self._records)

    @property
    def utilization(self) -> float:
        return self._live_bytes / self.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircularLog {self._live_bytes}/{self.capacity_bytes}B "
            f"records={len(self._records)}>"
        )
