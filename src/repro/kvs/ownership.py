"""Per-key concurrency control: the ownership/dispatch layer of the
data tier (the "data-layer scenario diversity" axis of ROADMAP.md).

The paper's Sec. IX measures EREW's 13.6-15.4% throughput@SLO cost
against a flat CREW constant only.  Real stores pick a *concurrency
control* discipline per partition, and the discipline decides who may
touch a key when -- which is exactly what interacts with Altocumulus
migration: a migrated request executes in a foreign group, and whether
it then waits at the key's owner, reads a stable old version, or
proceeds unchecked is the ownership policy's call.

Four disciplines, in decreasing strictness:

* **EREW** (exclusive read, exclusive write): one holder per partition
  at a time.  MICA's highest-performance mode *when traffic is
  partition-affine* -- but a hot partition serializes completely.
* **d-CREW**: reads share a partition up to a concurrency bound ``d``;
  writes are exclusive (so concurrent writers <= 1 <= d always).
  ``d=1`` degenerates to EREW, ``d -> inf`` to CREW -- admission waits
  interpolate monotonically between the two (pinned by the
  ``fig_contention`` gate test).
* **CREW** (concurrent read, exclusive write): reads share without
  bound; a write drains readers and blocks new ones.
* **CRCW**: no admission gating at all (every access pays a version/
  validation cost instead; zero admission waits by construction).

**Multiversion reads** (RLU-style, after ``MultiversionMICAIndexAccessor``
in queue_flex): with ``multiversion=True`` a CREW/d-CREW *read* never
waits for the writer holding the key -- it reads the last committed
version while the writer prepares the next one.  Writers still
serialize with each other, and superseded versions are reclaimed
*deferred*: only once every reader that could still observe them (every
reader of an older epoch) has drained.  :class:`MultiversionAccessor`
is the epoch tracker plus the deferred-reclamation queue.

Everything is simulated-time bookkeeping: :meth:`OwnershipTable.admit`
is called when a handler is about to run, returns how long admission
blocks the core (charged as startup latency), and records the hold so
later admissions observe it.  All accounting surfaces through the
telemetry spine under ``kvs.ownership.*``.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.telemetry import MetricRegistry

#: The recognised ownership disciplines.
OWNERSHIP_MODES = ("erew", "crew", "crcw", "dcrew")

#: Mix presets for :class:`KvsSpec` (get / scan / delete fractions,
#: Zipf skew, and the hot-key concentration).  ``hot_key`` drives a
#: high-Zipf single-partition hot spot: a configurable fraction of all
#: traffic lands on a handful of keys owned by one partition.
MIX_PRESETS: Dict[str, Dict[str, float]] = {
    "default": dict(get_fraction=0.5, scan_fraction=0.0,
                    delete_fraction=0.0, zipf_s=0.0, hot_key_fraction=0.0),
    "write_heavy": dict(get_fraction=0.05, scan_fraction=0.0,
                        delete_fraction=0.05, zipf_s=0.9,
                        hot_key_fraction=0.0),
    "scan_heavy": dict(get_fraction=0.5, scan_fraction=0.05,
                       delete_fraction=0.0, zipf_s=0.9,
                       hot_key_fraction=0.0),
    "hot_key": dict(get_fraction=0.9, scan_fraction=0.0,
                    delete_fraction=0.0, zipf_s=1.1,
                    hot_key_fraction=0.5),
}


@dataclass(frozen=True)
class KvsSpec:
    """Picklable description of a KVS-backed run: which MICA workload to
    wire into the system and under which ownership discipline.

    This is the data-layer analogue of :class:`~repro.faults.FaultPlan`
    / :class:`~repro.workload.jobs.JobShape`: a frozen dataclass of
    primitives, so it pickles across the sweep runner's process boundary
    and content-hashes into the result-cache key
    (``SPEC_SCHEMA_VERSION`` 7).

    ``mix`` selects a preset from :data:`MIX_PRESETS`; any explicitly
    set fraction/skew field overrides the preset's value.
    """

    mode: str = "erew"
    #: d-CREW concurrency bound (holders per partition); ignored by the
    #: other modes.
    d: int = 2
    #: RLU-style multiversion reads (CREW / d-CREW only).
    multiversion: bool = False
    mix: str = "default"
    get_fraction: Optional[float] = None
    scan_fraction: Optional[float] = None
    delete_fraction: Optional[float] = None
    zipf_s: Optional[float] = None
    hot_key_fraction: Optional[float] = None
    #: Keys in the hot set (all owned by one partition).
    hot_keys: int = 16
    n_keys: int = 4_000
    #: Service-time model: ``"nanorpc"`` or ``"erpc"``.
    service: str = "nanorpc"
    #: Admission waits beyond this bound abort the operation instead of
    #: blocking the core (``None`` = wait forever, never abort).
    max_wait_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in OWNERSHIP_MODES:
            raise ValueError(
                f"mode must be one of {OWNERSHIP_MODES}, got {self.mode!r}"
            )
        if self.mix not in MIX_PRESETS:
            raise ValueError(
                f"mix must be one of {tuple(MIX_PRESETS)}, got {self.mix!r}"
            )
        if self.d < 1:
            raise ValueError(f"d-CREW bound must be >= 1, got {self.d}")
        if self.multiversion and self.mode not in ("crew", "dcrew"):
            raise ValueError(
                "multiversion reads require mode 'crew' or 'dcrew', "
                f"got {self.mode!r}"
            )
        if self.service not in ("nanorpc", "erpc"):
            raise ValueError(
                f"service must be 'nanorpc' or 'erpc', got {self.service!r}"
            )
        if self.n_keys <= 0:
            raise ValueError(f"need at least one key, got {self.n_keys}")
        if self.hot_keys <= 0:
            raise ValueError(f"need at least one hot key, got {self.hot_keys}")
        if self.max_wait_ns is not None and self.max_wait_ns < 0:
            raise ValueError(
                f"max_wait_ns must be >= 0, got {self.max_wait_ns}"
            )
        for name in ("get_fraction", "scan_fraction", "delete_fraction",
                     "hot_key_fraction"):
            value = getattr(self, name)
            if value is not None and not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0,1], got {value}")
        if self.zipf_s is not None and self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")

    # ------------------------------------------------------------------
    def mix_params(self) -> Dict[str, float]:
        """The effective mix: preset values with explicit overrides."""
        params = dict(MIX_PRESETS[self.mix])
        for name in params:
            value = getattr(self, name)
            if value is not None:
                params[name] = float(value)
        return params


class MultiversionAccessor:
    """RLU-style epoch tracker with deferred version reclamation.

    Readers register in the current *epoch*; a committing writer
    advances the epoch and enqueues the superseded version for
    reclamation.  A deferred version may only be reclaimed once every
    reader registered in an epoch older than its commit epoch has
    drained -- until then a stale reader could still dereference it.
    The accessor tracks, per epoch, the count of registered readers and
    the latest time one of them can still be active, and lazily sweeps
    the deferral queue on every call.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        registry = registry if registry is not None else MetricRegistry()
        self.epoch = 0
        #: epoch -> (active reader count proxy: latest read end time).
        self._epoch_end: Dict[int, float] = {}
        self._epoch_readers: Dict[int, int] = {}
        #: Deferred (commit_epoch, commit_time) version records awaiting
        #: reclamation, oldest first.
        self._deferred: Deque[Tuple[int, float]] = deque()
        self._m_epoch = registry.gauge(
            "kvs.ownership.epoch", fn=lambda: self.epoch
        )
        self._m_mv_reads = registry.counter("kvs.ownership.mv_reads")
        self._m_stale_reads = registry.counter("kvs.ownership.stale_reads")
        self._m_deferred = registry.gauge(
            "kvs.ownership.deferred", fn=lambda: len(self._deferred)
        )
        self._m_reclaimed = registry.counter("kvs.ownership.reclaimed")

    # ------------------------------------------------------------------
    def read(self, now: float, end_ns: float, writer_active: bool) -> None:
        """Register one multiversion read over ``[now, end_ns]``.

        ``writer_active`` marks a read that proceeded while a writer
        held the key -- the read that plain CREW would have blocked; it
        observes the previous (stale-but-consistent) version.
        """
        self._m_mv_reads.value += 1
        if writer_active:
            self._m_stale_reads.value += 1
        epoch = self.epoch
        self._epoch_readers[epoch] = self._epoch_readers.get(epoch, 0) + 1
        if end_ns > self._epoch_end.get(epoch, float("-inf")):
            self._epoch_end[epoch] = end_ns
        self.sweep(now)

    def writer_commit(self, now: float) -> None:
        """A writer installed a new version: advance the epoch and defer
        the superseded version's reclamation."""
        self._deferred.append((self.epoch, now))
        self.epoch += 1
        self.sweep(now)

    def sweep(self, now: float) -> int:
        """Reclaim every deferred version whose old-epoch readers have
        all drained by ``now``; returns how many were reclaimed."""
        reclaimed = 0
        while self._deferred:
            commit_epoch, _ = self._deferred[0]
            # Readers registered in the commit's own epoch read the
            # superseded version too (the commit *ended* that epoch),
            # so they pin it alongside all strictly-older epochs.
            if any(
                epoch <= commit_epoch and end > now
                for epoch, end in self._epoch_end.items()
            ):
                break
            self._deferred.popleft()
            reclaimed += 1
        if reclaimed:
            self._m_reclaimed.value += reclaimed
        # Epochs whose readers drained and that no deferred version can
        # still wait on are dead bookkeeping.
        if self._epoch_end:
            floor = self._deferred[0][0] if self._deferred else self.epoch
            for epoch in [
                e for e, end in self._epoch_end.items()
                if end <= now and e < floor
            ]:
                del self._epoch_end[epoch]
                self._epoch_readers.pop(epoch, None)
        return reclaimed

    @property
    def mv_reads(self) -> int:
        return self._m_mv_reads.value

    @property
    def stale_reads(self) -> int:
        return self._m_stale_reads.value

    @property
    def reclaimed(self) -> int:
        return self._m_reclaimed.value

    @property
    def deferred(self) -> int:
        return len(self._deferred)


@dataclass
class Admission:
    """Outcome of one :meth:`OwnershipTable.admit` call."""

    #: How long the handler blocks before it may touch the partition.
    wait_ns: float
    #: True when the wait exceeded the spec's bound and the operation
    #: was aborted instead of admitted (no hold was recorded).
    aborted: bool = False
    #: True for a multiversion read that proceeded against the previous
    #: version while a writer held the partition.
    stale_read: bool = False


class _PartitionState:
    """Reader/writer hold bookkeeping for one partition (all times ns).

    Holds are intervals derived from the simulated clock at admission:
    the admitted operation occupies the partition over
    ``[now + wait, now + wait + hold_ns]``.  Reader ends are kept as a
    sorted list (pruned against ``now`` on every touch, so it stays
    small); writers are exclusive in every gated mode, so a single
    ``writer_free_at`` scalar suffices.
    """

    __slots__ = ("reader_ends", "writer_free_at", "busy_until",
                 "groups", "max_concurrent_writers", "writers_active")

    def __init__(self) -> None:
        self.reader_ends: List[float] = []
        self.writer_free_at = 0.0
        #: EREW: single any-op exclusive hold.
        self.busy_until = 0.0
        #: Groups whose handlers performed this partition's data access.
        self.groups: Set[int] = set()
        #: High-water mark of overlapping writers ever admitted (for the
        #: d-CREW invariant: <= 1 in every gated mode, unbounded only
        #: in CRCW where nothing waits).
        self.max_concurrent_writers = 0
        self.writers_active: List[float] = []

    def prune(self, now: float) -> None:
        ends = self.reader_ends
        if ends and ends[0] <= now:
            self.reader_ends = [e for e in ends if e > now]
        active = self.writers_active
        if active and active[0] <= now:
            self.writers_active = [e for e in active if e > now]

    def note_writer(self, start_ns: float, end_ns: float) -> None:
        # Overlap is judged against the new hold's *start*, not the
        # admission clock: a writer admitted behind an active one starts
        # exactly when its predecessor ends, and back-to-back holds are
        # serial, not concurrent.
        active = self.writers_active
        if active and active[0] <= start_ns:
            active = [e for e in active if e > start_ns]
            self.writers_active = active
        insort(active, end_ns)
        if len(active) > self.max_concurrent_writers:
            self.max_concurrent_writers = len(active)


class OwnershipTable:
    """Admission control over a store's partitions for one discipline.

    One table serves a whole system (or fabric): handlers call
    :meth:`admit` right before executing an operation, charge the
    returned wait as on-core startup latency, and the table's recorded
    holds make later admissions observe the contention.  EREW admission
    happens *at the owner* (a remote access is forwarded there), so the
    table also witnesses the EREW invariant: each partition is only ever
    touched by its owner group.
    """

    def __init__(
        self,
        n_partitions: int,
        mode: str,
        d: int = 2,
        multiversion: bool = False,
        max_wait_ns: Optional[float] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if mode not in OWNERSHIP_MODES:
            raise ValueError(
                f"mode must be one of {OWNERSHIP_MODES}, got {mode!r}"
            )
        if n_partitions <= 0:
            raise ValueError(
                f"need at least one partition, got {n_partitions}"
            )
        if d < 1:
            raise ValueError(f"d-CREW bound must be >= 1, got {d}")
        if multiversion and mode not in ("crew", "dcrew"):
            raise ValueError(
                "multiversion reads require mode 'crew' or 'dcrew', "
                f"got {mode!r}"
            )
        self.mode = mode
        self.d = int(d)
        self.max_wait_ns = max_wait_ns
        self.registry = registry if registry is not None else MetricRegistry()
        self._parts = [_PartitionState() for _ in range(n_partitions)]
        reg = self.registry
        self._m_admissions = reg.counter("kvs.ownership.admissions")
        self._m_read_waits = reg.counter("kvs.ownership.read_waits")
        self._m_write_waits = reg.counter("kvs.ownership.write_waits")
        self._m_wait_ns = reg.counter("kvs.ownership.wait_ns")
        self._m_read_wait_ns = reg.counter("kvs.ownership.read_wait_ns")
        self._m_write_wait_ns = reg.counter("kvs.ownership.write_wait_ns")
        self._m_aborts = reg.counter("kvs.ownership.aborts")
        self.mv: Optional[MultiversionAccessor] = (
            MultiversionAccessor(reg) if multiversion else None
        )

    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self._parts)

    def admit(
        self,
        partition: int,
        write: bool,
        now: float,
        hold_ns: float,
        group: Optional[int] = None,
    ) -> Admission:
        """Gate one operation on ``partition`` starting at ``now``.

        ``hold_ns`` is how long the operation will occupy the partition
        once admitted (its handler service time); ``group`` is the
        manager group whose handler performs the data access, recorded
        for the per-key invariant audits.
        """
        state = self._parts[partition]
        state.prune(now)
        mode = self.mode
        if mode == "crcw":
            wait = 0.0
        elif mode == "erew":
            wait = max(0.0, state.busy_until - now)
        elif write:
            # CREW / d-CREW write: serialize with the previous writer...
            wait = max(0.0, state.writer_free_at - now)
            if self.mv is None and state.reader_ends:
                # ... and drain every admitted reader (a multiversion
                # writer installs a fresh version instead of waiting).
                wait = max(wait, state.reader_ends[-1] - now)
        else:
            # CREW / d-CREW read.
            if self.mv is not None:
                wait = 0.0
            else:
                wait = max(0.0, state.writer_free_at - now)
            if mode == "dcrew" and len(state.reader_ends) >= self.d:
                # Bounded read concurrency: wait for a holder slot (the
                # moment the (len-d+1)-oldest reader drains).
                slot_free = state.reader_ends[len(state.reader_ends) - self.d]
                wait = max(wait, slot_free - now)
        aborted = self.max_wait_ns is not None and wait > self.max_wait_ns
        if aborted:
            self._m_aborts.value += 1
            return Admission(wait_ns=0.0, aborted=True)
        self._m_admissions.value += 1
        start = now + wait
        end = start + hold_ns
        stale = False
        if wait > 0.0:
            self._m_wait_ns.value += wait
            if write:
                self._m_write_waits.value += 1
                self._m_write_wait_ns.value += wait
            else:
                self._m_read_waits.value += 1
                self._m_read_wait_ns.value += wait
        # Record the hold.
        if mode == "erew":
            state.busy_until = end
            if write:
                state.note_writer(start, end)
        elif write:
            state.writer_free_at = end
            state.note_writer(start, end)
            if self.mv is not None:
                self.mv.writer_commit(start)
        else:
            insort(state.reader_ends, end)
            if self.mv is not None:
                stale = state.writer_free_at > start
                self.mv.read(now, end, writer_active=stale)
        if group is not None:
            state.groups.add(group)
        return Admission(wait_ns=wait, aborted=False, stale_read=stale)

    # ------------------------------------------------------------------
    # Invariant audits (the hypothesis conservation battery reads these)
    # ------------------------------------------------------------------
    def groups_touching(self, partition: int) -> Set[int]:
        """The set of groups whose handlers accessed ``partition``."""
        return set(self._parts[partition].groups)

    def max_concurrent_writers(self, partition: int) -> int:
        """High-water mark of overlapping writer holds on ``partition``."""
        return self._parts[partition].max_concurrent_writers

    @property
    def admissions(self) -> int:
        return self._m_admissions.value

    @property
    def total_waits(self) -> int:
        return self._m_read_waits.value + self._m_write_waits.value

    @property
    def total_wait_ns(self) -> float:
        return self._m_wait_ns.value

    @property
    def aborts(self) -> int:
        return self._m_aborts.value

    def mean_wait_ns(self) -> float:
        """Mean admission wait over every admitted operation."""
        if not self._m_admissions.value:
            return 0.0
        return self._m_wait_ns.value / self._m_admissions.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OwnershipTable {self.mode} parts={len(self._parts)} "
            f"admissions={self.admissions} waits={self.total_waits}>"
        )


__all__ = [
    "OWNERSHIP_MODES",
    "MIX_PRESETS",
    "KvsSpec",
    "Admission",
    "MultiversionAccessor",
    "OwnershipTable",
]
