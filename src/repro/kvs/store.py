"""The EREW-partitioned MICA store (Sec. IX-B).

EREW (exclusive read, exclusive write) assigns each key partition to
exactly one owner; there is no concurrency control, which is why MICA
scales linearly with cores.  The paper maps one partition per *manager
thread* (not per core) and lets any worker in the group serve it --
migrated requests then pay one extra remote access to the key's owner,
the application-level overhead quantified in Sec. IX-C.

Operation accounting lives in telemetry instruments under a per-
partition namespace (``kvs.p<i>.gets`` ...); :attr:`MicaPartition.stats`
returns a :class:`StoreStats` snapshot for the existing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.kvs.hashtable import HashIndex, key_hash
from repro.kvs.log import CircularLog
from repro.telemetry import MetricRegistry


@dataclass
class StoreStats:
    """Point-in-time view of one partition's operation counters."""
    gets: int = 0
    sets: int = 0
    scans: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MicaPartition:
    """One EREW partition: a hash index over a circular log."""

    def __init__(
        self,
        partition_id: int,
        n_buckets: int = 2_048,
        log_bytes: int = 8 << 20,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.partition_id = int(partition_id)
        self.index = HashIndex(n_buckets)
        self.log = CircularLog(log_bytes)
        self.registry = registry if registry is not None else MetricRegistry()
        prefix = f"kvs.p{self.partition_id}"
        reg = self.registry
        self._m_gets = reg.counter(f"{prefix}.gets")
        self._m_sets = reg.counter(f"{prefix}.sets")
        self._m_scans = reg.counter(f"{prefix}.scans")
        self._m_deletes = reg.counter(f"{prefix}.deletes")
        self._m_hits = reg.counter(f"{prefix}.hits")
        self._m_misses = reg.counter(f"{prefix}.misses")

    @property
    def stats(self) -> StoreStats:
        """Snapshot of this partition's registry instruments."""
        return StoreStats(
            gets=self._m_gets.value,
            sets=self._m_sets.value,
            scans=self._m_scans.value,
            deletes=self._m_deletes.value,
            hits=self._m_hits.value,
            misses=self._m_misses.value,
        )

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup; None on miss (absent or evicted)."""
        self._m_gets.value += 1
        offset = self.index.get(key)
        if offset is None:
            self._m_misses.value += 1
            return None
        record = self.log.read(offset)
        if record is None or record.key != bytes(key):
            # Dangling index entry: the log wrapped past it.
            self.index.delete(key)
            self._m_misses.value += 1
            return None
        self._m_hits.value += 1
        return record.value

    def set(self, key: bytes, value: bytes) -> None:
        """Upsert: append to the log, repoint the index."""
        self._m_sets.value += 1
        record = self.log.append(key, value)
        self.index.put(key, record.offset)

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Range-style walk returning up to ``count`` live pairs."""
        self._m_scans.value += 1
        out: List[Tuple[bytes, bytes]] = []
        for key, offset in self.index.scan(start_key, count):
            record = self.log.read(offset)
            if record is not None:
                out.append((key, record.value))
        return out

    def delete(self, key: bytes) -> bool:
        """Drop the index entry (the log record ages out naturally)."""
        self._m_deletes.value += 1
        return self.index.delete(key)

    def __len__(self) -> int:
        return len(self.index)


class MicaStore:
    """EREW store: ``n_partitions`` partitions, keys hashed to owners."""

    def __init__(
        self,
        n_partitions: int,
        n_buckets_per_partition: int = 2_048,
        log_bytes_per_partition: int = 8 << 20,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if n_partitions <= 0:
            raise ValueError(f"need at least one partition, got {n_partitions}")
        self.registry = registry if registry is not None else MetricRegistry()
        self.partitions: List[MicaPartition] = [
            MicaPartition(
                i,
                n_buckets_per_partition,
                log_bytes_per_partition,
                registry=self.registry,
            )
            for i in range(n_partitions)
        ]

    # ------------------------------------------------------------------
    def owner_of(self, key: bytes) -> int:
        """The EREW owner partition for a key (stable hash)."""
        return key_hash(bytes(key)) % len(self.partitions)

    def partition(self, index: int) -> MicaPartition:
        return self.partitions[index]

    def get(self, key: bytes) -> Optional[bytes]:
        return self.partitions[self.owner_of(key)].get(key)

    def set(self, key: bytes, value: bytes) -> None:
        self.partitions[self.owner_of(key)].set(key, value)

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        return self.partitions[self.owner_of(start_key)].scan(start_key, count)

    def delete(self, key: bytes) -> bool:
        return self.partitions[self.owner_of(key)].delete(key)

    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)

    def __len__(self) -> int:
        return self.total_records()
