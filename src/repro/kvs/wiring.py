"""Attach a :class:`~repro.kvs.ownership.KvsSpec` to any built system.

The spec travels through ``run_workload(kvs=...)`` / ``quick_run`` /
``PointSpec``; this module turns it into live objects at run time,
inside the worker process, deterministically from the run's master
seed:

* one :class:`~repro.kvs.store.MicaStore` + preloaded dataset,
  registered into the system's telemetry registry (``kvs.p<i>.*``),
* one :class:`~repro.kvs.ownership.OwnershipTable` for the spec's
  discipline (``kvs.ownership.*`` instruments),
* one :class:`~repro.kvs.handlers.MicaWorkload` whose
  ``request_factory`` feeds the load generator and whose ``execute``
  hook runs ops against the store.

Leaf discovery handles every tier: a bare :class:`AltocumulusSystem`
gets the hook as ``execution_penalty`` (admission waits and remote-
owner penalties charge real on-core latency); rack and datacenter
fabrics get one hook per leaf server (Altocumulus leaves via
``execution_penalty``, anything else via ``completion_hooks``), all
sharing the one store and ownership table so cross-server contention on
a hot partition is observed by everyone.  On multi-leaf fabrics each
leaf's manager groups occupy a distinct global group-id range so the
per-partition invariant audits (EREW: one group ever touches a
partition) remain meaningful across servers.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.scheduler import AltocumulusSystem
from repro.kvs.dataset import build_dataset
from repro.kvs.handlers import MicaServiceModel, MicaWorkload
from repro.kvs.ownership import KvsSpec, OwnershipTable
from repro.telemetry import MetricRegistry


def _leaves(system) -> List[Tuple[object, int]]:
    """Flatten a system into ``(leaf, n_groups)`` pairs.

    ``Datacenter`` aliases ``.servers`` to its racks, so the rack
    attribute is probed first.
    """
    if hasattr(system, "racks"):
        servers = [srv for rack in system.racks for srv in rack.servers]
    elif hasattr(system, "servers"):
        servers = list(system.servers)
    else:
        servers = [system]
    out: List[Tuple[object, int]] = []
    for srv in servers:
        if isinstance(srv, AltocumulusSystem):
            out.append((srv, srv.config.n_groups))
        else:
            out.append((srv, 1))
    return out


def _attach(leaf, executor: Callable) -> None:
    if isinstance(leaf, AltocumulusSystem):
        if leaf.execution_penalty is not None:
            raise ValueError(
                "system already has an execution_penalty hook; cannot "
                "wire a KvsSpec on top of an existing workload"
            )
        leaf.execution_penalty = executor
    else:
        leaf.completion_hooks.append(executor)


def wire_kvs(system, sim, spec: KvsSpec, seed: int) -> MicaWorkload:
    """Build the spec's store + ownership table + workload and hook them
    into ``system``; returns the workload (its ``request_factory`` goes
    to the load generator)."""
    leaves = _leaves(system)
    single = len(leaves) == 1
    if single:
        # One leaf: partition-per-group owner affinity, exactly the
        # paper's EREW layout (non-grouped schedulers get a 4-partition
        # store behind their single queue, as in fig14's Nebula cell).
        leaf, groups = leaves[0]
        n_partitions = groups if isinstance(leaf, AltocumulusSystem) else 4
        n_groups = n_partitions
    else:
        # Fabric: one shared store over every leaf's groups; the
        # fabric's own steering (not flow affinity) places requests.
        n_partitions = sum(groups for _, groups in leaves)
        n_groups = n_partitions
    registry = getattr(system, "metrics", None)
    if registry is None:
        registry = MetricRegistry()
    dataset = build_dataset(
        n_partitions=n_partitions,
        n_keys=spec.n_keys,
        seed=seed,
        registry=registry,
    )
    table = OwnershipTable(
        n_partitions,
        spec.mode,
        d=spec.d,
        multiversion=spec.multiversion,
        max_wait_ns=spec.max_wait_ns,
        registry=registry,
    )
    model = (
        MicaServiceModel.erpc()
        if spec.service == "erpc"
        else MicaServiceModel.nanorpc()
    )
    mix = spec.mix_params()
    workload = MicaWorkload(
        dataset,
        model,
        n_groups=n_groups,
        get_fraction=mix["get_fraction"],
        scan_fraction=mix["scan_fraction"],
        delete_fraction=mix["delete_fraction"],
        zipf_s=mix["zipf_s"],
        mode=spec.mode,
        seed=seed,
        ownership=table,
        hot_key_fraction=mix["hot_key_fraction"],
        hot_keys=spec.hot_keys,
        affinity=single,
        sim=sim,
    )
    offset = 0
    for leaf, groups in leaves:
        _attach(leaf, workload.executor_for(offset))
        offset += groups
    return workload
