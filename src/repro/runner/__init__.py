"""Parallel sweep orchestration with content-addressed result caching.

Every evaluation artifact in this repository is an embarrassingly
parallel sweep -- offered rates x seeds x system variants.  This package
turns those sweeps into data (:class:`PointSpec` / :class:`SweepSpec`),
fans them out over a process pool (:class:`SweepRunner`), and memoizes
each point on disk under a stable content hash (:class:`ResultCache`),
so re-runs are instant, crashes resume, and ``--jobs N`` scales the
wall clock down with core count while staying bit-identical to serial
execution.

Typical use (the experiments layer)::

    from repro.runner import PointSpec, ref, run_points

    specs = [
        PointSpec(builder=ref(my_builder, n_cores=64),
                  service=Fixed(850.0), rate_rps=r, n_requests=40_000,
                  seed=1, slo_ns=8_500.0)
        for r in rates
    ]
    results = run_points(specs, label="fig13")   # obeys --jobs/--cache-dir

Entry points (CLI, benchmarks) opt into parallelism and caching through
:func:`configure` / :func:`overrides`; library callers can also drive a
:class:`SweepRunner` directly.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.context import (
    RunnerConfig,
    SweepCounters,
    configure,
    detect_jobs,
    get_config,
    overrides,
)
from repro.runner.executor import (
    PointResult,
    TaskResult,
    execute_point,
    execute_spec,
)
from repro.runner.progress import ProgressPrinter, SweepProgress
from repro.runner.runner import (
    ShardedRunner,
    SweepRunner,
    SweepStats,
    run_points,
)
from repro.runner.spec import (
    CallableRef,
    PointSpec,
    SpecError,
    SweepSpec,
    TaskSpec,
    fingerprint,
    maybe_ref,
    ref,
)

__all__ = [
    "CallableRef",
    "PointResult",
    "PointSpec",
    "ProgressPrinter",
    "ResultCache",
    "RunnerConfig",
    "ShardedRunner",
    "SpecError",
    "SweepCounters",
    "SweepProgress",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "TaskResult",
    "TaskSpec",
    "configure",
    "default_cache_dir",
    "detect_jobs",
    "execute_point",
    "execute_spec",
    "fingerprint",
    "get_config",
    "maybe_ref",
    "overrides",
    "ref",
    "run_points",
]
