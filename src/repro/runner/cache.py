"""Content-addressed on-disk cache of sweep-point results.

Every executed :class:`~repro.runner.spec.PointSpec` is stored under the
hex fingerprint of its content (spec + package version + schema
version), giving three properties the orchestration layer relies on:

* **instant replays** -- rerunning an identical sweep is pure lookup;
* **crash resume** -- results are persisted as each point completes, so
  an interrupted sweep resumes from where it died;
* **incremental re-runs** -- changing one system variant or one rate
  only recomputes the points whose fingerprints changed.

The cache is a plain directory tree (``<dir>/<key[:2]>/<key>.pkl``), so
wiping it is ``rm -rf`` and inspecting it needs no tooling.  Writes are
atomic (temp file + ``os.replace``), which keeps concurrent sweeps
sharing one cache safe: the worst case is double computation, never a
torn read.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Iterator, Optional

_ENV_CACHE_DIR = "ALTOCUMULUS_CACHE_DIR"


def default_cache_dir() -> str:
    """Resolve the cache root: ``$ALTOCUMULUS_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/altocumulus``, else ``~/.cache/altocumulus``."""
    env = os.environ.get(_ENV_CACHE_DIR)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "altocumulus")
    return os.path.join(os.path.expanduser("~"), ".cache", "altocumulus")


class ResultCache:
    """Pickle-per-key result store addressed by spec fingerprint."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise NotADirectoryError(
                f"cache path {self.directory!r} exists but is not a directory"
            )

    def path_for(self, key: str) -> str:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def get(self, key: str) -> Optional[Any]:
        """Return the stored payload, or ``None`` on a miss.

        A corrupt or unreadable entry (killed writer on a non-atomic
        filesystem, version skew in pickled classes) is treated as a
        miss and removed, so the sweep recomputes it.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, OSError):
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, payload: Any) -> str:
        """Atomically persist ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def keys(self) -> Iterator[str]:
        """Iterate over all stored fingerprints."""
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl") and not name.startswith(".tmp-"):
                    yield name[: -len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                os.remove(self.path_for(key))
                removed += 1
            except OSError:
                pass
        return removed
