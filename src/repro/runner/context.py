"""Process-wide runner configuration and sweep accounting.

The experiment registry exposes ``run(scale, seed)`` functions whose
signatures must stay stable (tests, benchmarks and downstream callers
depend on them), so parallelism and caching knobs travel out-of-band:
the CLI and the benchmark harness configure this module, and
:func:`repro.runner.runner.run_points` reads it.

Defaults are deliberately conservative -- serial, no cache -- so that
importing the runner changes nothing for existing callers; only the
entry points that received explicit ``--jobs`` / cache flags opt in.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional


def detect_jobs() -> int:
    """The ``--jobs 0`` / ``jobs=None`` resolution: one worker per CPU."""
    return max(1, os.cpu_count() or 1)


@dataclass
class SweepCounters:
    """Cumulative accounting across :func:`run_points` calls."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0

    def record(self, points: int, cache_hits: int, elapsed_s: float) -> None:
        self.points += points
        self.cache_hits += cache_hits
        self.executed += points - cache_hits
        self.elapsed_s += elapsed_s

    def snapshot(self) -> "SweepCounters":
        return replace(self)

    def delta(self, earlier: "SweepCounters") -> "SweepCounters":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return SweepCounters(
            points=self.points - earlier.points,
            cache_hits=self.cache_hits - earlier.cache_hits,
            executed=self.executed - earlier.executed,
            elapsed_s=self.elapsed_s - earlier.elapsed_s,
        )


@dataclass
class RunnerConfig:
    """Knobs every sweep dispatched through the runner obeys.

    ``jobs``: worker processes; 1 = serial in-process (today's exact
    behavior), 0 = one per CPU. ``use_cache``: consult/populate the
    content-addressed result cache. ``cache_dir``: cache root (``None``
    = :func:`repro.runner.cache.default_cache_dir`). ``progress``:
    live progress lines on stderr. ``shards``: sharded parallel-in-time
    execution of datacenter points (>1 stamps every eligible spec; see
    :func:`repro.runner.runner.run_points`).
    """

    jobs: int = 1
    use_cache: bool = False
    cache_dir: Optional[str] = None
    progress: bool = False
    shards: int = 1
    counters: SweepCounters = field(default_factory=SweepCounters)

    @property
    def effective_jobs(self) -> int:
        return detect_jobs() if self.jobs <= 0 else self.jobs


_CONFIG = RunnerConfig()


def get_config() -> RunnerConfig:
    """The active process-wide configuration (shared mutable instance)."""
    return _CONFIG


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    progress: Optional[bool] = None,
    shards: Optional[int] = None,
) -> RunnerConfig:
    """Update the process-wide configuration; ``None`` leaves a knob as-is."""
    if jobs is not None:
        _CONFIG.jobs = int(jobs)
    if use_cache is not None:
        _CONFIG.use_cache = bool(use_cache)
    if cache_dir is not None:
        _CONFIG.cache_dir = cache_dir
    if progress is not None:
        _CONFIG.progress = bool(progress)
    if shards is not None:
        _CONFIG.shards = int(shards)
    return _CONFIG


@contextlib.contextmanager
def overrides(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    progress: Optional[bool] = None,
    shards: Optional[int] = None,
) -> Iterator[RunnerConfig]:
    """Temporarily override configuration knobs (tests, benchmarks)."""
    saved = (_CONFIG.jobs, _CONFIG.use_cache, _CONFIG.cache_dir,
             _CONFIG.progress, _CONFIG.shards)
    try:
        yield configure(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
                        progress=progress, shards=shards)
    finally:
        (_CONFIG.jobs, _CONFIG.use_cache, _CONFIG.cache_dir,
         _CONFIG.progress, _CONFIG.shards) = saved
