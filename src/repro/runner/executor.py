"""Worker-side execution of one :class:`~repro.runner.spec.PointSpec`.

This is the only module a pool worker needs: it reconstructs the
simulation from the spec's picklable data, drives it to completion, and
distills the outcome into a small picklable :class:`PointResult`.
Neither the request log nor the system object ever crosses the process
boundary -- experiments that need per-request statistics attach a
``metrics`` callable reference that runs here, next to the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from typing import Union

from repro.analysis.metrics import LatencySummary
from repro.api import run_workload
from repro.runner.spec import CallableRef, PointSpec, TaskSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals


@dataclass
class PointResult:
    """The picklable outcome of one executed sweep point."""

    tag: str
    rate_rps: float
    offered_rps: float
    latency: LatencySummary
    throughput_rps: float
    sim_time_ns: float
    utilization: float
    dropped: int
    #: ``SimulationResult.extra`` counters (migration descriptors, ...).
    extra: Dict[str, float] = field(default_factory=dict)
    #: Fraction of measured requests exceeding the spec's ``slo_ns``
    #: (``None`` when the spec did not carry an SLO).
    violation_ratio: Optional[float] = None
    #: Output of the spec's ``metrics`` hook, computed in the worker.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: ``SimulationResult.metrics``: the system's telemetry-registry
    #: snapshot, serialized through the content-addressed cache.
    instruments: Dict[str, Any] = field(default_factory=dict)
    #: Set by the runner when this result came from the cache rather
    #: than a fresh execution.  Not part of the cached payload.
    cache_hit: bool = False

    @property
    def p99_ns(self) -> float:
        """p99 latency, ``inf`` when the run measured nothing (the same
        sentinel the serial sweep helpers have always used)."""
        return self.latency.p99 if self.latency.count else float("inf")

    @property
    def mean_ns(self) -> float:
        return self.latency.mean


@dataclass
class TaskResult:
    """The picklable outcome of one executed :class:`TaskSpec`."""

    tag: str
    value: Any
    cache_hit: bool = False


def execute_spec(
    spec: Union[PointSpec, TaskSpec]
) -> "Union[PointResult, TaskResult]":
    """Execute either spec flavor (the pool worker entry point)."""
    if isinstance(spec, TaskSpec):
        return TaskResult(tag=spec.tag, value=spec.fn.resolve()())
    return execute_point(spec)


def _build_point(spec: PointSpec):
    """Build the spec's system: serial, or sharded parallel-in-time.

    The serial build is the historical one: fresh simulator, seeded
    streams, ``builder(sim, streams)``.  With ``spec.shards > 1`` that
    very build serves as a *probe*: if it produced a
    :class:`~repro.datacenter.topology.Datacenter`, the system is
    rebuilt from its config behind a window coordinator
    (:mod:`repro.datacenter.sharded`, bit-identical results); anything
    else cannot be partitioned at the spine, and the probe -- already
    the exact serial build -- is used as-is, so a globally stamped
    ``--shards`` never breaks a mixed sweep.
    """
    request_factory = None
    sim = Simulator()
    streams = RandomStreams(spec.seed)
    built = spec.builder.resolve()(sim, streams)
    if isinstance(built, tuple):  # wired builder: (system, request_factory)
        system, request_factory = built
    else:
        system = built
    if spec.shards > 1 and request_factory is None:
        from repro.datacenter.topology import Datacenter

        if isinstance(system, Datacenter):
            from repro.datacenter.sharded import build_sharded_topology
            from repro.sim.sharded import ShardedSimulator

            sim = ShardedSimulator()
            streams = RandomStreams(spec.seed)
            # A shard cannot hold less than one rack; a globally
            # stamped shard count is clamped, not an error.
            system = build_sharded_topology(
                sim, streams, system.config,
                min(spec.shards, system.config.n_racks),
            )
    return system, sim, streams, request_factory


def execute_point(spec: PointSpec) -> PointResult:
    """Run one sweep point from scratch, deterministically.

    A fresh :class:`Simulator` and :class:`RandomStreams` seeded from
    the spec make the result independent of which process (or how many
    sibling points) executed it -- parallel sweeps are bit-identical to
    serial ones.  ``spec.shards > 1`` swaps in the sharded datacenter
    execution mode, which is likewise bit-identical by construction.
    """
    if spec.control is not None and spec.shards > 1:
        raise ValueError(
            "controllers do not compose with sharded execution: "
            f"spec has control={spec.control.controller!r} and "
            f"shards={spec.shards}; set shards=1 to attach a controller"
        )
    if spec.kvs is not None and spec.shards > 1:
        raise ValueError(
            "a KvsSpec does not compose with sharded execution: the "
            f"shared store would break shard isolation; spec has "
            f"shards={spec.shards}; set shards=1 to attach a data layer"
        )
    if spec.kvs is not None and spec.request_factory is not None:
        raise ValueError("pass either kvs= or request_factory=, not both")
    system, sim, streams, request_factory = _build_point(spec)
    if spec.kvs is not None and request_factory is not None:
        raise ValueError(
            "pass either kvs= or a wired builder returning its own "
            "request_factory, not both"
        )
    if spec.request_factory is not None:
        request_factory = spec.request_factory.resolve()()
    connections = (
        spec.connections.resolve()() if spec.connections is not None else None
    )
    if spec.arrivals is not None:
        arrivals = spec.arrivals.resolve()(spec.rate_rps)
    else:
        arrivals = PoissonArrivals(spec.rate_rps)
    service = (
        spec.service.resolve()()
        if isinstance(spec.service, CallableRef)
        else spec.service
    )
    result = run_workload(
        system,
        sim,
        streams,
        arrivals,
        service,
        n_requests=spec.n_requests,
        warmup_fraction=spec.warmup_fraction,
        connections=connections,
        request_factory=request_factory,
        size_bytes=spec.size_bytes,
        faults=spec.faults,
        control=spec.control,
        jobs=spec.jobs,
        kvs=spec.kvs,
    )
    violation = (
        result.violation_ratio(spec.slo_ns) if spec.slo_ns is not None else None
    )
    metrics: Dict[str, Any] = {}
    if spec.metrics is not None:
        metrics = spec.metrics.resolve()(result)
        if not isinstance(metrics, dict):
            raise TypeError(
                f"metrics hook {spec.metrics.target!r} must return a dict, "
                f"got {type(metrics).__name__}"
            )
    return PointResult(
        tag=spec.tag,
        rate_rps=spec.rate_rps,
        offered_rps=result.offered_rps,
        latency=result.latency,
        throughput_rps=result.throughput_rps,
        sim_time_ns=result.sim_time_ns,
        utilization=result.utilization,
        dropped=result.dropped,
        extra=dict(result.extra),
        violation_ratio=violation,
        metrics=metrics,
        instruments=dict(result.metrics),
    )
