"""Live progress reporting for sweep execution.

The runner invokes a single hook -- ``hook(progress: SweepProgress)`` --
once per completed point and once at the end.  :class:`ProgressPrinter`
is the stderr implementation the CLI installs; anything callable with
the same signature (a logger, a TUI, a test probe) can be substituted.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import IO, Optional


@dataclass
class SweepProgress:
    """A snapshot of one sweep's execution state."""

    label: str
    total: int
    done: int
    cache_hits: int
    elapsed_s: float
    finished: bool = False

    @property
    def executed(self) -> int:
        return self.done - self.cache_hits

    @property
    def eta_s(self) -> Optional[float]:
        """Naive remaining-time estimate from executed-point throughput.

        Cache hits are excluded from the rate (they are effectively
        free), so a warm-cache sweep reports an ETA near zero.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self.executed <= 0 or self.elapsed_s <= 0:
            return None
        return remaining * (self.elapsed_s / self.executed)


class ProgressPrinter:
    """Render sweep progress as a single rewritten stderr line.

    On non-TTY streams (CI logs, pipes) carriage returns would smear
    into noise, so only the final summary line is emitted there.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        min_interval_s: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_emit = 0.0
        self._wrote_line = False

    def _render(self, p: SweepProgress) -> str:
        parts = [f"[{p.label}] {p.done}/{p.total} points"]
        if p.cache_hits:
            parts.append(f"{p.cache_hits} cached")
        parts.append(f"{p.elapsed_s:.1f}s elapsed")
        if not p.finished:
            eta = p.eta_s
            if eta is not None:
                parts.append(f"eta {eta:.1f}s")
        return ", ".join(parts)

    def __call__(self, p: SweepProgress) -> None:
        interactive = bool(getattr(self.stream, "isatty", lambda: False)())
        now = time.monotonic()
        if p.finished:
            if interactive and self._wrote_line:
                self.stream.write("\r\x1b[K")
            self.stream.write(self._render(p) + "\n")
            self.stream.flush()
            self._wrote_line = False
            return
        if not interactive:
            return
        if now - self._last_emit < self.min_interval_s and p.done < p.total:
            return
        self._last_emit = now
        self.stream.write("\r\x1b[K" + self._render(p))
        self.stream.flush()
        self._wrote_line = True
