"""Parallel sweep orchestration with content-addressed caching.

:class:`SweepRunner` fans :class:`~repro.runner.spec.PointSpec`\\ s out
to a process pool, consults the on-disk result cache first, persists
each freshly executed point the moment it completes (crash-resume), and
always returns results in submission order so callers can zip specs and
results without caring about completion order.

:func:`run_points` is the convenience entry the experiments layer uses:
it reads the process-wide :mod:`repro.runner.context` configuration
(wired from ``altocumulus-exp --jobs/--cache-dir/--no-cache`` and the
benchmark harness's environment knobs) so experiment ``run(scale,
seed)`` signatures stay unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.context import RunnerConfig, get_config
from repro.runner.executor import PointResult, TaskResult, execute_spec
from repro.runner.progress import ProgressPrinter, SweepProgress
from repro.runner.spec import PointSpec, TaskSpec, fingerprint

#: Cap on in-flight submissions per worker; bounds parent-side memory
#: for huge sweeps without ever starving the pool.
_BACKLOG_PER_WORKER = 4

#: Either spec flavor is accepted everywhere; results mirror the flavor.
SpecT = Union[PointSpec, TaskSpec]
ResultT = Union[PointResult, TaskResult]


@dataclass
class SweepStats:
    """Execution accounting for one :meth:`SweepRunner.run` call."""

    points: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1

    @property
    def executed(self) -> int:
        return self.points - self.cache_hits


class SweepRunner:
    """Executes batches of sweep points with caching and parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
        label: str = "sweep",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (got {jobs}); use "
                             "RunnerConfig jobs=0 for CPU-count detection")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.label = label
        self.last_stats = SweepStats()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SpecT]) -> List[ResultT]:
        """Execute ``specs``; results are returned in submission order."""
        started = time.monotonic()
        results: List[Optional[ResultT]] = [None] * len(specs)
        keys: List[Optional[str]] = [None] * len(specs)
        misses: List[int] = []
        hits = 0
        done = 0

        for index, spec in enumerate(specs):
            if self.cache is None:
                misses.append(index)
                continue
            key = fingerprint(spec)
            keys[index] = key
            cached = self.cache.get(key)
            if cached is not None:
                cached.cache_hit = True
                results[index] = cached
                hits += 1
                done += 1
                self._report(len(specs), done, hits, started, finished=False)
            else:
                misses.append(index)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                done = self._run_pool(specs, misses, results, keys, done,
                                      hits, started)
            else:
                for index in misses:
                    results[index] = self._execute_and_store(
                        specs[index], keys[index]
                    )
                    done += 1
                    self._report(len(specs), done, hits, started,
                                 finished=False)

        elapsed = time.monotonic() - started
        self.last_stats = SweepStats(
            points=len(specs), cache_hits=hits, elapsed_s=elapsed,
            jobs=self.jobs,
        )
        self._report(len(specs), len(specs), hits, started, finished=True)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        specs: Sequence[SpecT],
        misses: List[int],
        results: List[Optional[ResultT]],
        keys: List[Optional[str]],
        done: int,
        hits: int,
        started: float,
    ) -> int:
        workers = min(self.jobs, len(misses))
        backlog = workers * _BACKLOG_PER_WORKER
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {}
            queue = iter(misses)
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < backlog:
                    try:
                        index = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    pending[pool.submit(execute_spec, specs[index])] = index
                if not pending:
                    break
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = pending.pop(future)
                    result = future.result()  # worker exceptions surface here
                    if self.cache is not None and keys[index] is not None:
                        self.cache.put(keys[index], result)
                    results[index] = result
                    done += 1
                    self._report(len(specs), done, hits, started,
                                 finished=False)
        return done

    def _execute_and_store(
        self, spec: SpecT, key: Optional[str]
    ) -> ResultT:
        result = execute_spec(spec)
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        return result

    def _report(
        self, total: int, done: int, hits: int, started: float, finished: bool
    ) -> None:
        if self.progress is None or total == 0:
            return
        self.progress(
            SweepProgress(
                label=self.label,
                total=total,
                done=done,
                cache_hits=hits,
                elapsed_s=time.monotonic() - started,
                finished=finished,
            )
        )


class ShardedRunner(SweepRunner):
    """A :class:`SweepRunner` whose points execute sharded.

    Stamps ``shards`` onto every :class:`PointSpec` that didn't choose
    its own count, then runs exactly like its parent -- so sweep-level
    ``jobs`` parallelism composes with intra-run shard parallelism
    (each worker process drives its point's shard workers), and the
    caching/ordering/progress machinery is reused unchanged.
    """

    def __init__(self, shards: int, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        if shards < 1:
            raise ValueError(f"shards must be >= 1 (got {shards})")
        self.shards = shards

    def run(self, specs: Sequence[SpecT]) -> List[ResultT]:
        if self.shards > 1:
            specs = [
                replace(spec, shards=self.shards)
                if isinstance(spec, PointSpec) and spec.shards == 1
                else spec
                for spec in specs
            ]
        return super().run(specs)


def run_points(
    specs: Sequence[SpecT],
    label: str = "sweep",
    config: Optional[RunnerConfig] = None,
) -> List[ResultT]:
    """Run specs under the process-wide runner configuration.

    This is the experiments layer's entry point: serial and cache-less
    by default (bit-identical to the historical inline loops), parallel
    and cached when the CLI or benchmark harness configured it so.

    An ambient ``shards > 1`` (the CLI's ``--shards``) is stamped onto
    every point spec that didn't set its own shard count; datacenter
    points then execute sharded (bit-identical results), other points
    fall back to serial in the executor.
    """
    cfg = config if config is not None else get_config()
    if cfg.shards > 1:
        specs = [
            replace(spec, shards=cfg.shards)
            if isinstance(spec, PointSpec) and spec.shards == 1
            else spec
            for spec in specs
        ]
    cache = ResultCache(cfg.cache_dir) if cfg.use_cache else None
    runner = SweepRunner(
        jobs=cfg.effective_jobs,
        cache=cache,
        progress=ProgressPrinter() if cfg.progress else None,
        label=label,
    )
    results = runner.run(specs)
    cfg.counters.record(
        points=runner.last_stats.points,
        cache_hits=runner.last_stats.cache_hits,
        elapsed_s=runner.last_stats.elapsed_s,
    )
    return results
