"""Picklable descriptions of simulation work.

The evaluation's sweeps are embarrassingly parallel -- offered rates x
seeds x system variants -- but the experiment modules historically
described each point with closures, which cannot cross a process
boundary and cannot be hashed for caching.  This module provides the
data layer that replaces them:

* :class:`CallableRef` -- a reference to a module-level callable plus
  keyword arguments, picklable and stably hashable.
* :class:`PointSpec` -- one unit of simulation work (builder + workload
  configuration + rate + seed + request count) as plain data.
* :class:`SweepSpec` -- a rate sweep sharing one configuration.
* :func:`fingerprint` -- a stable content hash of any spec, used as the
  key of the on-disk result cache.

Determinism contract: executing the same :class:`PointSpec` always
constructs a fresh :class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.rng.RandomStreams` from the spec's seed, so results
are bit-identical whether a point runs serially, in a worker process,
or on another machine.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.control.config import ControlConfig
from repro.faults.plan import FaultPlan
from repro.kvs.ownership import KvsSpec
from repro.workload.jobs import JobShape
from repro.workload.service import ServiceDistribution

#: Bump when the execution or result layout changes incompatibly;
#: salted into every cache key alongside the package version.
#: 2: PointResult grew the ``instruments`` telemetry-registry snapshot.
#: 3: PointSpec/SweepSpec grew the ``faults`` FaultPlan field.
#: 4: PointSpec/SweepSpec grew the ``shards`` sharded-execution field.
#: 5: PointSpec/SweepSpec grew the ``control`` ControlConfig field.
#: 6: PointSpec/SweepSpec grew the ``jobs`` JobShape field.
#: 7: PointSpec/SweepSpec grew the ``kvs`` KvsSpec field.
SPEC_SCHEMA_VERSION = 7


class SpecError(TypeError):
    """Raised when a callable cannot be described as picklable data
    (lambdas, closures, instance-bound state, ...)."""


@dataclass
class CallableRef:
    """A module-level callable identified by ``"module:qualname"`` plus
    keyword arguments to pre-apply.

    Only import-reachable callables can be referenced: the whole point
    is that a worker process (or a future run reading the cache key) can
    reconstruct the call from the string.  Use :func:`ref` to build one
    with validation.
    """

    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[..., Any]:
        """Import and return the referenced callable (kwargs applied)."""
        module_name, _, qualname = self.target.partition(":")
        if not module_name or not qualname:
            raise SpecError(f"malformed callable reference {self.target!r}")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise SpecError(f"{self.target!r} resolved to non-callable {obj!r}")
        if self.kwargs:
            return functools.partial(obj, **self.kwargs)
        return obj

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.resolve()(*args, **kwargs)


def ref(fn: Union[Callable[..., Any], CallableRef], **kwargs: Any) -> CallableRef:
    """Describe ``fn`` as a :class:`CallableRef`, merging ``kwargs``.

    ``fn`` must be reachable as ``module.qualname`` -- a module-level
    function, a ``functools.partial`` of one (keyword arguments only),
    a static/class method, or an existing :class:`CallableRef`.
    Lambdas and closures are rejected with :class:`SpecError`; the
    caller is expected to fall back to in-process execution.
    """
    if isinstance(fn, CallableRef):
        return CallableRef(fn.target, {**fn.kwargs, **kwargs})
    if isinstance(fn, functools.partial):
        if fn.args:
            raise SpecError(
                "functools.partial with positional arguments cannot be "
                "described stably; use keyword arguments"
            )
        inner = ref(fn.func)
        return CallableRef(inner.target, {**inner.kwargs,
                                          **(fn.keywords or {}), **kwargs})
    underlying = getattr(fn, "__func__", fn)  # unwrap bound class/static methods
    module = getattr(underlying, "__module__", None)
    qualname = getattr(underlying, "__qualname__", None)
    if not module or not qualname:
        raise SpecError(f"{fn!r} has no importable module/qualname")
    if "<" in qualname:  # <lambda>, <locals> (closures)
        raise SpecError(
            f"{qualname!r} is a lambda or closure; move it to module level "
            "so sweep points can be pickled and cached"
        )
    target = f"{module}:{qualname}"
    # Round-trip check: the name must resolve back to the same object,
    # otherwise workers would silently run different code.
    try:
        resolved = CallableRef(target).resolve()
    except (ImportError, AttributeError) as exc:
        raise SpecError(f"cannot re-import {target!r}: {exc}") from exc
    resolved_underlying = getattr(resolved, "__func__", resolved)
    if resolved_underlying is not underlying:
        raise SpecError(f"{target!r} does not round-trip to {fn!r}")
    return CallableRef(target, dict(kwargs))


def maybe_ref(fn: Optional[Callable[..., Any]], **kwargs: Any) -> Optional[CallableRef]:
    """:func:`ref`, passing ``None`` through."""
    if fn is None:
        return None
    return ref(fn, **kwargs)


@dataclass
class PointSpec:
    """One unit of simulation work, as plain picklable data.

    Execution semantics (see :func:`repro.runner.executor.execute_point`):
    a fresh simulator and seeded RNG streams are built, ``builder`` is
    called as ``fn(sim, streams, **kwargs)`` to construct the system
    (it may return ``(system, request_factory)`` when the workload needs
    per-run wiring, e.g. the MICA experiments), ``arrivals`` is called
    as ``fn(rate_rps, **kwargs)`` (Poisson by default), and the workload
    is driven to completion.  ``metrics`` -- called as
    ``fn(simulation_result, **kwargs)`` in the worker -- distills any
    per-request statistics into a small picklable dict so that neither
    the request log nor the system object ever crosses the process
    boundary.
    """

    builder: CallableRef
    service: Union[ServiceDistribution, CallableRef]
    rate_rps: float
    n_requests: int
    seed: int = 1
    arrivals: Optional[CallableRef] = None
    connections: Optional[CallableRef] = None
    request_factory: Optional[CallableRef] = None
    metrics: Optional[CallableRef] = None
    warmup_fraction: float = 0.1
    size_bytes: int = 300
    slo_ns: Optional[float] = None
    #: Fault-injection schedule driven into the system during the run
    #: (``None`` = the fault-free fast path).  FaultPlan is a frozen
    #: dataclass of primitives, so it pickles and content-hashes cleanly.
    faults: Optional[FaultPlan] = None
    #: Sharded parallel-in-time execution of the datacenter tier
    #: (see :mod:`repro.datacenter.sharded`): >1 partitions the run
    #: per-rack across worker processes.  Results are bit-identical to
    #: ``shards=1`` (the serial engine); the field still participates in
    #: the cache key so an identity regression can never replay a stale
    #: cached result from the other execution mode.
    shards: int = 1
    #: Adaptive control loop attached to the run (``None`` = no loop,
    #: the sense-only fast path).  ControlConfig is a frozen dataclass
    #: of primitives, so it pickles and content-hashes cleanly.  Does
    #: not compose with ``shards > 1`` (the executor rejects it).
    control: Optional[ControlConfig] = None
    #: Job structure over the request stream (``None`` = plain
    #: independent requests, the fast path).  A JobShape is a dataclass
    #: of degree distributions, so it pickles and content-hashes
    #: cleanly; the shape participates in the cache key because the same
    #: builder/rate/seed produces entirely different traffic once
    #: requests are grouped into scatter-gather or gang jobs.
    jobs: Optional[JobShape] = None
    #: KVS-backed workload: a MICA store + ownership discipline wired
    #: into every leaf of the built system (``None`` = no data layer).
    #: KvsSpec is a frozen dataclass of primitives, so it pickles and
    #: content-hashes cleanly; mutually exclusive with an explicit
    #: ``request_factory`` and with ``shards > 1``.
    kvs: Optional[KvsSpec] = None
    #: Free-form label for progress display and result grouping; part of
    #: the identity (two differently-tagged identical runs cache apart).
    tag: str = ""


@dataclass
class TaskSpec:
    """An arbitrary unit of cacheable parallel work: a module-level
    callable plus kwargs, executed as ``fn()`` in a worker.

    The escape hatch for experiments whose measurement loop does not fit
    the build-system/run-workload shape of :class:`PointSpec` (e.g. the
    Fig. 9 queue-snapshot study).  The return value must be picklable;
    determinism is the callee's responsibility (derive all randomness
    from an explicit seed argument).
    """

    fn: CallableRef
    tag: str = ""


@dataclass
class SweepSpec:
    """A latency-throughput sweep: one configuration, many offered rates."""

    builder: CallableRef
    service: Union[ServiceDistribution, CallableRef]
    rates_rps: Sequence[float]
    n_requests: int
    seed: int = 1
    arrivals: Optional[CallableRef] = None
    connections: Optional[CallableRef] = None
    request_factory: Optional[CallableRef] = None
    metrics: Optional[CallableRef] = None
    warmup_fraction: float = 0.1
    size_bytes: int = 300
    slo_ns: Optional[float] = None
    faults: Optional[FaultPlan] = None
    shards: int = 1
    control: Optional[ControlConfig] = None
    jobs: Optional[JobShape] = None
    kvs: Optional[KvsSpec] = None
    tag: str = ""

    def points(self) -> List[PointSpec]:
        """Expand into one :class:`PointSpec` per offered rate."""
        return [
            PointSpec(
                builder=self.builder,
                service=self.service,
                rate_rps=float(rate),
                n_requests=self.n_requests,
                seed=self.seed,
                arrivals=self.arrivals,
                connections=self.connections,
                request_factory=self.request_factory,
                metrics=self.metrics,
                warmup_fraction=self.warmup_fraction,
                size_bytes=self.size_bytes,
                slo_ns=self.slo_ns,
                faults=self.faults,
                shards=self.shards,
                control=self.control,
                jobs=self.jobs,
                kvs=self.kvs,
                tag=self.tag,
            )
            for rate in self.rates_rps
        ]


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-encodable canonical structure.

    Every constituent a spec may carry must either be a primitive, a
    container of canonicalizable values, a :class:`CallableRef`, a
    dataclass, a numpy scalar/array, or a plain object whose identity is
    fully captured by ``type + __dict__`` (the service distributions).
    Anything else raises :class:`SpecError` rather than hashing
    unstably.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() is exact for floats and distinguishes NaN/inf, which
        # json.dumps would otherwise refuse or collapse.
        return ["f", repr(value)]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return ["f", repr(float(value))]
    if isinstance(value, bytes):
        return ["b", value.hex()]
    if isinstance(value, np.ndarray):
        return ["arr", list(value.shape), str(value.dtype),
                hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(v) for v in value]]
    if isinstance(value, dict):
        return ["map", sorted(
            ([_canonical(k), _canonical(v)] for k, v in value.items()),
            key=json.dumps,
        )]
    if isinstance(value, CallableRef):
        return ["ref", value.target, _canonical(value.kwargs)]
    cls = type(value)
    type_tag = f"{cls.__module__}:{cls.__qualname__}"
    if dataclasses.is_dataclass(value):
        fields = {f.name: getattr(value, f.name)
                  for f in dataclasses.fields(value)}
        return ["obj", type_tag, _canonical(fields)]
    state = getattr(value, "__dict__", None)
    if state is not None:
        return ["obj", type_tag, _canonical(dict(state))]
    raise SpecError(
        f"cannot canonically hash {value!r} of type {type_tag}; use "
        "primitives, dataclasses, or CallableRef in specs"
    )


def fingerprint(spec: Any, salt: str = "") -> str:
    """Stable content hash of a spec (hex sha256).

    The package version and spec schema version are always salted in,
    so cached results are invalidated by upgrades rather than silently
    replayed across behavioral changes.
    """
    from repro import __version__

    payload = json.dumps(
        ["altocumulus", __version__, SPEC_SCHEMA_VERSION, salt,
         _canonical(spec)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
