"""RPC scheduling systems: the state-of-the-art baselines of Table I.

Every system shares the :class:`~repro.schedulers.base.RpcSystem`
harness (NIC delivery -> policy -> cores) and differs only in policy:

* :class:`~repro.schedulers.rss.RssSystem` -- commodity NIC RSS,
  d-FCFS per-core queues (the "Emulated Commodity RSS NIC" baseline).
* :class:`~repro.schedulers.rss.IxSystem` -- IX-style kernel-bypass
  dataplane: RSS d-FCFS with batched run-to-completion.
* :class:`~repro.schedulers.work_stealing.ZygosSystem` -- d-FCFS plus
  software work stealing (random victim, 200-400 ns per steal).
* :class:`~repro.schedulers.centralized.ShinjukuSystem` -- centralized
  dispatcher core, c-FCFS with microsecond-scale preemption.
* :class:`~repro.schedulers.jbsq.JbsqSystem` -- NIC-driven hardware
  JBSQ(n): RPCValet, Nebula and nanoPU configurations.
"""

from repro.schedulers.base import RpcSystem, SystemStats
from repro.schedulers.rss import IxSystem, RssSystem
from repro.schedulers.rss_plus_plus import RssPlusPlusSystem
from repro.schedulers.work_stealing import ZygosSystem
from repro.schedulers.centralized import ShinjukuSystem
from repro.schedulers.jbsq import JbsqSystem, nanopu, nebula, rpcvalet

__all__ = [
    "RpcSystem",
    "SystemStats",
    "RssSystem",
    "IxSystem",
    "RssPlusPlusSystem",
    "ZygosSystem",
    "ShinjukuSystem",
    "JbsqSystem",
    "nebula",
    "nanopu",
    "rpcvalet",
]
