"""The common RPC-system harness.

An :class:`RpcSystem` owns the cores and receives requests from the load
generator via :meth:`offer`.  The flow for every scheduler is:

    wire arrival --(NIC delivery latency)--> ``_deliver`` (policy)
    --> core executes --> ``_request_completed`` --> policy picks next

Subclasses implement ``_deliver`` (where does an arriving request go?)
and ``_after_complete`` (what does a freed core do next?), optionally
``_after_preempt`` for quantum-preemptive policies.

The harness also handles end-of-run detection: once ``expect(n)`` has
been called and *n* requests have completed (or been dropped), it stops
the simulator so periodic timers don't keep the event heap alive.

Telemetry: every system owns a :class:`~repro.telemetry.MetricRegistry`
(``system.metrics``) that the engine, NIC delivery model, and scheduler
subsystems register into, and a trace sink (``system.trace``) picked up
from the active :func:`repro.telemetry.capture` context -- the shared
``NULL_SINK`` when tracing is off, so the disabled path is a single
attribute check.
"""

from __future__ import annotations

import abc
import warnings
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Union

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel, HwTerminatedDelivery
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import (
    MetricNamespaceError,
    MetricRegistry,
    trace_sink,
    validate_namespace,
)
from repro.workload.request import Request

Number = Union[int, float]


class ScopedStats:
    """Namespaced write adapter for :attr:`SystemStats.extra`.

    Every free-form stat travels under a ``namespace.key`` name, and the
    first namespace to write a full key owns it -- a second namespace
    producing the same full key (e.g. ``a`` writing ``cluster.x`` vs
    ``a.cluster`` writing ``x``) raises :class:`MetricNamespaceError`
    instead of silently merging, which is how cluster metrics used to
    collide with scheduler-written keys.

    ``incr`` defaults to an integer amount so pure counters stay ints
    all the way to JSON.
    """

    __slots__ = ("_stats", "namespace")

    def __init__(self, stats: "SystemStats", namespace: str) -> None:
        self._stats = stats
        self.namespace = validate_namespace(namespace)

    def incr(self, key: str, amount: Number = 1) -> None:
        """Add ``amount`` to ``namespace.key`` (int-preserving)."""
        self._stats._write(self.namespace, key, amount, add=True)

    def put(self, key: str, value: Number) -> None:
        """Set ``namespace.key`` to ``value``."""
        self._stats._write(self.namespace, key, value, add=False)

    def get(self, key: str, default: Number = 0) -> Number:
        return self._stats._extra.get(f"{self.namespace}.{key}", default)


class SystemStats:
    """Aggregate counters every system maintains, viewed by a registry.

    The core counts (offered/completed/dropped/scheduling) stay plain
    writable attributes -- the hot paths increment them directly and
    tests may assign them -- while the registry observes them through
    bound instruments under ``system.*``.  Free-form stats go through
    :meth:`scoped` (a namespaced :class:`ScopedStats` adapter); the
    legacy :meth:`bump` is deprecated and funnels into the ``adhoc``
    namespace.
    """

    __slots__ = (
        "registry",
        "offered",
        "completed",
        "dropped",
        "scheduling_ops",
        "scheduling_ns",
        "_extra",
        "_extra_owner",
    )

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.offered = 0
        self.completed = 0
        self.dropped = 0
        self.scheduling_ops = 0
        self.scheduling_ns = 0.0
        self._extra: Dict[str, Number] = {}
        self._extra_owner: Dict[str, str] = {}
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        reg.counter("system.offered", fn=lambda: self.offered)
        reg.counter("system.completed", fn=lambda: self.completed)
        reg.counter("system.dropped", fn=lambda: self.dropped)
        reg.counter("system.scheduling_ops", fn=lambda: self.scheduling_ops)
        reg.counter("system.scheduling_ns", fn=lambda: self.scheduling_ns)
        reg.gauge("system.extra", fn=lambda: dict(self._extra))

    @property
    def extra(self) -> Mapping[str, Number]:
        """Read-only view of the namespaced free-form stats.

        Writes go through :meth:`scoped`; mutating the view raises.
        """
        return MappingProxyType(self._extra)

    def scoped(self, namespace: str) -> ScopedStats:
        """A write adapter whose keys all live under ``namespace.``."""
        return ScopedStats(self, namespace)

    def _write(
        self, namespace: str, key: str, value: Number, add: bool
    ) -> None:
        full = f"{namespace}.{key}"
        owner = self._extra_owner.get(full)
        if owner is None:
            self._extra_owner[full] = namespace
        elif owner != namespace:
            raise MetricNamespaceError(
                f"stat key {full!r} already owned by namespace {owner!r}; "
                f"refusing write from namespace {namespace!r}"
            )
        if add:
            self._extra[full] = self._extra.get(full, 0) + value
        else:
            self._extra[full] = value

    def bump(self, key: str, amount: Number = 1) -> None:
        """Deprecated: use ``scoped(namespace).incr(key)`` instead.

        Writes land in the ``adhoc`` namespace so legacy callers cannot
        collide with instrumented subsystems.
        """
        warnings.warn(
            "SystemStats.bump() is deprecated; use "
            "stats.scoped(namespace).incr(key)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._write("adhoc", key, amount, add=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemStats(offered={self.offered}, "
            f"completed={self.completed}, dropped={self.dropped}, "
            f"scheduling_ops={self.scheduling_ops}, "
            f"scheduling_ns={self.scheduling_ns}, extra={self._extra})"
        )


class RpcSystem(abc.ABC):
    """Base class wiring NIC delivery, scheduling policy, and cores."""

    #: Human-readable system name, overridden by subclasses.
    name = "abstract"

    #: Whether this scheduler admits multi-core gang jobs
    #: (``core_demand > 1``): it must hold such a request at its queue
    #: head until enough cores are idle, then occupy the extras with
    #: gang shadows.  Declared per subclass; the workload layer
    #: validates it up-front (:func:`repro.workload.jobs
    #: .system_supports_gang`) so the hot path never checks.
    supports_gang = False

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if n_cores <= 0:
            raise ValueError(f"need at least one core, got {n_cores}")
        self.sim = sim
        self.streams = streams
        self.constants = constants
        self.delivery = delivery or HwTerminatedDelivery(constants)
        self.cores: List[Core] = [
            Core(sim, i, self._request_completed, self._request_preempted)
            for i in range(n_cores)
        ]
        self.metrics = MetricRegistry()
        self.trace = trace_sink()
        self.stats = SystemStats(self.metrics)
        sim.register_metrics(self.metrics)
        register = getattr(self.delivery, "register_metrics", None)
        if register is not None:
            register(self.metrics)
        self._latency_hist = self.metrics.histogram("system.latency_ns")
        self.finished_requests: List[Request] = []
        self._expected: Optional[int] = None
        #: Called with each completing request (application execution for
        #: systems without an in-band execution hook).
        self.completion_hooks: List = []
        #: Called with each dropped request (bounded-queue overflow).
        #: The cluster tier uses this to observe per-server terminations
        #: without owning the scheduler's internals.
        self.drop_hooks: List = []

    # ------------------------------------------------------------------
    # Load-generator interface
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Wire arrival at the NIC.  The latency clock starts here."""
        self.stats.offered += 1
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "nic_delivery", self.sim.now)
        delay = self.delivery.delivery_ns(request)
        self.sim.schedule(delay, self._deliver, request)

    def expect(self, n_requests: int) -> None:
        """Stop the simulation once ``n_requests`` terminate."""
        if n_requests <= 0:
            raise ValueError(f"expected count must be positive, got {n_requests}")
        self._expected = n_requests

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _deliver(self, request: Request) -> None:
        """Request is now visible to the host; enqueue / dispatch it."""

    @abc.abstractmethod
    def _after_complete(self, core: Core, request: Request) -> None:
        """A core finished ``request``; give it (or others) more work."""

    def _after_preempt(self, core: Core, request: Request) -> None:
        """A quantum expired; requeue ``request`` and refill the core.

        Only preemptive systems override this.
        """
        raise NotImplementedError(f"{self.name} does not preempt")

    # ------------------------------------------------------------------
    # Core callbacks (template methods; not overridden)
    # ------------------------------------------------------------------
    def _request_completed(self, core: Core, request: Request) -> None:
        if request.gang_shadow:
            # A gang's secondary-core placeholder: invisible to stats,
            # hooks, histograms and run termination -- only the
            # scheduler's occupancy bookkeeping sees it free its core.
            self._after_complete(core, request)
            return
        self.stats.completed += 1
        self._latency_hist.observe(request.finished - request.arrival)
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "completed", self.sim.now)
        self.finished_requests.append(request)
        for hook in self.completion_hooks:
            hook(request)
        self._check_done()
        self._after_complete(core, request)

    def _request_preempted(self, core: Core, request: Request) -> None:
        self._after_preempt(core, request)

    def _drop(self, request: Request) -> None:
        """Drop a request (bounded-queue overflow)."""
        request.dropped = True
        if request.gang_shadow:
            # Same fence as _request_completed: a shadow's terminal must
            # never count toward stats, hooks or run termination (its
            # primary carries the job's outcome).
            return
        self.stats.dropped += 1
        trace = self.trace
        if trace.enabled and trace.sampled(request.req_id):
            trace.mark(request.req_id, "dropped", self.sim.now)
        for hook in self.drop_hooks:
            hook(request)
        self._check_done()

    def _check_done(self) -> None:
        if (
            self._expected is not None
            and self.stats.completed + self.stats.dropped >= self._expected
        ):
            self.sim.stop()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _charge_scheduling(self, ns: float) -> None:
        """Record one scheduling operation of the given cost."""
        self.stats.scheduling_ops += 1
        self.stats.scheduling_ns += ns

    def idle_cores(self) -> List[Core]:
        """Cores with nothing running right now."""
        return [c for c in self.cores if not c.busy]

    def utilization(self, elapsed_ns: float) -> float:
        """Mean core utilization over ``elapsed_ns``."""
        if elapsed_ns <= 0 or not self.cores:
            return 0.0
        return sum(c.busy_ns for c in self.cores) / (elapsed_ns * len(self.cores))

    def shutdown(self) -> None:
        """Cancel periodic machinery (timers); default: nothing to do."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} cores={len(self.cores)} "
            f"done={self.stats.completed}/{self.stats.offered}>"
        )
