"""The common RPC-system harness.

An :class:`RpcSystem` owns the cores and receives requests from the load
generator via :meth:`offer`.  The flow for every scheduler is:

    wire arrival --(NIC delivery latency)--> ``_deliver`` (policy)
    --> core executes --> ``_request_completed`` --> policy picks next

Subclasses implement ``_deliver`` (where does an arriving request go?)
and ``_after_complete`` (what does a freed core do next?), optionally
``_after_preempt`` for quantum-preemptive policies.

The harness also handles end-of-run detection: once ``expect(n)`` has
been called and *n* requests have completed (or been dropped), it stops
the simulator so periodic timers don't keep the event heap alive.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel, HwTerminatedDelivery
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


@dataclass
class SystemStats:
    """Aggregate counters every system maintains."""

    offered: int = 0
    completed: int = 0
    dropped: int = 0
    scheduling_ops: int = 0
    scheduling_ns: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment a system-specific counter."""
        self.extra[key] = self.extra.get(key, 0.0) + amount


class RpcSystem(abc.ABC):
    """Base class wiring NIC delivery, scheduling policy, and cores."""

    #: Human-readable system name, overridden by subclasses.
    name = "abstract"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if n_cores <= 0:
            raise ValueError(f"need at least one core, got {n_cores}")
        self.sim = sim
        self.streams = streams
        self.constants = constants
        self.delivery = delivery or HwTerminatedDelivery(constants)
        self.cores: List[Core] = [
            Core(sim, i, self._request_completed, self._request_preempted)
            for i in range(n_cores)
        ]
        self.stats = SystemStats()
        self.finished_requests: List[Request] = []
        self._expected: Optional[int] = None
        #: Called with each completing request (application execution for
        #: systems without an in-band execution hook).
        self.completion_hooks: List = []
        #: Called with each dropped request (bounded-queue overflow).
        #: The cluster tier uses this to observe per-server terminations
        #: without owning the scheduler's internals.
        self.drop_hooks: List = []

    # ------------------------------------------------------------------
    # Load-generator interface
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Wire arrival at the NIC.  The latency clock starts here."""
        self.stats.offered += 1
        delay = self.delivery.delivery_ns(request)
        self.sim.schedule(delay, self._deliver, request)

    def expect(self, n_requests: int) -> None:
        """Stop the simulation once ``n_requests`` terminate."""
        if n_requests <= 0:
            raise ValueError(f"expected count must be positive, got {n_requests}")
        self._expected = n_requests

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _deliver(self, request: Request) -> None:
        """Request is now visible to the host; enqueue / dispatch it."""

    @abc.abstractmethod
    def _after_complete(self, core: Core, request: Request) -> None:
        """A core finished ``request``; give it (or others) more work."""

    def _after_preempt(self, core: Core, request: Request) -> None:
        """A quantum expired; requeue ``request`` and refill the core.

        Only preemptive systems override this.
        """
        raise NotImplementedError(f"{self.name} does not preempt")

    # ------------------------------------------------------------------
    # Core callbacks (template methods; not overridden)
    # ------------------------------------------------------------------
    def _request_completed(self, core: Core, request: Request) -> None:
        self.stats.completed += 1
        self.finished_requests.append(request)
        for hook in self.completion_hooks:
            hook(request)
        self._check_done()
        self._after_complete(core, request)

    def _request_preempted(self, core: Core, request: Request) -> None:
        self._after_preempt(core, request)

    def _drop(self, request: Request) -> None:
        """Drop a request (bounded-queue overflow)."""
        request.dropped = True
        self.stats.dropped += 1
        for hook in self.drop_hooks:
            hook(request)
        self._check_done()

    def _check_done(self) -> None:
        if (
            self._expected is not None
            and self.stats.completed + self.stats.dropped >= self._expected
        ):
            self.sim.stop()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _charge_scheduling(self, ns: float) -> None:
        """Record one scheduling operation of the given cost."""
        self.stats.scheduling_ops += 1
        self.stats.scheduling_ns += ns

    def idle_cores(self) -> List[Core]:
        """Cores with nothing running right now."""
        return [c for c in self.cores if not c.busy]

    def utilization(self, elapsed_ns: float) -> float:
        """Mean core utilization over ``elapsed_ns``."""
        if elapsed_ns <= 0 or not self.cores:
            return 0.0
        return sum(c.busy_ns for c in self.cores) / (elapsed_ns * len(self.cores))

    def shutdown(self) -> None:
        """Cancel periodic machinery (timers); default: nothing to do."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} cores={len(self.cores)} "
            f"done={self.stats.completed}/{self.stats.offered}>"
        )
