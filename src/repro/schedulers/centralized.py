"""Shinjuku: centralized c-FCFS with microsecond-scale preemption.

One core is a dedicated dispatcher (it processes no RPCs); the rest are
workers.  The dispatcher pulls from a single central queue and hands
requests to idle workers, one at a time -- so its per-dispatch cost caps
system throughput.  The paper quotes the published Shinjuku ceiling of
5 M requests/s (Sec. II-D), i.e. 200 ns per dispatch, the default here.

Workers run under a preemption quantum (5 us in Shinjuku): a request
exceeding its quantum is interrupted and re-queued at the central
queue's tail, which breaks head-of-line blocking behind long requests at
the cost of switch overhead and extra dispatcher work.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel
from repro.schedulers.base import RpcSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


class ShinjukuSystem(RpcSystem):
    """Centralized dispatcher + preemptive workers (Shinjuku model)."""

    name = "shinjuku"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        dispatch_ns: float = 200.0,
        quantum_ns: float = 5_000.0,
        switch_overhead_ns: float = 500.0,
    ) -> None:
        if n_cores < 2:
            raise ValueError("Shinjuku needs >= 2 cores (dispatcher + worker)")
        super().__init__(sim, streams, n_cores, delivery, constants)
        self._m_preemptions = self.metrics.counter("sched.preemptions")
        if dispatch_ns < 0 or switch_overhead_ns < 0:
            raise ValueError("overheads must be non-negative")
        if quantum_ns <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_ns}")
        self.dispatch_ns = float(dispatch_ns)
        self.quantum_ns = float(quantum_ns)
        self.switch_overhead_ns = float(switch_overhead_ns)
        #: Core 0 is the dedicated dispatcher; it never executes RPCs.
        self.workers = self.cores[1:]
        self.central: Deque[Request] = deque()
        self._dispatch_busy = False

    # ------------------------------------------------------------------
    def _deliver(self, request: Request) -> None:
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = len(self.central)
        self.central.append(request)
        self._pump()

    def _pump(self) -> None:
        """Dispatcher main loop: one hand-off in flight at a time."""
        if self._dispatch_busy or not self.central:
            return
        worker = self._idle_worker()
        if worker is None:
            return
        request = self.central.popleft()
        self._dispatch_busy = True
        self._charge_scheduling(self.dispatch_ns)
        self.sim.schedule(self.dispatch_ns, self._hand_off, worker, request)

    def _hand_off(self, worker: Core, request: Request) -> None:
        self._dispatch_busy = False
        if worker.busy:
            # The reservation was broken by a racing assignment; requeue
            # at the head so ordering is preserved.  Cannot happen with a
            # serialized dispatcher, but guard for subclass safety.
            self.central.appendleft(request)
        else:
            worker.assign(
                request,
                quantum_ns=self.quantum_ns,
                switch_overhead_ns=self.switch_overhead_ns,
            )
        self._pump()

    def _idle_worker(self) -> Optional[Core]:
        for worker in self.workers:
            if not worker.busy:
                return worker
        return None

    # ------------------------------------------------------------------
    def _after_complete(self, core: Core, request: Request) -> None:
        self._pump()

    def _after_preempt(self, core: Core, request: Request) -> None:
        # Preempted requests go to the tail: newly arrived short requests
        # get ahead of a long request's continuation (processor sharing
        # in the limit).
        self.central.append(request)
        self._m_preemptions.value += 1
        self._pump()

    # ------------------------------------------------------------------
    @property
    def dispatcher_capacity_rps(self) -> float:
        """Upper bound on dispatch throughput, requests/second."""
        if self.dispatch_ns == 0:
            return float("inf")
        return 1e9 / self.dispatch_ns
