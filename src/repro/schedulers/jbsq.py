"""NIC-driven hardware JBSQ(n) schedulers: RPCValet, Nebula, nanoPU.

Join-Bounded-Shortest-Queue keeps a central queue *in the NIC* and
pushes its head to the core with the fewest locally queued requests,
provided that core holds fewer than ``n``.  A hardware scheduler has no
dispatcher-core throughput cap; its cost is the NIC-to-core transfer
latency, which differs per system:

* **RPCValet** -- NI integrated into the coherence fabric; transfers go
  through shared caches (~1 coherence message).
* **Nebula** -- NIC-terminated stack, in-LLC buffers; slightly faster
  hand-off, JBSQ(2), *no preemption* -- hence its long-request
  head-of-line blocking in Figs. 10 and 14.
* **nanoPU** -- direct NIC-to-register-file path (~5 ns hand-off) plus a
  bounded-quantum preemption mechanism piggybacked on each core, which
  rescues it from JBSQ's long-request blindness.

``ideal_cfcfs`` (bound=1, zero overheads) degenerates to the textbook
M/G/k c-FCFS used by the Fig. 3 and Fig. 7 methodology studies; its
``startup_overhead_ns`` knob injects the per-request scheduling overhead
swept in Fig. 3.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel, HwTerminatedDelivery
from repro.schedulers.base import RpcSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


class JbsqSystem(RpcSystem):
    """Central NIC queue + JBSQ(n) push to bounded per-core queues.

    Gang admission: a request with ``core_demand == c > 1`` waits at the
    central queue's *head* until ``c`` cores are fully idle (FCFS with
    head-of-line gang blocking, the admission discipline of "Zero
    Queueing for Multi-Server Jobs"), then the primary plus ``c - 1``
    gang shadows dispatch to those cores together.  Gangs are intended
    for the non-preemptive configurations; under a preemption quantum a
    displaced shadow re-queues like any request, conserving work but
    relaxing the all-cores-simultaneous guarantee.
    """

    name = "jbsq"
    supports_gang = True

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        bound: int = 2,
        dispatch_ns: float = 20.0,
        quantum_ns: Optional[float] = None,
        switch_overhead_ns: float = 100.0,
        startup_overhead_ns: float = 0.0,
    ) -> None:
        super().__init__(sim, streams, n_cores, delivery, constants)
        self._m_preemptions = self.metrics.counter("sched.preemptions")
        if bound <= 0:
            raise ValueError(f"JBSQ bound must be positive, got {bound}")
        if dispatch_ns < 0 or startup_overhead_ns < 0:
            raise ValueError("overheads must be non-negative")
        if quantum_ns is not None and quantum_ns <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_ns}")
        self.bound = int(bound)
        self.dispatch_ns = float(dispatch_ns)
        self.quantum_ns = quantum_ns
        self.switch_overhead_ns = float(switch_overhead_ns)
        self.startup_overhead_ns = float(startup_overhead_ns)
        self.central: Deque[Request] = deque()
        #: Requests at / in flight to each core (JBSQ occupancy).
        self.occupancy: List[int] = [0] * n_cores
        self.local_wait: List[Deque[Request]] = [deque() for _ in range(n_cores)]
        #: Gang jobs whose core demand exceeds the machine (plain
        #: attribute, not a registry instrument: gang counters must not
        #: widen the pinned metrics schema of flat-request builds).
        self.gang_infeasible_drops = 0

    # ------------------------------------------------------------------
    def _deliver(self, request: Request) -> None:
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = len(self.central) + sum(self.occupancy)
        if request.core_demand > len(self.cores):
            # No schedule can ever admit this gang; drop it visibly
            # rather than wedging the queue head forever.
            self.gang_infeasible_drops += 1
            self._drop(request)
            return
        self.central.append(request)
        self._pump()

    def _pump(self) -> None:
        """Push central-queue heads to the least-occupied eligible cores."""
        while self.central:
            head = self.central[0]
            if head.core_demand > 1:
                if not self._admit_gang(head):
                    return
                continue
            target = self._pick_core()
            if target is None:
                return
            request = self.central.popleft()
            self.occupancy[target] += 1
            self._charge_scheduling(self.dispatch_ns)
            if self.dispatch_ns > 0:
                self.sim.schedule(self.dispatch_ns, self._arrive_at_core, target, request)
            else:
                self._arrive_at_core(target, request)

    def _admit_gang(self, request: Request) -> bool:
        """Dispatch the head gang iff ``core_demand`` cores are idle.

        Idle means zero JBSQ occupancy -- nothing running, queued or in
        flight -- so all gang members start together the moment they
        land.  Returns False (head stays, blocking the queue) when too
        few cores are free right now.
        """
        from repro.workload.jobs import make_gang_shadow

        demand = request.core_demand
        idle = [i for i, occ in enumerate(self.occupancy) if occ == 0]
        if len(idle) < demand:
            return False
        self.central.popleft()
        members = [request] + [
            make_gang_shadow(request, slot) for slot in range(1, demand)
        ]
        for target, member in zip(idle, members):
            self.occupancy[target] += 1
            self._charge_scheduling(self.dispatch_ns)
            if self.dispatch_ns > 0:
                self.sim.schedule(
                    self.dispatch_ns, self._arrive_at_core, target, member
                )
            else:
                self._arrive_at_core(target, member)
        return True

    def _pick_core(self) -> Optional[int]:
        """Shortest queue among cores under the bound; None if all full."""
        best = None
        best_occ = self.bound
        for core_id, occ in enumerate(self.occupancy):
            if occ < best_occ:
                best = core_id
                best_occ = occ
        return best

    def _arrive_at_core(self, core_id: int, request: Request) -> None:
        core = self.cores[core_id]
        if core.busy:
            self.local_wait[core_id].append(request)
        else:
            self._start(core, request)

    def _start(self, core: Core, request: Request) -> None:
        core.assign(
            request,
            startup_ns=self.startup_overhead_ns,
            quantum_ns=self.quantum_ns,
            switch_overhead_ns=self.switch_overhead_ns,
        )

    # ------------------------------------------------------------------
    def _after_complete(self, core: Core, request: Request) -> None:
        self.occupancy[core.core_id] -= 1
        waiting = self.local_wait[core.core_id]
        if waiting:
            self._start(core, waiting.popleft())
        self._pump()

    def _after_preempt(self, core: Core, request: Request) -> None:
        # Preempted work returns to the central queue's tail and competes
        # again for any core (nanoPU behaviour).
        self.occupancy[core.core_id] -= 1
        self.central.append(request)
        self._m_preemptions.value += 1
        waiting = self.local_wait[core.core_id]
        if waiting:
            self._start(core, waiting.popleft())
        self._pump()


# ----------------------------------------------------------------------
# Named configurations from the paper's methodology (Sec. VII-A)
# ----------------------------------------------------------------------
def rpcvalet(
    sim: Simulator,
    streams: RandomStreams,
    n_cores: int,
    constants: HwConstants = DEFAULT_CONSTANTS,
) -> JbsqSystem:
    """RPCValet: NI-driven single-request balancing through shared caches."""
    system = JbsqSystem(
        sim,
        streams,
        n_cores,
        delivery=HwTerminatedDelivery(constants),
        constants=constants,
        bound=1,
        dispatch_ns=constants.coherence_msg_ns,
        quantum_ns=None,
    )
    system.name = "rpcvalet"
    return system


def nebula(
    sim: Simulator,
    streams: RandomStreams,
    n_cores: int,
    constants: HwConstants = DEFAULT_CONSTANTS,
) -> JbsqSystem:
    """Nebula: hardware JBSQ(2), in-LLC buffers, no preemption."""
    system = JbsqSystem(
        sim,
        streams,
        n_cores,
        delivery=HwTerminatedDelivery(constants),
        constants=constants,
        bound=2,
        dispatch_ns=20.0,
        quantum_ns=None,
    )
    system.name = "nebula"
    return system


def nanopu(
    sim: Simulator,
    streams: RandomStreams,
    n_cores: int,
    constants: HwConstants = DEFAULT_CONSTANTS,
    quantum_ns: float = 1_000.0,
) -> JbsqSystem:
    """nanoPU: JBSQ(2) into core register files + bounded-quantum preemption."""
    system = JbsqSystem(
        sim,
        streams,
        n_cores,
        delivery=HwTerminatedDelivery(constants),
        constants=constants,
        bound=2,
        dispatch_ns=5.0,
        quantum_ns=quantum_ns,
        switch_overhead_ns=100.0,
    )
    system.name = "nanopu"
    return system


def ideal_cfcfs(
    sim: Simulator,
    streams: RandomStreams,
    n_cores: int,
    constants: HwConstants = DEFAULT_CONSTANTS,
    startup_overhead_ns: float = 0.0,
) -> JbsqSystem:
    """Textbook M/G/k c-FCFS (zero-cost central queue); the methodology
    substrate for the Fig. 3 overhead sweep and Fig. 7 threshold study."""
    system = JbsqSystem(
        sim,
        streams,
        n_cores,
        delivery=HwTerminatedDelivery(constants),
        constants=constants,
        bound=1,
        dispatch_ns=0.0,
        quantum_ns=None,
        startup_overhead_ns=startup_overhead_ns,
    )
    system.name = "cfcfs"
    return system
