"""RSS d-FCFS systems: the commodity-NIC baseline and IX.

Receive Side Scaling hashes each flow to a per-core queue (Fig. 4's
"d-FCFS" model).  Dispatch decisions are load-oblivious -- each core
polls only its private queue -- which scales perfectly but suffers
head-of-line blocking and imbalance under dispersive service times
(Sec. II-D).

:class:`IxSystem` layers IX's adaptive batching on top: the dataplane
processes its receive queue in batches run-to-completion, paying a small
per-batch kernel-bypass overhead amortized over the batch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel, RssSteering
from repro.schedulers.base import RpcSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


class RssSystem(RpcSystem):
    """Pure d-FCFS: one unbounded FIFO per core, RSS steering."""

    name = "rss"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        steering_policy: str = "connection",
        per_request_overhead_ns: float = 0.0,
    ) -> None:
        super().__init__(sim, streams, n_cores, delivery, constants)
        self.queues: List[Deque[Request]] = [deque() for _ in range(n_cores)]
        self.steering = RssSteering(
            n_cores, policy=steering_policy, rng=streams.get("rss")
        )
        self.per_request_overhead_ns = float(per_request_overhead_ns)

    # ------------------------------------------------------------------
    def _deliver(self, request: Request) -> None:
        idx = self.steering.pick_queue(request)
        queue = self.queues[idx]
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = len(queue) + (1 if self.cores[idx].busy else 0)
        core = self.cores[idx]
        if not core.busy and not queue:
            self._start(core, request)
        else:
            queue.append(request)

    def _start(self, core: Core, request: Request) -> None:
        overhead = self.per_request_overhead_ns
        if overhead:
            self._charge_scheduling(overhead)
        core.assign(request, startup_ns=overhead)

    def _after_complete(self, core: Core, request: Request) -> None:
        queue = self.queues[core.core_id]
        if queue:
            self._start(core, queue.popleft())

    # ------------------------------------------------------------------
    def queue_lengths(self) -> List[int]:
        """Occupancy snapshot (waiting only) of every receive queue."""
        return [len(q) for q in self.queues]


class IxSystem(RssSystem):
    """IX: kernel-bypass dataplane on RSS d-FCFS with adaptive batching.

    Each core drains its receive queue in batches run-to-completion.
    The batch entry cost (``batch_overhead_ns``) models the dataplane's
    poll + protocol work per batch; it is amortized over up to
    ``batch_size`` requests, so IX's per-request overhead shrinks under
    load -- exactly IX's adaptive-batching behaviour.  The policy is
    still d-FCFS, so it inherits RSS's imbalance and head-of-line
    blocking (the scalability bottleneck Table I lists for IX).
    """

    name = "ix"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        steering_policy: str = "connection",
        batch_overhead_ns: float = 300.0,
        batch_size: int = 16,
        per_request_overhead_ns: float = 0.0,
    ) -> None:
        super().__init__(
            sim,
            streams,
            n_cores,
            delivery,
            constants,
            steering_policy,
            per_request_overhead_ns=per_request_overhead_ns,
        )
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self.batch_overhead_ns = float(batch_overhead_ns)
        self.batch_size = int(batch_size)
        self._batch_left = [0] * n_cores

    def _start(self, core: Core, request: Request) -> None:
        idx = core.core_id
        if self._batch_left[idx] <= 0:
            # Entering a new batch: charge the dataplane poll cost and
            # claim up to batch_size requests for it.
            self._batch_left[idx] = min(
                self.batch_size, 1 + len(self.queues[idx])
            )
            self._charge_scheduling(self.batch_overhead_ns)
            startup = self.batch_overhead_ns
        else:
            startup = 0.0
        self._batch_left[idx] -= 1
        # Per-request dataplane stack work rides on top of the amortized
        # batch entry cost.
        core.assign(request, startup_ns=startup + self.per_request_overhead_ns)
