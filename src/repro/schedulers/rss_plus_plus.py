"""RSS++ (elastic RSS): load- and state-aware receive-side scaling.

Barbette et al. [RSS++, CoNEXT'19] -- referenced by the paper in
Sec. II-D ([7]) and integrated into the AC_rss_opt configuration of
case study 3 -- keeps RSS's per-core queues but periodically *rewrites
the indirection table*: every rebalance interval (20 us in the feature
the paper cites), the hottest flow groups of overloaded queues are
remapped to underloaded queues.

Compared to ZygOS (per-request stealing) this moves *future* traffic,
not queued requests: cheap and coherent, but it reacts at tens of
microseconds -- three orders of magnitude slower than Altocumulus's
nanosecond migration loop, which is exactly the contrast the paper
draws.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.nic import DeliveryModel
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.timer import PeriodicTimer
from repro.workload.request import Request


class RssPlusPlusSystem(RssSystem):
    """RSS with periodic indirection-table rebalancing."""

    name = "rsspp"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        rebalance_interval_ns: float = 20_000.0,
        moves_per_rebalance: int = 1,
    ) -> None:
        super().__init__(sim, streams, n_cores, delivery, constants,
                         steering_policy="connection")
        if rebalance_interval_ns <= 0:
            raise ValueError(
                f"rebalance interval must be positive, got {rebalance_interval_ns}"
            )
        if moves_per_rebalance <= 0:
            raise ValueError(
                f"moves per rebalance must be positive, got {moves_per_rebalance}"
            )
        self.rebalance_interval_ns = float(rebalance_interval_ns)
        self.moves_per_rebalance = int(moves_per_rebalance)
        #: Indirection overrides: connection -> queue (falls back to the
        #: hash when absent, like the real table's default entries).
        self._table: Dict[int, int] = {}
        #: Per-connection arrival counts in the current window.
        self._window_counts: Dict[int, int] = {}
        self.rebalances = 0
        self.moves = 0
        self._timer = PeriodicTimer(sim, self.rebalance_interval_ns,
                                    self._rebalance)

    # ------------------------------------------------------------------
    def _queue_of(self, connection: int) -> int:
        if connection in self._table:
            return self._table[connection]
        return self.steering.pool.hash_to_queue(connection, len(self.cores))

    def _deliver(self, request: Request) -> None:
        self._window_counts[request.connection] = (
            self._window_counts.get(request.connection, 0) + 1
        )
        idx = self._queue_of(request.connection)
        queue = self.queues[idx]
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = len(queue) + (
            1 if self.cores[idx].busy else 0
        )
        core = self.cores[idx]
        if not core.busy and not queue:
            self._start(core, request)
        else:
            queue.append(request)

    # ------------------------------------------------------------------
    def _rebalance(self) -> None:
        """Move the hottest flows of the longest queue to the shortest.

        This is the table rewrite only: requests already queued stay
        where they are (RSS++ cannot touch queued packets).
        """
        self.rebalances += 1
        occupancy = [
            len(q) + (1 if self.cores[i].busy else 0)
            for i, q in enumerate(self.queues)
        ]
        longest = max(range(len(occupancy)), key=occupancy.__getitem__)
        shortest = min(range(len(occupancy)), key=occupancy.__getitem__)
        if occupancy[longest] - occupancy[shortest] < 2:
            self._window_counts.clear()
            return
        hot_flows = sorted(
            (
                conn for conn in self._window_counts
                if self._queue_of(conn) == longest
            ),
            key=lambda conn: -self._window_counts[conn],
        )
        for conn in hot_flows[: self.moves_per_rebalance]:
            self._table[conn] = shortest
            self.moves += 1
        self._window_counts.clear()

    def shutdown(self) -> None:
        self._timer.stop()
