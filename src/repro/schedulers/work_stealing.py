"""ZygOS: d-FCFS with software work stealing.

ZygOS keeps RSS's per-core queues but lets idle cores steal pending
requests from busy ones.  The paper's critique (Sec. II-D) pins two
costs on this design, both modelled here:

* **Load-blind victim selection** -- the thief probes *random* queues;
  empty probes still cost a remote cache miss.  At low load most probes
  miss; at high load ~60% of requests end up moved.
* **Steal cost** -- finding + fetching work takes 2-3 cache misses,
  200-400 ns, charged to the thief core (it is busy probing/fetching,
  not processing).

Stealing is still SLO-unaware: the thief takes the head of whatever
queue it lands on, whether or not that request was in danger.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.hw.coherence import CoherenceModel
from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.cores import Core
from repro.hw.nic import DeliveryModel
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


class ZygosSystem(RssSystem):
    """d-FCFS + work stealing (ZygOS model)."""

    name = "zygos"

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        n_cores: int,
        delivery: Optional[DeliveryModel] = None,
        constants: HwConstants = DEFAULT_CONSTANTS,
        steering_policy: str = "connection",
        probe_ns: float = 100.0,
        max_probes: int = 3,
        per_request_overhead_ns: float = 0.0,
    ) -> None:
        super().__init__(
            sim,
            streams,
            n_cores,
            delivery,
            constants,
            steering_policy,
            per_request_overhead_ns=per_request_overhead_ns,
        )
        if max_probes <= 0:
            raise ValueError(f"max_probes must be positive, got {max_probes}")
        self.coherence = CoherenceModel(constants)
        self.probe_ns = float(probe_ns)
        self.max_probes = int(max_probes)
        self._steal_rng = streams.get("steal")
        #: Cores currently mid-probe (idle but committed to a probe event).
        self._probing: Set[int] = set()
        self.steal_attempts = 0
        self.steal_hits = 0

    # ------------------------------------------------------------------
    def _deliver(self, request: Request) -> None:
        idx = self.steering.pick_queue(request)
        queue = self.queues[idx]
        request.enqueued = self.sim.now
        request.queue_len_at_arrival = len(queue) + (1 if self.cores[idx].busy else 0)
        core = self.cores[idx]
        if not core.busy and core.core_id not in self._probing and not queue:
            self._start(core, request)
            return
        queue.append(request)
        # Wake one genuinely idle core to come steal this queue's backlog.
        thief = self._find_idle_thief()
        if thief is not None:
            self._begin_probe(thief, probes_left=self.max_probes)

    def _after_complete(self, core: Core, request: Request) -> None:
        queue = self.queues[core.core_id]
        if queue:
            self._start(core, queue.popleft())
        else:
            self._begin_probe(core, probes_left=self.max_probes)

    # ------------------------------------------------------------------
    # Stealing machinery
    # ------------------------------------------------------------------
    def _find_idle_thief(self) -> Optional[Core]:
        for core in self.cores:
            if not core.busy and core.core_id not in self._probing:
                if not self.queues[core.core_id]:
                    return core
        return None

    def _begin_probe(self, thief: Core, probes_left: int) -> None:
        """Start one random-victim probe; each probe costs a cache miss."""
        if thief.busy or thief.core_id in self._probing:
            return
        if not any(self.queues[i] for i in range(len(self.cores)) if i != thief.core_id):
            return  # nothing to steal anywhere; stay idle until woken
        self._probing.add(thief.core_id)
        self.steal_attempts += 1
        victim = int(self._steal_rng.integers(0, len(self.cores)))
        if victim == thief.core_id:
            victim = (victim + 1) % len(self.cores)
        self.sim.schedule(self.probe_ns, self._finish_probe, thief, victim, probes_left)

    def _finish_probe(self, thief: Core, victim: int, probes_left: int) -> None:
        self._probing.discard(thief.core_id)
        # Local work may have arrived while probing; prefer it.
        own = self.queues[thief.core_id]
        if thief.busy:
            return
        if own:
            self._start(thief, own.popleft())
            return
        vqueue = self.queues[victim]
        if vqueue:
            request = vqueue.popleft()
            request.steals += 1
            self.steal_hits += 1
            cost = self.coherence.steal_ns(self._steal_rng)
            self._charge_scheduling(cost)
            # A stolen request still pays the dataplane's per-request
            # stack work on the thief core.
            thief.assign(request, startup_ns=cost + self.per_request_overhead_ns)
            return
        if probes_left > 1:
            self._begin_probe(thief, probes_left - 1)

    # ------------------------------------------------------------------
    @property
    def steal_hit_rate(self) -> float:
        """Fraction of probes that found work."""
        if self.steal_attempts == 0:
            return 0.0
        return self.steal_hits / self.steal_attempts
