"""Discrete-event simulation kernel.

This package provides the substrate every other subsystem runs on: a
nanosecond-resolution event heap (:class:`~repro.sim.engine.Simulator`),
cancellable events, periodic timers, and deterministic named random
streams.  The paper's methodology (Sec. VII-B) is a Pin/ZSim-based
microarchitectural simulator; this kernel is the Python substitute that
reproduces the queueing behaviour all evaluated metrics derive from.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RandomStreams
from repro.sim.timer import PeriodicTimer
from repro.sim.units import NS, US, MS, SEC, GHZ, cycles_to_ns, ns_to_cycles

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "RandomStreams",
    "PeriodicTimer",
    "NS",
    "US",
    "MS",
    "SEC",
    "GHZ",
    "cycles_to_ns",
    "ns_to_cycles",
]
