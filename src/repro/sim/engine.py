"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary-heap event queue and a monotonically
advancing clock.  Everything in the reproduction -- NIC arrivals, core
completions, NoC message deliveries, the Altocumulus runtime's periodic
ticks -- is an :class:`Event` scheduled on one shared simulator, so causal
ordering across subsystems falls out of the single clock.

Design notes
------------
* Events at equal timestamps fire in scheduling (FIFO) order; a sequence
  number breaks heap ties deterministically, which keeps whole simulations
  reproducible for a fixed seed.
* Cancellation is lazy: a cancelled event stays in the heap but is skipped
  when popped.  This keeps :meth:`Simulator.cancel` O(1), which matters
  because preemptive schedulers cancel completion events frequently.
* Callbacks run synchronously inside :meth:`Simulator.step`.  A callback
  may schedule further events (including at the current time) but must not
  schedule into the past.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds them only to cancel.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.1f}ns #{self.seq} {name} {state}>"


class Simulator:
    """A nanosecond-resolution discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(10.0, hits.append, "a")
    >>> _ = sim.schedule(5.0, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now = {self.now}); time is monotonic"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice, or after it has fired,
        is a harmless no-op."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        still fires.

        Clock-advance contract: the clock is clamped forward to ``until``
        only when every event at or before ``until`` actually ran -- the
        heap drained, or the next pending event lies beyond ``until`` --
        so periodic processes observe a consistent end time.  When the
        run is cut short, by :meth:`stop` or by the ``max_events``
        budget, the clock stays at the last executed event: pending work
        at or before ``until`` has *not* happened, and pretending time
        passed it would let callers mistake a truncated run for a
        completed one.  ``max_events`` takes precedence when the budget
        is exhausted exactly as the heap drains.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        limit_hit = False
        try:
            while self._heap and not self._stopped:
                if max_events is not None and executed >= max_events:
                    limit_hit = True
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            else:
                # Loop fell through: drained or stopped.  A drained heap
                # still counts as limit-exhausted when the last executed
                # event spent the budget.
                limit_hit = (
                    max_events is not None and executed >= max_events
                )
            if until is not None and not self._stopped and not limit_hit:
                self.now = max(self.now, until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.1f}ns pending={self.pending}>"
