"""The discrete-event simulation engine.

A :class:`Simulator` owns a binary-heap event queue and a monotonically
advancing clock.  Everything in the reproduction -- NIC arrivals, core
completions, NoC message deliveries, the Altocumulus runtime's periodic
ticks -- is an :class:`Event` scheduled on one shared simulator, so causal
ordering across subsystems falls out of the single clock.

Design notes
------------
* Events at equal timestamps fire in scheduling (FIFO) order; a sequence
  number breaks heap ties deterministically, which keeps whole simulations
  reproducible for a fixed seed.
* Cancellation is lazy: a cancelled event stays in the heap but is skipped
  when popped.  This keeps :meth:`Simulator.cancel` O(1), which matters
  because preemptive schedulers cancel completion events frequently.  When
  dead entries come to dominate the heap the simulator compacts it in
  place (see :meth:`Simulator.cancel`), so pathological cancel-heavy
  workloads cannot grow the heap without bound.
* Callbacks run synchronously inside :meth:`Simulator.step`.  A callback
  may schedule further events (including at the current time) but must not
  schedule into the past.

Fast-path engineering (all behavior-preserving)
-----------------------------------------------
The event kernel is the hottest code in the repository -- every simulated
nanosecond flows through it -- so it trades a little uniformity for
throughput:

* **C-level heap ordering.**  Heap entries are ``(time, seq, event)``
  tuples, not the :class:`Event` objects themselves, so ``heapq``'s C
  implementation compares floats/ints directly and ``Event.__lt__`` is
  never invoked on the hot path (it is retained for API compatibility).
* **Event free list.**  After a callback returns, its Event object is
  recycled onto a bounded free list *iff* no caller kept a handle to it
  (checked via the CPython reference count, which is exact and
  deterministic).  Handles that escape -- anything a caller might still
  :meth:`Simulator.cancel` -- are never recycled, which preserves the
  documented "cancel after fire is a no-op" contract verbatim.
* **Timer reuse.**  Periodic machinery (manager runtime ticks, preemption
  quanta) reschedules the *same* Event object via
  :meth:`Simulator.schedule_timer` instead of allocating one per period.
* **Monomorphic run loop.**  :meth:`Simulator.run` binds the heap, the
  ``heapq`` primitives and the free list to locals and inlines the pop
  path rather than calling :meth:`step` per event.
"""

from __future__ import annotations

import sys
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

#: Exact reference counting is a CPython detail; on other interpreters the
#: free list simply never recycles (correct, just slower).
_getrefcount = getattr(sys, "getrefcount", None)

#: Upper bound on the event free list.  Steady-state simulations recycle
#: through a handful of entries; the cap only matters after bursts.
_FREE_LIST_MAX = 1024

#: Compaction policy: rebuild the heap once at least this many cancelled
#: entries exist *and* they outnumber the live ones.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised on invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds them only to cancel.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.cancelled:
            state = "cancelled"
        elif self.fired:
            state = "fired"
        else:
            state = "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.1f}ns #{self.seq} {name} {state}>"


#: The heap entry layout: (time, seq, event).
_Entry = Tuple[float, int, Event]


class Simulator:
    """A nanosecond-resolution discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(10.0, hits.append, "a")
    >>> _ = sim.schedule(5.0, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: Recycled Event objects with no outstanding handles.
        self._free: List[Event] = []
        #: Cancelled events still sitting in the heap (exact count).
        self._dead: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now = {self.now}); time is monotonic"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule_timer(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        event: Optional[Event] = None,
    ) -> Event:
        """Schedule a periodic-tick callback, reusing ``event`` if possible.

        The dedicated path for self-rescheduling machinery (the manager
        runtime's ``Period`` tick, preemption quanta): pass the Event
        returned by the previous firing and, provided it has already
        fired, the same object is re-armed and re-pushed instead of
        allocating a new one.

        The returned Event must be owned exclusively by the calling
        timer: handing it to other code that might cancel a stale
        incarnation is undefined.  An ``event`` that never fired (e.g. a
        stopped timer's cancelled entry, which may still sit in the
        heap) is ignored and a fresh Event allocated.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        if event is not None and event.fired and not event.cancelled:
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.fired = False
        else:
            event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice, or after it has fired,
        is a harmless no-op.

        O(1): the event is only flagged; the heap entry is reaped when it
        reaches the top -- or, once dead entries are numerous *and*
        outnumber live ones, by an immediate in-place compaction, keeping
        cancel-heavy simulations (preemptive schedulers) from accumulating
        unbounded garbage.
        """
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        dead = self._dead + 1
        self._dead = dead
        if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: :meth:`run` binds the heap list to a local, so
        compaction (triggered by ``cancel`` inside a callback) must mutate
        the same list object rather than rebind ``self._heap``.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapify(heap)
        self._dead = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if event.cancelled:
                self._dead -= 1
                continue
            self.now = event.time
            self._events_processed += 1
            event.fired = True
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        still fires.

        Clock-advance contract: the clock is clamped forward to ``until``
        only when every event at or before ``until`` actually ran -- the
        heap drained, or the next pending event lies beyond ``until`` --
        so periodic processes observe a consistent end time.  When the
        run is cut short, by :meth:`stop` or by the ``max_events``
        budget, the clock stays at the last executed event: pending work
        at or before ``until`` has *not* happened, and pretending time
        passed it would let callers mistake a truncated run for a
        completed one.  ``max_events`` takes precedence when the budget
        is exhausted exactly as the heap drains.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        limit_hit = False
        # Local bindings for the hot loop.
        heap = self._heap
        free = self._free
        pop = heappop
        getref = _getrefcount
        horizon = until if until is not None else float("inf")
        budget = max_events if max_events is not None else -1
        try:
            while heap:
                if self._stopped:
                    break
                if executed == budget:
                    limit_hit = True
                    break
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    self._dead -= 1
                    entry = None
                    if (
                        getref is not None
                        and getref(event) == 2
                        and len(free) < _FREE_LIST_MAX
                    ):
                        event.fn = None
                        event.args = None
                        free.append(event)
                    continue
                time = entry[0]
                if time > horizon:
                    break
                pop(heap)
                entry = None  # drop the tuple's reference for the recycle check
                self.now = time
                self._events_processed += 1
                event.fired = True
                event.fn(*event.args)
                executed += 1
                # Recycle iff nothing outside this frame holds the event
                # (2 == the `event` local + getrefcount's argument), i.e.
                # no one can ever cancel this incarnation.
                if (
                    getref is not None
                    and getref(event) == 2
                    and len(free) < _FREE_LIST_MAX
                ):
                    event.fn = None
                    event.args = None
                    free.append(event)
            else:
                # Loop fell through: drained.  A drained heap still
                # counts as limit-exhausted when the last executed event
                # spent the budget.
                limit_hit = executed == budget >= 0
            if until is not None and not self._stopped and not limit_hit:
                if self.now < until:
                    self.now = until
        finally:
            self._running = False

    def run_until_horizon(self, horizon: float) -> None:
        """Run every event *strictly before* ``horizon``, never clamping.

        The window primitive for conservative parallel-in-time execution
        (:mod:`repro.sim.sharded`): a shard granted lookahead ``H`` may
        execute all events with ``time < k*H`` without having seen
        messages that arrive at or after ``k*H``.  Differences from
        :meth:`run`:

        * the bound is **exclusive** -- an event at exactly ``horizon``
          belongs to the next window and stays queued;
        * the clock is **never clamped** to ``horizon`` -- it stays at
          the last executed event, so a later window (or the serial-run
          drain clamp applied by the coordinator) observes the same
          end-of-run clock the serial engine would;
        * calls compose: the driver invokes this once per window on the
          same simulator, so ``_running`` / ``_stopped`` bookkeeping is
          left to the caller's :meth:`run`-equivalent (a ``stop`` posted
          by a callback breaks out and stays latched for the driver).
        """
        if self._stopped:
            return
        heap = self._heap
        free = self._free
        pop = heappop
        getref = _getrefcount
        while heap:
            if self._stopped:
                break
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                pop(heap)
                self._dead -= 1
                entry = None
                if (
                    getref is not None
                    and getref(event) == 2
                    and len(free) < _FREE_LIST_MAX
                ):
                    event.fn = None
                    event.args = None
                    free.append(event)
                continue
            time = entry[0]
            if time >= horizon:
                break
            pop(heap)
            entry = None  # drop the tuple's reference for the recycle check
            self.now = time
            self._events_processed += 1
            event.fired = True
            event.fn(*event.args)
            if (
                getref is not None
                and getref(event) == 2
                and len(free) < _FREE_LIST_MAX
            ):
                event.fn = None
                event.args = None
                free.append(event)

    def advance_clock(self, time: float) -> None:
        """Advance the clock to ``time`` without executing anything.

        Used by the sharded coordinator to interleave replayed shard
        records with its own heap: the clock must sit at each record's
        timestamp while it is applied, exactly where the serial engine's
        clock would have been.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot advance clock to {time} (now = {self.now}); "
                "time is monotonic"
            )
        self.now = time

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if none remain.

        Reaps lazily-cancelled entries off the top while looking, so the
        answer reflects work that will actually fire.
        """
        heap = self._heap
        free = self._free
        pop = heappop
        getref = _getrefcount
        while heap:
            entry = heap[0]
            event = entry[2]
            if not event.cancelled:
                return entry[0]
            pop(heap)
            self._dead -= 1
            entry = None
            if (
                getref is not None
                and getref(event) == 2
                and len(free) < _FREE_LIST_MAX
            ):
                event.fn = None
                event.args = None
                free.append(event)
        return None

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been requested for the active run."""
        return self._stopped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still in the heap, *including* lazily-cancelled
        entries that have not been reaped yet.

        Cancellation only flags an event (see :meth:`cancel`), so this
        gauges heap memory, not future work.  Use :attr:`pending_active`
        for the number of events that will actually fire.
        """
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._heap) - self._dead

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far."""
        return self._events_processed

    def register_metrics(self, registry, prefix: str = "sim") -> None:
        """Expose clock and event-pool state as bound telemetry gauges.

        The instruments read live attributes at snapshot time; nothing
        is added to the event loop itself.
        """
        registry.gauge(f"{prefix}.now_ns", fn=lambda: self.now)
        registry.counter(
            f"{prefix}.events_processed", fn=lambda: self._events_processed
        )
        registry.gauge(f"{prefix}.heap_pending", fn=lambda: len(self._heap))
        registry.gauge(
            f"{prefix}.heap_pending_active",
            fn=lambda: len(self._heap) - self._dead,
        )
        registry.gauge(
            f"{prefix}.event_free_list", fn=lambda: len(self._free)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.1f}ns pending={self.pending}>"
