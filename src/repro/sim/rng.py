"""Deterministic named random streams.

Every stochastic component (arrival process, service-time sampler, RSS
hash, work-stealing victim selection, ...) draws from its *own* named
stream derived from one master seed.  This gives two properties the
evaluation harness depends on:

* **Reproducibility** -- the same master seed always produces the same
  simulation, regardless of dictionary ordering or module import order.
* **Variance isolation** -- changing one component (e.g. swapping the
  scheduler) does not perturb the random draws of the others, so paired
  comparisons between systems see identical workloads.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, deterministically seeded generators.

    >>> streams = RandomStreams(master_seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("service")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed}")
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _seed_for(self, name: str) -> int:
        """Derive a 64-bit child seed from the master seed and stream name.

        A cryptographic hash (rather than Python's ``hash``) keeps the
        derivation stable across interpreter runs and versions.
        """
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.Generator(
                np.random.PCG64(self._seed_for(name))
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child :class:`RandomStreams` namespaced under ``name``.

        Useful when a subsystem (e.g. one manager group) needs several
        internal streams of its own.
        """
        return RandomStreams(self._seed_for(name) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RandomStreams seed={self.master_seed} "
            f"streams={sorted(self._streams)}>"
        )
