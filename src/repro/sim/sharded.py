"""Conservative parallel-in-time execution: shards, windows, barriers.

The serial engine executes one event heap on one core.  This module
splits a simulation into a *coordinator* (the main process: workload
generation, global steering, fabric ingress) plus N *shards* (rack
subtrees), synchronized with the classic conservative-PDES argument: a
message injected into the fabric at time ``t`` cannot affect a remote
shard before ``t + L``, where ``L`` is the fabric's guaranteed minimum
transit time (:meth:`repro.cluster.switch.SwitchCore.min_transit_ns`).
With window boundaries aligned to multiples of the lookahead ``H``,
every cross-shard message generated inside window ``[kH, (k+1)H)`` is
delivered at or after ``(k+1)H`` -- so all shards may execute window
``k`` concurrently and exchange message batches only at the barrier.

Bit-identity, not just statistical equivalence: the shard-side subtrees
receive exactly the deliveries the serial run would have produced, at
exactly the serial timestamps, driven by the same per-rack RNG streams
-- so their event sequences are the serial ones verbatim.  The
coordinator replays shard terminal records interleaved with its own
events in timestamp order, landing every global side effect (completion
hooks, retry clients, stop conditions) on the same clock the serial
engine would have shown.

This module is topology-agnostic: it knows windows, shard transports
and the barrier loop.  What a "shard" simulates and how the coordinator
replays its records is supplied by a *coordinator protocol* object
(:class:`repro.datacenter.sharded.ShardedDatacenter`) and a *shard
model* duck (``deliver`` / ``run_until`` / ``drain_records`` /
``next_time`` / ``harvest``).
"""

from __future__ import annotations

import multiprocessing
import time as _time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.sim.engine import SimulationError, Simulator

#: A cross-shard delivery: (delivery time, shard-local rack index,
#: payload).  The payload is a shared Request object (in-process shards)
#: or a packed field tuple (process shards).
Delivery = Tuple[float, int, Any]

#: A shard terminal record: (time, kind, shard-local rack index, ref,
#: sync).  ``ref`` is the Request itself in-process, its ``req_id``
#: cross-process; ``sync`` carries the packed outcome fields
#: cross-process and is None in-process.
Record = Tuple[float, str, int, Any, Any]


class ShardHandle:
    """Transport-side view of one shard: ship a window, collect results,
    harvest telemetry at the end of the run."""

    def run_window(self, horizon: float, deliveries: Sequence[Delivery]) -> None:
        """Inject ``deliveries`` and advance the shard to ``horizon``
        (exclusive).  May return before the work completes."""
        raise NotImplementedError

    def collect(self) -> Tuple[List[Record], Optional[float]]:
        """Barrier: block until the shipped window finishes; return its
        terminal records (time-ordered) and the shard's next event time."""
        raise NotImplementedError

    def harvest(self) -> List[Tuple[dict, List[float]]]:
        """Shut the shard's racks down; return one (registry snapshot,
        per-core busy_ns list) pair per shard-local rack."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InProcessShard(ShardHandle):
    """A shard executed synchronously in the coordinator process.

    Zero transport cost and shared Request objects: this is both the
    ``shards=1`` honest-overhead configuration and the mode the
    equivalence tests use to isolate window semantics from pickling.
    """

    def __init__(self, model: Any) -> None:
        self.model = model
        self._pending: Optional[Tuple[List[Record], Optional[float]]] = None

    def run_window(self, horizon: float, deliveries: Sequence[Delivery]) -> None:
        model = self.model
        model.deliver(deliveries)
        model.run_until(horizon)
        self._pending = (model.drain_records(), model.next_time())

    def collect(self) -> Tuple[List[Record], Optional[float]]:
        pending = self._pending
        assert pending is not None, "collect() without run_window()"
        self._pending = None
        return pending

    def harvest(self) -> List[Tuple[dict, List[float]]]:
        return self.model.harvest()

    def close(self) -> None:
        pass


def _shard_worker_main(conn, factory: Callable[..., Any], args: tuple) -> None:
    """Worker-process entry point: build the shard model, then serve
    ``run`` / ``harvest`` requests over the pipe until harvested."""
    model = factory(*args)
    while True:
        msg = conn.recv()
        op = msg[0]
        if op == "run":
            _, horizon, deliveries = msg
            model.deliver(deliveries)
            model.run_until(horizon)
            conn.send(("done", model.drain_records(), model.next_time()))
        elif op == "harvest":
            conn.send(("harvested", model.harvest()))
            conn.close()
            return
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown shard opcode {op!r}")


def _mp_context():
    """Fork when the platform has it (cheap, inherits imports), spawn
    otherwise.  Either way the factory and its args cross the boundary
    as picklable module-level data."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class ProcessShard(ShardHandle):
    """A shard executed in a dedicated worker process over a pipe.

    ``factory`` must be a module-level callable (it crosses the process
    boundary); it is invoked *in the worker* to build the shard model,
    so simulator state never pickles -- only deliveries and terminal
    records do.
    """

    def __init__(self, factory: Callable[..., Any], args: tuple) -> None:
        ctx = _mp_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main, args=(child, factory, args), daemon=True
        )
        self._proc.start()
        child.close()

    def run_window(self, horizon: float, deliveries: Sequence[Delivery]) -> None:
        self._conn.send(("run", horizon, list(deliveries)))

    def collect(self) -> Tuple[List[Record], Optional[float]]:
        msg = self._conn.recv()
        assert msg[0] == "done", msg
        return msg[1], msg[2]

    def harvest(self) -> List[Tuple[dict, List[float]]]:
        self._conn.send(("harvest",))
        msg = self._conn.recv()
        assert msg[0] == "harvested", msg
        return msg[1]

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join()


class ShardedSimulator(Simulator):
    """A Simulator whose :meth:`run` is delegated to a window driver.

    Drop-in for the serial engine everywhere (``run_workload``, metric
    registration, scheduling): until :meth:`bind_driver` is called it
    *is* the serial engine.  Once bound, ``run`` hands control to the
    conservative window loop, which interleaves this simulator's own
    events with shard execution.
    """

    def __init__(self) -> None:
        super().__init__()
        self._driver: Optional["WindowDriver"] = None

    def bind_driver(self, driver: "WindowDriver") -> None:
        self._driver = driver

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        if self._driver is None:
            super().run(until=until, max_events=max_events)
            return
        if max_events is not None:
            raise SimulationError("sharded runs do not support max_events")
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            self._driver.run(until)
        finally:
            self._running = False


class WindowDriver:
    """The conservative window loop.

    The coordinator protocol object supplies the topology-specific
    pieces; per window the driver runs the strict alternation

    1. ``take_batches()`` -- per-shard delivery batches built at the end
       of the previous window (all due inside this one);
    2. ship each batch with ``run_window(horizon)`` (shards execute the
       window concurrently in process mode);
    3. barrier-``collect()`` terminal records and next-event times,
       charging the wait to ``shard.barrier_stall_ns``;
    4. ``replay(horizon, records)`` -- the coordinator interleaves the
       records with its own heap in timestamp order (this is where
       completion hooks, retry clients and ``expect`` stops fire);
    5. unless stopped, ``end_window(horizon)`` -- evaluate buffered
       fabric messages into next-window batches.

    Idle gaps are skipped: the next window is the one containing the
    earliest pending work (coordinator heap, shard heaps, or built
    batches), so lightly loaded runs don't pay a barrier per empty
    window.  Windows stay aligned to multiples of ``window_ns``, which
    is what makes the lookahead argument airtight under skipping.
    """

    def __init__(self, sim: Simulator, coordinator: Any) -> None:
        window_ns = float(coordinator.window_ns)
        if window_ns <= 0:
            raise ValueError(
                f"conservative lookahead must be positive, got {window_ns} "
                "(a zero-latency fabric admits no parallel window)"
            )
        self.sim = sim
        self.coordinator = coordinator
        self.window_ns = window_ns
        registry = coordinator.metrics
        self._m_windows = registry.counter("shard.windows")
        self._m_out = registry.counter("shard.messages_out")
        self._m_in = registry.counter("shard.messages_in")
        #: Wall-clock ns the coordinator spent blocked at barriers; the
        #: overhead instrument the bench gate reads to explain any gap
        #: to linear scaling.
        self._m_stall = registry.counter("shard.barrier_stall_ns")

    def run(self, until: Optional[float]) -> None:
        sim = self.sim
        coordinator = self.coordinator
        window = self.window_ns
        shards: Sequence[ShardHandle] = coordinator.shards
        next_times: List[Optional[float]] = [None] * len(shards)
        bound = float("inf") if until is None else until
        stopped = False
        while True:
            pending = [sim.peek_time(), coordinator.next_delivery_time()]
            pending.extend(next_times)
            live = [t for t in pending if t is not None]
            if not live:
                break  # fully drained everywhere
            tmin = min(live)
            if tmin > bound:
                break
            horizon = (tmin // window + 1.0) * window
            while horizon <= tmin:  # float-floor paranoia at huge clocks
                horizon += window
            batches = coordinator.take_batches()
            for shard, batch in zip(shards, batches):
                self._m_out.value += len(batch)
                shard.run_window(horizon, batch)
            stall_start = _time.perf_counter()
            collected = [shard.collect() for shard in shards]
            self._m_stall.value += int(
                (_time.perf_counter() - stall_start) * 1e9
            )
            next_times = [next_time for _, next_time in collected]
            records = [shard_records for shard_records, _ in collected]
            self._m_in.value += sum(len(r) for r in records)
            self._m_windows.value += 1
            coordinator.replay(horizon, records)
            if sim.stopped:
                stopped = True
                break
            coordinator.end_window(horizon)
        coordinator.finish()
        # Same drain-clamp contract as Simulator.run: only a run that
        # executed everything at or before `until` observes it as the
        # end time.
        if until is not None and not stopped and sim.now < until:
            sim.now = until
