"""Periodic timers built on the event heap.

The Altocumulus software runtime executes every ``Period`` nanoseconds
(Algorithm 1, line 1); baseline schedulers use timers for preemption
quanta.  :class:`PeriodicTimer` wraps the schedule/reschedule dance and
supports clean cancellation mid-simulation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class PeriodicTimer:
    """Invoke a callback every ``period`` nanoseconds until stopped.

    The callback runs first at ``start_at`` (default: one period from
    creation time) and then every ``period`` thereafter.  The period can
    be changed on the fly with :meth:`set_period`; the new period takes
    effect after the next firing.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start_at: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.fn = fn
        self.args = args
        self.fires = 0
        self._stopped = False
        first = start_at if start_at is not None else sim.now + period
        self._event: Optional[Event] = sim.schedule_at(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fires += 1
        self.fn(*self.args)
        if not self._stopped:
            # The just-fired event is exclusively ours: re-arm it via the
            # engine's timer-reuse path instead of allocating a new one.
            self._event = self.sim.schedule_timer(
                self.period, self._fire, event=self._event
            )

    def set_period(self, period: float) -> None:
        """Change the firing interval (effective after the next firing)."""
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self.period = period

    def stop(self) -> None:
        """Cancel the timer; pending firings are suppressed."""
        self._stopped = True
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    @property
    def active(self) -> bool:
        """True while the timer will keep firing."""
        return not self._stopped
