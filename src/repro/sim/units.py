"""Time and frequency units used throughout the simulator.

All simulation timestamps are expressed in **nanoseconds** as floats.
These constants make call sites self-documenting: ``sim.schedule(5 * US, fn)``
reads better than ``sim.schedule(5000.0, fn)``.
"""

#: One nanosecond -- the base unit of simulated time.
NS = 1.0

#: One microsecond in nanoseconds.
US = 1_000.0

#: One millisecond in nanoseconds.
MS = 1_000_000.0

#: One second in nanoseconds.
SEC = 1_000_000_000.0

#: One gigahertz expressed as cycles per nanosecond.
GHZ = 1.0


def cycles_to_ns(cycles: float, freq_ghz: float = 2.0) -> float:
    """Convert CPU cycles to nanoseconds at the given core frequency.

    The paper assumes 2 GHz cores for all cycle-count arguments
    (e.g. the 70-cycle coherence message in Sec. VII-A and the ~100-cycle
    ``rdmsr``/``wrmsr`` syscalls in Sec. VI).
    """
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return cycles / freq_ghz


def ns_to_cycles(ns: float, freq_ghz: float = 2.0) -> float:
    """Convert nanoseconds to CPU cycles at the given core frequency."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return ns * freq_ghz
