"""RPC stack processing models (Fig. 2's layer decomposition).

The paper distinguishes RPC *scheduling* (this repository's core
subject) from RPC *stack processing*: transport protocol work, RPC
header parsing, function-id dispatch and payload (de)serialization
(Sec. II-B).  This package models the processing side compositionally:

* :mod:`repro.stack.transport` -- transport-layer on-CPU cost:
  kernel TCP/IP, kernel-bypass UDP (DPDK/eRPC style), and
  hardware-terminated stacks (nanoPU/Nebula style).
* :mod:`repro.stack.serialization` -- message schemas and
  (de)serialization cost models: protobuf-like per-field encoding,
  flat memcpy-style, and zero-copy (Zerializer-style).
* :mod:`repro.stack.rpc_layer` -- the RPC layer itself: header parse,
  dispatch, payload handling.
* :mod:`repro.stack.profiles` -- named end-to-end compositions
  (``tcpip``, ``erpc``, ``nanorpc``) whose 300 B request costs
  reproduce the Fig. 1 processing bars.

The models produce *on-CPU nanoseconds per message*; the Fig. 1 harness
feeds them to the scheduling simulation as service-time components.
"""

from repro.stack.transport import (
    HardwareTerminatedTransport,
    KernelBypassTransport,
    KernelTcpTransport,
    TransportModel,
)
from repro.stack.serialization import (
    FieldKind,
    FlatSerializer,
    MessageSchema,
    ProtobufLikeSerializer,
    SerializerModel,
    ZeroCopySerializer,
)
from repro.stack.rpc_layer import RpcLayerModel
from repro.stack.profiles import StackProfile, erpc_stack, nanorpc_stack, tcpip_stack

__all__ = [
    "TransportModel",
    "KernelTcpTransport",
    "KernelBypassTransport",
    "HardwareTerminatedTransport",
    "FieldKind",
    "MessageSchema",
    "SerializerModel",
    "ProtobufLikeSerializer",
    "FlatSerializer",
    "ZeroCopySerializer",
    "RpcLayerModel",
    "StackProfile",
    "tcpip_stack",
    "erpc_stack",
    "nanorpc_stack",
]
