"""Named stack compositions reproducing Fig. 1's processing costs.

A :class:`StackProfile` binds a transport model, an RPC-layer model and
request/response schemas into one number: on-CPU processing nanoseconds
per served RPC.  The three named profiles land (for the figure's 300 B
request / 64 B response) in the bands Fig. 1 plots:

* ``tcpip``   -- kernel TCP + protobuf-like serialization: ~15 us
* ``erpc``    -- kernel-bypass transport + flat serialization: ~850 ns
* ``nanorpc`` -- hardware-terminated + zero-copy: ~40 ns
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stack.rpc_layer import RpcLayerModel
from repro.stack.serialization import (
    FlatSerializer,
    MessageSchema,
    ProtobufLikeSerializer,
    ZeroCopySerializer,
)
from repro.stack.transport import (
    HardwareTerminatedTransport,
    KernelBypassTransport,
    KernelTcpTransport,
    TransportModel,
)

#: The Fig. 1 measurement point: a 300 B request, DeathStarBench-style
#: sub-64 B response [36].
FIG1_REQUEST_BYTES = 300
FIG1_RESPONSE_BYTES = 64


@dataclass(frozen=True)
class StackProfile:
    """One end-to-end RPC stack: transport + RPC layer + schemas."""

    name: str
    transport: TransportModel
    rpc_layer: RpcLayerModel

    def processing_ns(
        self,
        request_bytes: int = FIG1_REQUEST_BYTES,
        response_bytes: int = FIG1_RESPONSE_BYTES,
    ) -> float:
        """Total on-CPU stack processing for one served RPC."""
        if request_bytes < 0 or response_bytes < 0:
            raise ValueError("message sizes must be >= 0")
        request = MessageSchema.blob(f"{self.name}-req", request_bytes)
        response = MessageSchema.blob(f"{self.name}-resp", response_bytes)
        return self.transport.round_trip_ns(request_bytes, response_bytes) + (
            self.rpc_layer.round_trip_ns(request, response)
        )

    def breakdown(self, request_bytes: int = FIG1_REQUEST_BYTES,
                  response_bytes: int = FIG1_RESPONSE_BYTES) -> dict:
        """Per-layer cost split (for reporting)."""
        request = MessageSchema.blob(f"{self.name}-req", request_bytes)
        response = MessageSchema.blob(f"{self.name}-resp", response_bytes)
        return {
            "transport_ns": self.transport.round_trip_ns(
                request_bytes, response_bytes
            ),
            "rpc_layer_ns": self.rpc_layer.round_trip_ns(request, response),
        }


def tcpip_stack() -> StackProfile:
    """The kernel socket path with software serialization."""
    return StackProfile(
        name="tcpip",
        transport=KernelTcpTransport(),
        rpc_layer=RpcLayerModel(
            serializer=ProtobufLikeSerializer(),
            header_parse_ns=120.0,  # kernel-path framing
            dispatch_ns=60.0,
        ),
    )


def erpc_stack() -> StackProfile:
    """eRPC: kernel-bypass transport, lean RPC layer."""
    return StackProfile(
        name="erpc",
        transport=KernelBypassTransport(),
        rpc_layer=RpcLayerModel(
            serializer=FlatSerializer(),
            header_parse_ns=20.0,
            dispatch_ns=12.0,
        ),
    )


def nanorpc_stack() -> StackProfile:
    """nanoRPC: hardware-terminated transport, zero-copy messages."""
    return StackProfile(
        name="nanorpc",
        transport=HardwareTerminatedTransport(),
        rpc_layer=RpcLayerModel(
            serializer=ZeroCopySerializer(fixed_ns=3.0),
            header_parse_ns=4.0,
            dispatch_ns=3.0,
        ),
    )
