"""The RPC layer: header parsing, function dispatch, payload handling.

Sec. II-B: "the RPC layer does RPC header parsing, requested function
identification, message payload deserialization, etc."  This model
charges each of those plus the serializer's work on the request and
response schemas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stack.serialization import MessageSchema, SerializerModel


@dataclass(frozen=True)
class RpcLayerModel:
    """Per-RPC cost of the RPC layer proper.

    Attributes
    ----------
    serializer:
        The (de)serialization cost model applied to both directions.
    header_parse_ns:
        Parsing the RPC header (method id, sizes, flags).
    dispatch_ns:
        Function-table lookup and handler invocation.
    """

    serializer: SerializerModel
    header_parse_ns: float = 15.0
    dispatch_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.header_parse_ns < 0 or self.dispatch_ns < 0:
            raise ValueError("costs must be non-negative")

    def request_ns(self, request: MessageSchema) -> float:
        """RX side: parse header, find handler, decode arguments."""
        return (
            self.header_parse_ns
            + self.dispatch_ns
            + self.serializer.deserialize_ns(request)
        )

    def response_ns(self, response: MessageSchema) -> float:
        """TX side: encode results and build the response header."""
        return self.header_parse_ns * 0.5 + self.serializer.serialize_ns(
            response
        )

    def round_trip_ns(self, request: MessageSchema,
                      response: MessageSchema) -> float:
        """Full RPC-layer tax for one served call."""
        return self.request_ns(request) + self.response_ns(response)
