"""Message schemas and (de)serialization cost models.

(De)serialization is a first-class RPC tax -- Optimus Prime and
Zerializer (paper refs [51], [65]) build accelerators just for it.  We
model it at the schema level: a message is a list of typed fields, and
a serializer charges per-field and per-byte work:

* :class:`ProtobufLikeSerializer` -- varint/tag encoding: noticeable
  per-field cost plus per-byte copy; deserialization slightly dearer
  than serialization (parsing + validation).
* :class:`FlatSerializer` -- flatbuffer-ish: fixed layout, cost is one
  bounds-checked copy.
* :class:`ZeroCopySerializer` -- Zerializer-style: constant descriptor
  fix-up, independent of payload size.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Tuple


class FieldKind(enum.Enum):
    """Field types with their fixed wire sizes (bytes); BYTES is
    variable-length."""

    INT32 = 4
    INT64 = 8
    FLOAT64 = 8
    BYTES = -1


@dataclass(frozen=True)
class MessageField:
    """One typed field of a message schema."""
    name: str
    kind: FieldKind
    size_bytes: int = 0  # for BYTES fields

    def wire_bytes(self) -> int:
        if self.kind is FieldKind.BYTES:
            if self.size_bytes < 0:
                raise ValueError(f"field {self.name}: negative size")
            return self.size_bytes
        return self.kind.value


@dataclass(frozen=True)
class MessageSchema:
    """An RPC message layout: named, typed fields."""

    name: str
    fields: Tuple[MessageField, ...] = ()

    @staticmethod
    def of(name: str, *fields: MessageField) -> "MessageSchema":
        return MessageSchema(name=name, fields=tuple(fields))

    @staticmethod
    def blob(name: str, payload_bytes: int, header_fields: int = 3
             ) -> "MessageSchema":
        """A typical small-RPC shape: a few header ints + one payload."""
        headers = tuple(
            MessageField(f"h{i}", FieldKind.INT64) for i in range(header_fields)
        )
        return MessageSchema(
            name=name,
            fields=headers + (
                MessageField("payload", FieldKind.BYTES, payload_bytes),
            ),
        )

    @property
    def n_fields(self) -> int:
        return len(self.fields)

    @property
    def wire_bytes(self) -> int:
        return sum(f.wire_bytes() for f in self.fields)


class SerializerModel(abc.ABC):
    """On-CPU cost of encoding/decoding one message of a schema."""

    name = "abstract"

    @abc.abstractmethod
    def serialize_ns(self, schema: MessageSchema) -> float:
        """Cost to encode one message."""

    @abc.abstractmethod
    def deserialize_ns(self, schema: MessageSchema) -> float:
        """Cost to decode one message."""


class ProtobufLikeSerializer(SerializerModel):
    """Tag/varint encoding in software (the datacenter default)."""

    name = "protobuf-like"

    def __init__(self, per_field_ns: float = 18.0,
                 per_byte_ns: float = 0.6) -> None:
        if min(per_field_ns, per_byte_ns) < 0:
            raise ValueError("costs must be non-negative")
        self.per_field_ns = float(per_field_ns)
        self.per_byte_ns = float(per_byte_ns)

    def serialize_ns(self, schema: MessageSchema) -> float:
        return (schema.n_fields * self.per_field_ns
                + schema.wire_bytes * self.per_byte_ns)

    def deserialize_ns(self, schema: MessageSchema) -> float:
        # Parsing pays tag dispatch + validation on top of the copy.
        return (schema.n_fields * self.per_field_ns * 1.4
                + schema.wire_bytes * self.per_byte_ns)


class FlatSerializer(SerializerModel):
    """Fixed-layout encoding: one bounds-checked copy, tiny field cost."""

    name = "flat"

    def __init__(self, per_field_ns: float = 2.0,
                 per_byte_ns: float = 0.25) -> None:
        if min(per_field_ns, per_byte_ns) < 0:
            raise ValueError("costs must be non-negative")
        self.per_field_ns = float(per_field_ns)
        self.per_byte_ns = float(per_byte_ns)

    def serialize_ns(self, schema: MessageSchema) -> float:
        return (schema.n_fields * self.per_field_ns
                + schema.wire_bytes * self.per_byte_ns)

    def deserialize_ns(self, schema: MessageSchema) -> float:
        # Access-in-place: decoding is just pointer math.
        return schema.n_fields * self.per_field_ns

class ZeroCopySerializer(SerializerModel):
    """Zerializer-style: descriptors are fixed up, payload never moves."""

    name = "zero-copy"

    def __init__(self, fixed_ns: float = 10.0) -> None:
        if fixed_ns < 0:
            raise ValueError("cost must be non-negative")
        self.fixed_ns = float(fixed_ns)

    def serialize_ns(self, schema: MessageSchema) -> float:
        return self.fixed_ns

    def deserialize_ns(self, schema: MessageSchema) -> float:
        return self.fixed_ns
