"""Transport-layer on-CPU cost models.

Three generations, matching Fig. 1's progression:

* :class:`KernelTcpTransport` -- the kernel socket path: syscalls,
  skb management, checksums, per-MTU segmentation.  ~10-20 us for a
  small message (the paper's TCP/IP bar).
* :class:`KernelBypassTransport` -- DPDK/eRPC-style user-space polling
  transport: no syscalls, amortized batched polling, congestion-free
  common case.  Sub-microsecond.
* :class:`HardwareTerminatedTransport` -- the NIC terminates the
  protocol (nanoPU/Nebula); the CPU pays essentially nothing beyond
  reading the delivered message.

Costs are per *message* in on-CPU nanoseconds and scale with size via
per-byte terms (copies, checksums) and per-packet terms (segmentation).
"""

from __future__ import annotations

import abc
import math


class TransportModel(abc.ABC):
    """On-CPU cost of moving one message through the transport layer."""

    #: Human-readable name used by profiles and reports.
    name = "abstract"

    @abc.abstractmethod
    def rx_ns(self, size_bytes: int) -> float:
        """Receive-path cost for one message of ``size_bytes``."""

    @abc.abstractmethod
    def tx_ns(self, size_bytes: int) -> float:
        """Transmit-path cost for one message of ``size_bytes``."""

    def round_trip_ns(self, request_bytes: int, response_bytes: int) -> float:
        """Server-side processing for one RPC: RX request + TX response."""
        return self.rx_ns(request_bytes) + self.tx_ns(response_bytes)

    @staticmethod
    def _check_size(size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")


class KernelTcpTransport(TransportModel):
    """Kernel TCP/IP socket path.

    Cost structure: two syscalls per direction (~1.5 us each with the
    mitigations-era overhead), skb alloc + checksum + copy (~2 ns/byte),
    and per-MTU-packet protocol work.
    """

    name = "kernel-tcp"

    def __init__(
        self,
        syscall_ns: float = 2_600.0,
        per_packet_ns: float = 4_200.0,
        per_byte_ns: float = 2.5,
        mtu_bytes: int = 1_460,
    ) -> None:
        if min(syscall_ns, per_packet_ns, per_byte_ns) < 0 or mtu_bytes <= 0:
            raise ValueError("invalid transport parameters")
        self.syscall_ns = float(syscall_ns)
        self.per_packet_ns = float(per_packet_ns)
        self.per_byte_ns = float(per_byte_ns)
        self.mtu_bytes = int(mtu_bytes)

    def _packets(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self.mtu_bytes))

    def rx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        return (
            self.syscall_ns
            + self._packets(size_bytes) * self.per_packet_ns
            + size_bytes * self.per_byte_ns
        )

    def tx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        # TX is slightly cheaper: no softirq demux.
        return (
            self.syscall_ns
            + self._packets(size_bytes) * self.per_packet_ns * 0.8
            + size_bytes * self.per_byte_ns
        )


class KernelBypassTransport(TransportModel):
    """User-space polling transport (DPDK / eRPC's common case).

    No syscalls; the poll loop amortizes per-batch costs, leaving a
    small per-packet handling term and one copy.
    """

    name = "kernel-bypass"

    def __init__(
        self,
        per_packet_ns: float = 320.0,
        per_byte_ns: float = 0.55,
        mtu_bytes: int = 1_460,
    ) -> None:
        if min(per_packet_ns, per_byte_ns) < 0 or mtu_bytes <= 0:
            raise ValueError("invalid transport parameters")
        self.per_packet_ns = float(per_packet_ns)
        self.per_byte_ns = float(per_byte_ns)
        self.mtu_bytes = int(mtu_bytes)

    def _packets(self, size_bytes: int) -> int:
        return max(1, math.ceil(size_bytes / self.mtu_bytes))

    def rx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        return self._packets(size_bytes) * self.per_packet_ns + (
            size_bytes * self.per_byte_ns
        )

    def tx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        return self._packets(size_bytes) * self.per_packet_ns * 0.8 + (
            size_bytes * self.per_byte_ns
        )


class HardwareTerminatedTransport(TransportModel):
    """NIC-terminated protocol (nanoPU / Nebula).

    The CPU's only transport work is reading the message out of the
    register file / LLC buffer the hardware placed it in.
    """

    name = "hw-terminated"

    def __init__(self, per_message_ns: float = 9.0,
                 per_byte_ns: float = 0.02) -> None:
        if min(per_message_ns, per_byte_ns) < 0:
            raise ValueError("invalid transport parameters")
        self.per_message_ns = float(per_message_ns)
        self.per_byte_ns = float(per_byte_ns)

    def rx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        return self.per_message_ns + size_bytes * self.per_byte_ns

    def tx_ns(self, size_bytes: int) -> float:
        self._check_size(size_bytes)
        return self.per_message_ns + size_bytes * self.per_byte_ns
