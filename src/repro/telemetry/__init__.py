"""Telemetry spine: typed metrics registry + per-request trace sink.

See :mod:`repro.telemetry.registry` for instruments and
:mod:`repro.telemetry.trace` for lifecycle tracing; the
:func:`~repro.telemetry.runtime.capture` context wires both into systems
built while it is active.
"""

from repro.telemetry.registry import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricNameError,
    MetricNamespaceError,
    MetricRegistry,
    validate_namespace,
)
from repro.telemetry.runtime import Capture, capture, record_run, trace_sink
from repro.telemetry.trace import NULL_SINK, NullSink, TraceSink

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricNameError",
    "MetricNamespaceError",
    "MetricRegistry",
    "validate_namespace",
    "Capture",
    "capture",
    "record_run",
    "trace_sink",
    "NULL_SINK",
    "NullSink",
    "TraceSink",
]
