"""Typed, namespaced metric instruments and the registry that owns them.

Every subsystem in the reproduction (engine, NoC, messaging protocol,
NIC delivery, KVS store, scheduler harness, cluster tier) registers its
counters into one :class:`MetricRegistry` per system, under a dotted
namespace (``noc.messages``, ``messaging.m0.migrates_sent``,
``cluster.imbalance_index``).  The registry is the single snapshot /
schema / export spine: :meth:`MetricRegistry.snapshot` returns a flat
JSON-able dict, :meth:`MetricRegistry.schema` pins the instrument names
and types for the schema-regression test.

Two instrument storage modes coexist deliberately:

* **Owned instruments** hold their own value.  ``Counter.value += 1`` on
  a slotted instance costs exactly what the old per-subsystem dataclass
  field bump cost, so converting a hot path to an owned instrument is
  performance-neutral by construction.
* **Bound instruments** read a live value through a callback at snapshot
  time (``fn=...``).  The hottest mutable state (``SystemStats``'
  offered/completed counts, the simulator clock) stays a plain attribute
  and is merely *observed* by the registry -- zero added work per event.

Counters preserve ``int`` semantics: an instrument incremented only by
ints snapshots as an int (no more ``migrations: 12.0`` in JSON output).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Instrument names are dotted paths of lowercase segments; at least one
#: dot, so every instrument carries an explicit namespace.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Namespace prefixes (for adapters) are one or more dotted segments.
_NAMESPACE_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

#: Default fixed latency buckets, in ns: powers of two from 64 ns to
#: ~67 ms.  Nanosecond-scale RPCs live in the low buckets; the top
#: bucket catches pathological stragglers without unbounded growth.
DEFAULT_LATENCY_BOUNDS_NS: Tuple[float, ...] = tuple(
    float(1 << k) for k in range(6, 27)
)


class MetricError(ValueError):
    """Base class for registry misuse."""


class MetricNameError(MetricError):
    """Malformed or duplicate instrument name."""


class MetricNamespaceError(MetricError):
    """Malformed namespace, or a cross-namespace key collision."""


def validate_namespace(namespace: str) -> str:
    """Validate a namespace prefix; returns it unchanged."""
    if not _NAMESPACE_RE.match(namespace):
        raise MetricNamespaceError(
            f"bad namespace {namespace!r}: must be dotted lowercase "
            "segments like 'cluster' or 'messaging.m0'"
        )
    return namespace


class Counter:
    """A monotonically increasing count.

    Owned mode (no ``fn``): mutate :attr:`value` directly on the hot
    path, or call :meth:`inc`.  Bound mode (``fn`` given): the counter
    reads a live external value at snapshot time and must not be
    incremented.
    """

    kind = "counter"

    __slots__ = ("name", "value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Number]] = None):
        self.name = name
        self.value: Number = 0
        self._fn = fn

    def inc(self, amount: Number = 1) -> None:
        if self._fn is not None:
            raise MetricError(f"counter {self.name} is bound; cannot inc()")
        self.value += amount

    def read(self) -> Number:
        return self._fn() if self._fn is not None else self.value


class Gauge:
    """A point-in-time value (set directly or bound to a callback)."""

    kind = "gauge"

    __slots__ = ("name", "value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None):
        self.name = name
        self.value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise MetricError(f"gauge {self.name} is bound; cannot set()")
        self.value = value

    def read(self) -> Any:
        return self._fn() if self._fn is not None else self.value


class Histogram:
    """Fixed-bucket histogram for ns-scale latency distributions.

    ``bounds`` are upper bucket edges (inclusive-exclusive in the usual
    ``bisect`` sense); one overflow bucket catches values beyond the
    last edge.  ``observe`` is a single C-level ``bisect`` plus three
    attribute updates, cheap enough to stay always-on in the completion
    path.
    """

    kind = "histogram"

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        bounds = tuple(
            float(b) for b in (bounds if bounds is not None
                               else DEFAULT_LATENCY_BOUNDS_NS)
        )
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricError(
                f"histogram {name}: bounds must be non-empty and increasing"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def read(self) -> Dict[str, Any]:
        buckets: Dict[str, int] = {}
        for bound, count in zip(self.bounds, self.counts):
            if count:
                buckets[f"le_{bound:g}"] = count
        if self.counts[-1]:
            buckets["le_inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


Instrument = Union[Counter, Gauge, Histogram]

#: Sentinel: a child registry disjoint from a snapshot filter.
_SKIP = object()


class MetricRegistry:
    """Owns a flat, insertion-ordered set of uniquely named instruments.

    Child registries can be attached under a prefix
    (:meth:`attach_child`), so a rack's registry transparently exposes
    every server's instruments as ``srv<i>.<name>`` -- one snapshot for
    the whole hierarchy.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._children: List[Tuple[str, "MetricRegistry"]] = []
        #: Pre-captured flat snapshots merged in at snapshot time (the
        #: sharded tier's harvested per-shard registries).
        self._snapshots: List[Tuple[str, Dict[str, Any]]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _admit(self, name: str) -> None:
        if not _NAME_RE.match(name):
            raise MetricNameError(
                f"bad instrument name {name!r}: must be dotted lowercase "
                "segments like 'noc.messages'"
            )
        if name in self._instruments:
            raise MetricNameError(f"instrument {name!r} already registered")

    def counter(
        self, name: str, fn: Optional[Callable[[], Number]] = None
    ) -> Counter:
        self._admit(name)
        instrument = Counter(name, fn)
        self._instruments[name] = instrument
        return instrument

    def gauge(
        self, name: str, fn: Optional[Callable[[], Any]] = None
    ) -> Gauge:
        self._admit(name)
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        self._admit(name)
        instrument = Histogram(name, bounds)
        self._instruments[name] = instrument
        return instrument

    def attach_child(self, prefix: str, child: "MetricRegistry") -> None:
        """Expose ``child``'s instruments under ``prefix.`` in snapshots."""
        validate_namespace(prefix)
        if child is self:
            raise MetricError("a registry cannot attach itself")
        if any(existing is child for _, existing in self._children):
            raise MetricError("child registry already attached")
        self._children.append((prefix, child))

    def attach_snapshot(self, prefix: str, values: Dict[str, Any]) -> None:
        """Merge a pre-captured flat snapshot under ``prefix.``.

        The cross-process analogue of :meth:`attach_child`: a worker
        shard snapshots its own registry, ships the flat dict over the
        pipe, and the coordinator attaches it here so one
        :meth:`snapshot` covers the whole sharded run.  The values are
        frozen data, not live instruments, so they appear in snapshots
        but deliberately not in :meth:`schema` (the schema gate pins the
        serial topology's live instrument set).
        """
        validate_namespace(prefix)
        self._snapshots.append((prefix, dict(values)))

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def get(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise MetricNameError(f"no instrument named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        """Own instrument names, in registration order."""
        return list(self._instruments)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """Flat name -> value dict over this registry and its children.

        Counters keep int-ness; histograms snapshot as nested dicts.
        With ``prefix`` (a dotted namespace like ``"faults"`` or
        ``"rack0.cluster"``), only instruments whose full name equals the
        prefix or lives under ``prefix.`` are read -- the cheap path for
        periodic samplers like the control loop, which must not pay for
        reading every bound instrument in a datacenter-sized hierarchy.
        Keys keep their full prefixed names either way.
        """
        if prefix is None:
            out: Dict[str, Any] = {
                name: instrument.read()
                for name, instrument in self._instruments.items()
            }
            for cprefix, child in self._children:
                for name, value in child.snapshot().items():
                    out[f"{cprefix}.{name}"] = value
            for cprefix, values in self._snapshots:
                for name, value in values.items():
                    out[f"{cprefix}.{name}"] = value
            return out
        validate_namespace(prefix)
        dotted = prefix + "."
        out = {
            name: instrument.read()
            for name, instrument in self._instruments.items()
            if name == prefix or name.startswith(dotted)
        }
        for cprefix, child in self._children:
            sub = self._narrow(prefix, dotted, cprefix)
            if sub is _SKIP:
                continue
            for name, value in child.snapshot(sub).items():
                out[f"{cprefix}.{name}"] = value
        for cprefix, values in self._snapshots:
            sub = self._narrow(prefix, dotted, cprefix)
            if sub is _SKIP:
                continue
            for name, value in values.items():
                if sub is None or name == sub or name.startswith(sub + "."):
                    out[f"{cprefix}.{name}"] = value
        return out

    @staticmethod
    def _narrow(prefix: str, dotted: str, cprefix: str) -> Any:
        """Remaining filter for a child mounted at ``cprefix``.

        ``None`` means the whole child matches; :data:`_SKIP` means the
        child is disjoint from the filter; otherwise the returned string
        is the filter with the mount point stripped.
        """
        if prefix == cprefix or cprefix.startswith(dotted):
            return None
        if prefix.startswith(cprefix + "."):
            return prefix[len(cprefix) + 1:]
        return _SKIP

    def schema(self) -> List[Dict[str, str]]:
        """Sorted ``[{"name", "type"}]`` over the full hierarchy -- the
        shape pinned by the metrics-schema regression test."""
        entries = [
            {"name": name, "type": instrument.kind}
            for name, instrument in self._instruments.items()
        ]
        for prefix, child in self._children:
            entries.extend(
                {"name": f"{prefix}.{entry['name']}", "type": entry["type"]}
                for entry in child.schema()
            )
        return sorted(entries, key=lambda entry: entry["name"])

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Strict-JSON snapshot (non-finite floats are stringified)."""

        def default(value: object) -> object:
            return str(value)

        return json.dumps(
            _json_safe(self.snapshot()), indent=indent, default=default,
            allow_nan=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricRegistry {len(self._instruments)} instruments, "
            f"{len(self._children)} children>"
        )


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats so ``allow_nan=False`` never trips."""
    if isinstance(value, float):
        if value != value:  # NaN
            return None
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value
