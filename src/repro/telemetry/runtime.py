"""Process-wide telemetry capture context.

Systems are built deep inside experiment drivers and the sweep runner,
so there is no clean constructor path to hand them a trace sink.
Instead a module-global *active capture* is swapped in by the
:func:`capture` context manager; systems pick it up at construction via
:func:`trace_sink`, and :func:`repro.api.run_workload` reports each
finished run's registry snapshot via :func:`record_run`.

When no capture is active (the default), :func:`trace_sink` returns the
shared :data:`~repro.telemetry.trace.NULL_SINK` and :func:`record_run`
is a cheap no-op -- the disabled path allocates nothing.

Captures only see runs executed in-process: the parallel sweep runner's
worker processes have their own (inactive) globals, which is why the CLI
forces ``--jobs 1`` when ``--trace``/``--metrics-out`` is requested.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.telemetry.trace import NULL_SINK, NullSink, TraceSink

Sink = Union[NullSink, TraceSink]


class Capture:
    """State collected while a :func:`capture` context is active."""

    def __init__(self, trace: Sink, collect_metrics: bool) -> None:
        self.trace = trace
        #: One entry per completed ``run_workload`` call:
        #: ``{"system": name, "metrics": registry snapshot}``.
        self.runs: List[Dict[str, Any]] = [] if collect_metrics else None

    def record_run(self, system_name: str,
                   snapshot: Dict[str, Any]) -> None:
        if self.runs is not None:
            self.runs.append({"system": system_name, "metrics": snapshot})


_active: Optional[Capture] = None


def trace_sink() -> Sink:
    """The sink newly constructed systems should record into."""
    return _active.trace if _active is not None else NULL_SINK


def record_run(system_name: str, snapshot: Dict[str, Any]) -> None:
    """Report a finished run's metrics snapshot to the active capture."""
    if _active is not None:
        _active.record_run(system_name, snapshot)


@contextmanager
def capture(
    trace: Optional[Sink] = None,
    collect_metrics: bool = False,
) -> Iterator[Capture]:
    """Activate a telemetry capture for the duration of the block.

    ``trace`` is the sink systems built inside the block will record
    into (``None`` keeps tracing disabled).  With ``collect_metrics``,
    every run's registry snapshot is appended to ``capture.runs``.
    Captures do not nest: re-entering replaces the active capture until
    the inner block exits.
    """
    global _active
    cap = Capture(trace if trace is not None else NULL_SINK, collect_metrics)
    previous = _active
    _active = cap
    try:
        yield cap
    finally:
        _active = previous


__all__ = ["Capture", "capture", "record_run", "trace_sink"]
