"""Per-request lifecycle tracing into a bounded, sampled ring buffer.

Two event flavours share one ring:

* **Marks** -- ``mark(req_id, phase, t)`` records that a sampled request
  entered ``phase`` at simulated time ``t``.  A request's lifecycle is a
  chain of marks (arrival -> NetRX enqueue -> predict -> migrate ->
  dispatch -> service -> completion); spans are *derived* between
  consecutive marks at export time, so the per-request spans telescope:
  their durations sum to exactly ``last_mark - first_mark`` (the
  end-to-end latency when the chain runs arrival..completion).
* **Spans** -- ``span(track, lane, name, t0, t1)`` records an interval
  on an infrastructure track (NoC ejection port, ToR switch port) whose
  endpoints are both known when the event happens.

The ring is bounded (``capacity`` events, oldest overwritten) and
sampled (``sample_every``: request ``req_id % sample_every == 0`` is
traced), so tracing a million-request run costs a fixed amount of
memory.  Export targets the Chrome trace-event JSON format
(``chrome://tracing`` / https://ui.perfetto.dev): load the file and each
sampled request appears as its own row of phase slices.

:class:`NullSink` is the default when no trace was requested: its
``enabled`` flag is a class attribute checked by every instrumented call
site before doing any work, so the disabled path costs one attribute
load and a branch -- no allocation, no sampling arithmetic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: Ring entry layouts (plain tuples; one allocation per recorded event).
_MARK = 0
_SPAN = 1


class NullSink:
    """Tracing disabled: every operation is a no-op.

    ``enabled`` is False at class level so instrumented hot paths can
    guard with ``if trace.enabled:`` and skip all tracing work.
    """

    enabled = False

    def sampled(self, req_id: int) -> bool:
        return False

    def mark(self, req_id: int, phase: str, t: float) -> None:
        pass

    def span(self, track: str, lane: int, name: str,
             t0: float, t1: float) -> None:
        pass


#: Shared default sink; systems grab this when no capture is active.
NULL_SINK = NullSink()


class TraceSink:
    """Bounded ring buffer of request marks and infrastructure spans."""

    enabled = True

    def __init__(self, capacity: int = 200_000, sample_every: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.capacity = capacity
        self.sample_every = sample_every
        self._ring: List[Tuple[Any, ...]] = []
        self._next = 0  # overwrite cursor once the ring is full
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def sampled(self, req_id: int) -> bool:
        """Whether this request's lifecycle should be recorded."""
        return req_id % self.sample_every == 0

    def _record(self, entry: Tuple[Any, ...]) -> None:
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(entry)
        else:
            ring[self._next] = entry
            self._next = (self._next + 1) % self.capacity
            self.dropped_events += 1

    def mark(self, req_id: int, phase: str, t: float) -> None:
        """Record that request ``req_id`` entered ``phase`` at time ``t``."""
        self._record((_MARK, req_id, phase, t))

    def span(self, track: str, lane: int, name: str,
             t0: float, t1: float) -> None:
        """Record a ``[t0, t1]`` interval on lane ``lane`` of ``track``."""
        self._record((_SPAN, track, lane, name, t0, t1))

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # Derivation / export
    # ------------------------------------------------------------------
    def marks_by_request(self) -> Dict[int, List[Tuple[str, float]]]:
        """Time-ordered ``(phase, t)`` marks per sampled request."""
        out: Dict[int, List[Tuple[str, float]]] = {}
        for entry in self._ring:
            if entry[0] == _MARK:
                out.setdefault(entry[1], []).append((entry[2], entry[3]))
        for marks in out.values():
            marks.sort(key=lambda m: m[1])
        return out

    def request_spans(
        self, req_id: int
    ) -> List[Tuple[str, float, float]]:
        """``(phase, t0, t1)`` spans derived from consecutive marks.

        Span *i* runs from mark *i* to mark *i+1* and is named after the
        phase the request entered at mark *i*, so durations telescope:
        ``sum(t1 - t0) == last_mark_time - first_mark_time`` exactly.
        The final (terminal) mark opens no span.
        """
        marks = self.marks_by_request().get(req_id, [])
        return [
            (phase, t, marks[i + 1][1])
            for i, (phase, t) in enumerate(marks[:-1])
        ]

    def infrastructure_spans(
        self,
    ) -> List[Tuple[str, int, str, float, float]]:
        """All recorded ``(track, lane, name, t0, t1)`` spans."""
        return [
            (e[1], e[2], e[3], e[4], e[5])
            for e in self._ring
            if e[0] == _SPAN
        ]

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Render the ring as Chrome trace-event 'complete' (ph=X) events.

        Chrome expects timestamps/durations in microseconds; simulated
        time is nanoseconds, so values are divided by 1000 (fractional
        microseconds are fine).  Requests share one process row (tid =
        req_id); each infrastructure track gets its own process (tid =
        lane).
        """
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": "requests"}},
        ]
        track_pids: Dict[str, int] = {}
        for req_id, marks in sorted(self.marks_by_request().items()):
            for i, (phase, t) in enumerate(marks[:-1]):
                t_next = marks[i + 1][1]
                events.append({
                    "ph": "X", "pid": 1, "tid": req_id,
                    "name": phase, "cat": "request",
                    "ts": t / 1000.0, "dur": (t_next - t) / 1000.0,
                    "args": {"req_id": req_id},
                })
            if marks:
                # Terminal mark as an instant event so the lifecycle end
                # (completed/dropped) is visible even with no span after.
                phase, t = marks[-1]
                events.append({
                    "ph": "i", "pid": 1, "tid": req_id, "s": "t",
                    "name": phase, "cat": "request", "ts": t / 1000.0,
                })
        for track, lane, name, t0, t1 in self.infrastructure_spans():
            pid = track_pids.get(track)
            if pid is None:
                pid = 2 + len(track_pids)
                track_pids[track] = pid
                events.append({
                    "ph": "M", "pid": pid, "name": "process_name",
                    "args": {"name": track},
                })
            events.append({
                "ph": "X", "pid": pid, "tid": lane,
                "name": name, "cat": track,
                "ts": t0 / 1000.0, "dur": (t1 - t0) / 1000.0,
            })
        return events

    def export_chrome(self, path: str) -> None:
        """Write a Chrome-loadable trace JSON file to ``path``."""
        doc = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ns",
            "metadata": {
                "sample_every": self.sample_every,
                "dropped_events": self.dropped_events,
            },
        }
        with open(path, "w") as fh:
            json.dump(doc, fh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceSink {len(self._ring)}/{self.capacity} events, "
            f"1:{self.sample_every} sampling, "
            f"{self.dropped_events} overwritten>"
        )


def default_sink() -> NullSink:
    return NULL_SINK


__all__ = ["NullSink", "NULL_SINK", "TraceSink", "default_sink"]
