"""Workload generation: arrival processes, service-time distributions,
connections, the open-loop load generator, and trace record/replay.

The paper evaluates two traffic classes (Sec. VII-B):

* **Synthetic** -- Poisson arrivals with Fixed / Uniform / Bimodal
  service-time distributions (the standard set from Shinjuku, ZygOS and
  Nebula).
* **Real-world** -- a regression model trained on public-cloud traces
  [Bergsma et al., SOSP'21] that produces bursty, temporally correlated
  batches.  We substitute a Markov-modulated Poisson process (MMPP) with
  batch arrivals, which reproduces the burstiness and temporal
  correlation the paper's adaptability experiments rely on.
"""

from repro.workload.request import Request, RequestKind
from repro.workload.service import (
    Bimodal,
    Exponential,
    Fixed,
    Lognormal,
    ServiceDistribution,
    TraceService,
    Uniform,
)
from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    DriftingMMPPArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workload.connections import ConnectionPool
from repro.workload.tenants import (
    SuperposedArrivals,
    TenantClass,
    TenantConnectionPool,
    TenantMix,
    tenant_slo_summary,
)
from repro.workload.generator import LoadGenerator
from repro.workload.jobs import (
    ChoiceDegree,
    DegreeDistribution,
    FixedDegree,
    Job,
    JobLoadGenerator,
    JobShape,
    JobTracker,
    UniformDegree,
    make_gang_shadow,
    system_supports_gang,
)
from repro.workload.closed_loop import ClosedLoopGenerator
from repro.workload.cloud import RateSeriesArrivals, synthesize_rate_series
from repro.workload.traces import load_trace, save_trace

__all__ = [
    "Request",
    "RequestKind",
    "ServiceDistribution",
    "Fixed",
    "Uniform",
    "Bimodal",
    "Exponential",
    "Lognormal",
    "TraceService",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "DriftingMMPPArrivals",
    "TraceArrivals",
    "ConnectionPool",
    "TenantClass",
    "TenantMix",
    "TenantConnectionPool",
    "SuperposedArrivals",
    "tenant_slo_summary",
    "LoadGenerator",
    "DegreeDistribution",
    "FixedDegree",
    "ChoiceDegree",
    "UniformDegree",
    "JobShape",
    "Job",
    "JobTracker",
    "JobLoadGenerator",
    "make_gang_shadow",
    "system_supports_gang",
    "ClosedLoopGenerator",
    "RateSeriesArrivals",
    "synthesize_rate_series",
    "load_trace",
    "save_trace",
]
