"""Arrival processes.

An :class:`ArrivalProcess` yields successive inter-arrival gaps (ns).
The load generator pulls one gap per request, so arbitrary processes --
Poisson, deterministic, bursty Markov-modulated, recorded traces -- plug
into the same machinery.

The "real-world" pattern of Sec. VII-B is a regression model trained on
Azure/Huawei cloud traces that captures burstiness and temporal
correlation.  We reproduce those properties with a two-state
Markov-modulated Poisson process with batch arrivals
(:class:`MMPPArrivals`): a *calm* state at below-average rate and a
*burst* state at a multiple of it, with geometric batch sizes in the
burst state.  This is the standard synthetic stand-in for correlated
cloud traffic and exercises exactly the adaptability code paths the
paper evaluates (Figs. 13-14).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates inter-arrival gaps in nanoseconds."""

    @abc.abstractmethod
    def next_gap(self, rng: np.random.Generator) -> float:
        """Return the gap between the previous arrival and the next one."""

    def next_gaps(self, rng: np.random.Generator, n: int) -> "list[float]":
        """Draw ``n`` successive gaps.

        The default is exactly ``n`` :meth:`next_gap` calls, so the
        values (and the RNG stream consumed) are identical to drawing
        one at a time.  Memoryless processes override this with a single
        vectorized draw -- numpy fills a batch from the same bit stream
        as repeated scalar draws, so the override is also bit-identical.
        """
        next_gap = self.next_gap
        return [next_gap(rng) for _ in range(n)]

    @property
    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrival rate in requests per nanosecond."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_rps`` requests per second."""

    def __init__(self, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self._mean_gap_ns = 1e9 / rate_rps

    def next_gap(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean_gap_ns))

    def next_gaps(self, rng: np.random.Generator, n: int) -> "list[float]":
        return rng.exponential(self._mean_gap_ns, size=n).tolist()

    @property
    def mean_rate(self) -> float:
        return self.rate_rps / 1e9

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PoissonArrivals {self.rate_rps / 1e6:.2f} MRPS>"


class DeterministicArrivals(ArrivalProcess):
    """Perfectly paced arrivals; useful for tests and capacity probes."""

    def __init__(self, rate_rps: float) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self._gap_ns = 1e9 / rate_rps

    def next_gap(self, rng: np.random.Generator) -> float:
        return self._gap_ns

    def next_gaps(self, rng: np.random.Generator, n: int) -> "list[float]":
        return [self._gap_ns] * n

    @property
    def mean_rate(self) -> float:
        return self.rate_rps / 1e9


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process with bursty batches.

    State *calm* emits at ``rate * calm_factor``; state *burst* emits at
    ``rate * burst_factor`` and additionally collapses geometric batches
    of requests into near-simultaneous arrivals.  Factors are normalised
    so the long-run average equals ``rate_rps``.

    Parameters mirror what the SOSP'21 cloud-workload study reports:
    bursts of 2-10x mean rate lasting tens of microseconds, temporal
    correlation on the same timescale.
    """

    def __init__(
        self,
        rate_rps: float,
        burst_factor: float = 4.0,
        calm_fraction: float = 0.8,
        mean_dwell_ns: float = 50_000.0,
        batch_mean: float = 4.0,
    ) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        if burst_factor <= 1:
            raise ValueError(f"burst_factor must exceed 1, got {burst_factor}")
        if not 0 < calm_fraction < 1:
            raise ValueError(f"calm_fraction must be in (0,1), got {calm_fraction}")
        if mean_dwell_ns <= 0:
            raise ValueError("mean_dwell_ns must be positive")
        if batch_mean < 1:
            raise ValueError(f"batch_mean must be >= 1, got {batch_mean}")
        self.rate_rps = float(rate_rps)
        self.burst_factor = float(burst_factor)
        self.calm_fraction = float(calm_fraction)
        self.mean_dwell_ns = float(mean_dwell_ns)
        self.batch_mean = float(batch_mean)

        # Solve for the calm-state factor so that the time-weighted mean
        # rate equals rate_rps:
        #   calm_fraction * calm_factor + (1 - calm_fraction) * burst_factor = 1
        self.calm_factor = (1.0 - (1.0 - calm_fraction) * burst_factor) / calm_fraction
        if self.calm_factor <= 0:
            raise ValueError(
                "infeasible MMPP parameters: burst traffic alone exceeds the "
                f"mean rate (calm factor would be {self.calm_factor:.3f})"
            )
        self._in_burst = False
        self._state_left_ns = 0.0
        self._batch_remaining = 0

    def _state_event_rate_rps(self) -> float:
        """Rate of arrival *events* in the current state.

        In the burst state each event carries a geometric batch of mean
        ``batch_mean`` requests, so the event rate is divided by it --
        keeping the long-run request rate equal to ``rate_rps``.
        """
        if self._in_burst:
            return self.rate_rps * self.burst_factor / self.batch_mean
        return self.rate_rps * self.calm_factor

    def next_gap(self, rng: np.random.Generator) -> float:
        # Emit the remainder of an in-flight batch back-to-back.  Batch
        # members arrive simultaneously (gap 0): at line rate the train
        # spacing is sub-nanosecond, and charging it to the gap would
        # bias the long-run rate below nominal.
        if self._batch_remaining > 0:
            self._batch_remaining -= 1
            return 0.0
        gap = 0.0
        while True:
            if self._state_left_ns <= 0.0:
                # Alternate states; dwell means are chosen so the
                # long-run time fraction in the burst state is exactly
                # (1 - calm_fraction), keeping the request rate honest.
                self._in_burst = not self._in_burst
                dwell_scale = self.mean_dwell_ns * (
                    (1 - self.calm_fraction) if self._in_burst else self.calm_fraction
                )
                self._state_left_ns = float(rng.exponential(dwell_scale))
            candidate = float(rng.exponential(1e9 / self._state_event_rate_rps()))
            if candidate <= self._state_left_ns:
                self._state_left_ns -= candidate
                gap += candidate
                if self._in_burst and self.batch_mean > 1:
                    # Geometric batch size with the configured mean.
                    p = 1.0 / self.batch_mean
                    self._batch_remaining = int(rng.geometric(p)) - 1
                return gap
            # No arrival before the state expires; advance and switch.
            gap += self._state_left_ns
            self._state_left_ns = 0.0

    @property
    def mean_rate(self) -> float:
        return self.rate_rps / 1e9

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MMPPArrivals {self.rate_rps / 1e6:.2f} MRPS "
            f"burst x{self.burst_factor:.1f}>"
        )


class DriftingMMPPArrivals(ArrivalProcess):
    """Diurnal/drifting rate modulation on top of the two-state MMPP.

    Real datacenter traffic is non-stationary on two timescales: the
    microsecond burstiness the MMPP captures, and a slow drift (diurnal
    cycles, deployment waves) that moves the *mean* around it.  This
    process wraps :class:`MMPPArrivals` and rescales each emitted gap by
    a sinusoidal rate envelope::

        rate(t) = rate_rps * (1 + amplitude * sin(2*pi*t/period_ns + phase))

    Gap rescaling divides each MMPP gap by the envelope at the gap's
    *start* instant -- a first-order approximation that is exact in the
    limit of gaps short against ``period_ns`` (the operating regime:
    ns-scale gaps under ms-scale drift).  The long-run mean rate stays
    ``rate_rps`` because the envelope averages to 1.

    Parameters
    ----------
    rate_rps:
        Long-run mean request rate.
    period_ns:
        Drift period.  Defaults to 1 ms of simulated time -- "diurnal"
        compressed so short runs still sweep a full cycle.
    amplitude:
        Peak-to-mean swing, in [0, 1): 0.3 means the instantaneous rate
        wanders between 0.7x and 1.3x the mean.
    phase:
        Starting phase in radians (0 starts at the mean, rising).
    **mmpp_kwargs:
        Passed through to :class:`MMPPArrivals` (burst_factor,
        calm_fraction, mean_dwell_ns, batch_mean).
    """

    def __init__(
        self,
        rate_rps: float,
        period_ns: float = 1e6,
        amplitude: float = 0.3,
        phase: float = 0.0,
        **mmpp_kwargs: float,
    ) -> None:
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns}")
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        self.base = MMPPArrivals(rate_rps, **mmpp_kwargs)
        self.rate_rps = float(rate_rps)
        self.period_ns = float(period_ns)
        self.amplitude = float(amplitude)
        self.phase = float(phase)
        self._omega = 2.0 * np.pi / self.period_ns
        self._now_ns = 0.0

    def envelope(self, t_ns: float) -> float:
        """The instantaneous rate multiplier at simulated time ``t_ns``."""
        return 1.0 + self.amplitude * float(
            np.sin(self._omega * t_ns + self.phase)
        )

    def next_gap(self, rng: np.random.Generator) -> float:
        gap = self.base.next_gap(rng) / self.envelope(self._now_ns)
        self._now_ns += gap
        return gap

    @property
    def mean_rate(self) -> float:
        return self.rate_rps / 1e9

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DriftingMMPPArrivals {self.rate_rps / 1e6:.2f} MRPS "
            f"+/-{self.amplitude:.0%} over {self.period_ns / 1e6:.2f} ms>"
        )


class TraceArrivals(ArrivalProcess):
    """Replays recorded inter-arrival gaps, cycling when exhausted."""

    def __init__(self, gaps_ns: Sequence[float]) -> None:
        if len(gaps_ns) == 0:
            raise ValueError("trace must contain at least one gap")
        arr = np.asarray(gaps_ns, dtype=float)
        if (arr < 0).any():
            raise ValueError("trace contains negative gaps")
        if arr.sum() <= 0:
            raise ValueError("trace gaps sum to zero; rate would be infinite")
        self._gaps = arr
        self._index = 0

    def next_gap(self, rng: np.random.Generator) -> float:
        value = float(self._gaps[self._index])
        self._index = (self._index + 1) % len(self._gaps)
        return value

    @property
    def mean_rate(self) -> float:
        return len(self._gaps) / float(self._gaps.sum())
