"""Closed-loop load generation.

The paper's evaluation (and this repository's default) is *open-loop*:
arrivals never wait for the server, which is the right methodology for
tail-latency studies.  Real clients, however, are often closed-loop --
each holds a bounded number of outstanding requests and thinks between
them -- and closed-loop load is self-throttling: offered load collapses
exactly when the server slows down, hiding tail pathologies.

:class:`ClosedLoopGenerator` models ``n_clients`` independent clients,
each cycling request -> response -> think time -> next request.  It
exists so users can quantify how much an open-loop tail measurement
would be *underestimated* by a closed-loop harness (a classic
methodology trap this library makes easy to demonstrate).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.schedulers.base import RpcSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request, RequestKind
from repro.workload.service import ServiceDistribution


class ClosedLoopGenerator:
    """``n_clients`` clients, one outstanding request each.

    Attach to a system *before* starting: the generator registers a
    completion hook to learn when each of its requests finishes, then
    schedules the owning client's next request after its think time.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        system: RpcSystem,
        service: ServiceDistribution,
        n_clients: int,
        n_requests: int,
        think_ns: float = 0.0,
        size_bytes: int = 300,
        request_factory: Optional[Callable[[Request], None]] = None,
    ) -> None:
        if n_clients <= 0:
            raise ValueError(f"need at least one client, got {n_clients}")
        if n_requests < n_clients:
            raise ValueError(
                f"n_requests ({n_requests}) must cover one round of "
                f"{n_clients} clients"
            )
        if think_ns < 0:
            raise ValueError(f"think time must be >= 0, got {think_ns}")
        self.sim = sim
        self.system = system
        self.service = service
        self.n_clients = int(n_clients)
        self.n_requests = int(n_requests)
        self.think_ns = float(think_ns)
        self.size_bytes = int(size_bytes)
        self.request_factory = request_factory
        self._service_rng = streams.get("closed_loop_service")
        self._think_rng = streams.get("closed_loop_think")
        self._emitted = 0
        self.requests: List[Request] = []
        self._owner_of: dict = {}
        system.completion_hooks.append(self._on_complete)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Issue every client's first request (staggered by 1 ns so the
        initial burst is not one mega-batch)."""
        for client in range(self.n_clients):
            self.sim.schedule(float(client), self._issue, client)

    def _issue(self, client: int) -> None:
        if self._emitted >= self.n_requests:
            return
        request = Request(
            req_id=self._emitted,
            arrival=self.sim.now,
            service_time=self.service.sample(self._service_rng),
            size_bytes=self.size_bytes,
            connection=client,
            kind=RequestKind.GENERIC,
        )
        if self.request_factory is not None:
            self.request_factory(request)
        self._emitted += 1
        self.requests.append(request)
        self._owner_of[request.req_id] = client
        self.system.offer(request)

    def _on_complete(self, request: Request) -> None:
        client = self._owner_of.pop(request.req_id, None)
        if client is None:
            return  # not ours (another generator shares the system)
        if self._emitted >= self.n_requests:
            return
        if self.think_ns > 0:
            delay = float(self._think_rng.exponential(self.think_ns))
        else:
            delay = 0.0
        self.sim.schedule(delay, self._issue, client)

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        return self._emitted

    def measured_requests(self) -> List[Request]:
        return [r for r in self.requests if r.completed and not r.dropped]

    def achieved_rate_rps(self) -> float:
        """Client-perceived throughput over the run."""
        done = self.measured_requests()
        if len(done) < 2:
            return 0.0
        span = max(r.finished for r in done) - min(r.arrival for r in done)
        if span <= 0:
            return 0.0
        return len(done) / span * 1e9
