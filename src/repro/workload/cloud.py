"""Synthetic cloud-traffic generation (the paper's [9], approximated).

The paper's "real-world" load generator is a regression model trained
on Azure/Huawei traces [Bergsma et al., SOSP'21] whose defining
properties are (a) rates that wander smoothly over time (temporal
autocorrelation) and (b) short-timescale burstiness.  The MMPP in
:mod:`repro.workload.arrivals` covers (b); this module covers (a):

* :func:`synthesize_rate_series` -- an AR(1) process in log-rate space
  produces a positive, autocorrelated per-interval rate series around a
  target mean (the standard statistical reduction of the SOSP'21
  model's output).
* :class:`RateSeriesArrivals` -- a piecewise-Poisson arrival process
  that follows any rate schedule, with optional per-interval batch
  trains.

Composing the two gives minutes-scale wander on top of Poisson
micro-structure; feeding the schedule into an MMPP-per-segment is a
one-liner for users who want both axes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.workload.arrivals import ArrivalProcess

#: (duration_ns, rate_rps) schedule segments.
RateSegment = Tuple[float, float]


def synthesize_rate_series(
    mean_rate_rps: float,
    n_intervals: int,
    interval_ns: float,
    volatility: float = 0.25,
    correlation: float = 0.9,
    seed: int = 0,
) -> List[RateSegment]:
    """AR(1) log-rate wander around ``mean_rate_rps``.

    ``volatility`` is the stationary standard deviation of log-rate
    (0.25 => rates typically within ~0.6-1.6x the mean); ``correlation``
    is the per-interval AR coefficient (0.9 at 1 ms intervals gives a
    ~10 ms correlation time, the temporal structure the paper's
    regression model encodes).
    """
    if mean_rate_rps <= 0:
        raise ValueError(f"mean rate must be positive, got {mean_rate_rps}")
    if n_intervals <= 0:
        raise ValueError(f"need at least one interval, got {n_intervals}")
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    if volatility < 0:
        raise ValueError(f"volatility must be >= 0, got {volatility}")
    if not 0 <= correlation < 1:
        raise ValueError(f"correlation must be in [0,1), got {correlation}")
    rng = np.random.default_rng(seed)
    # Innovation scale for the desired stationary std.
    innovation = volatility * np.sqrt(1.0 - correlation**2)
    log_offset = 0.0
    segments: List[RateSegment] = []
    # Mean-correct so E[rate] ~= mean_rate (lognormal correction).
    correction = np.exp(-(volatility**2) / 2.0)
    for _ in range(n_intervals):
        log_offset = correlation * log_offset + float(
            rng.normal(0.0, innovation)
        )
        rate = mean_rate_rps * correction * float(np.exp(log_offset))
        segments.append((interval_ns, rate))
    return segments


class RateSeriesArrivals(ArrivalProcess):
    """Piecewise-Poisson arrivals following a rate schedule.

    The schedule cycles when exhausted, so any finite series drives an
    arbitrarily long run.  Within each segment arrivals are Poisson at
    that segment's rate; segment boundaries are handled exactly (an
    exponential gap that would overshoot the segment is re-drawn from
    the next segment's rate for the remaining time, preserving the
    Poisson property piecewise).
    """

    def __init__(self, segments: Sequence[RateSegment]) -> None:
        if not segments:
            raise ValueError("need at least one rate segment")
        for duration, rate in segments:
            if duration <= 0:
                raise ValueError(f"segment duration must be positive: {duration}")
            if rate <= 0:
                raise ValueError(f"segment rate must be positive: {rate}")
        self.segments = list(segments)
        self._index = 0
        self._left_ns = self.segments[0][0]

    def _advance_segment(self) -> None:
        self._index = (self._index + 1) % len(self.segments)
        self._left_ns = self.segments[self._index][0]

    def next_gap(self, rng: np.random.Generator) -> float:
        gap = 0.0
        while True:
            rate_rps = self.segments[self._index][1]
            candidate = float(rng.exponential(1e9 / rate_rps))
            if candidate <= self._left_ns:
                self._left_ns -= candidate
                return gap + candidate
            # No arrival before the segment ends; carry the elapsed time
            # into the next segment (memorylessness makes this exact).
            gap += self._left_ns
            self._advance_segment()

    @property
    def mean_rate(self) -> float:
        total_time = sum(d for d, _ in self.segments)
        total_arrivals = sum(d * r / 1e9 for d, r in self.segments)
        return total_arrivals / total_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RateSeriesArrivals {len(self.segments)} segments, "
                f"{self.mean_rate * 1e3:.2f} KRPS mean>")
