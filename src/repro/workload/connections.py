"""Connection (flow) modelling for RSS-style steering.

Receive Side Scaling hashes a packet's flow tuple to pick a receive
queue, so the *connection mix* determines how balanced RSS is: few hot
connections hash to few queues and skew load (the Fig. 9 "connection"
policy), while many uniform connections approach round-robin balance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class ConnectionPool:
    """Assigns each request a connection id, optionally Zipf-skewed.

    Parameters
    ----------
    n_connections:
        Number of distinct flows in the offered traffic.
    zipf_s:
        Skew exponent.  0 = uniform across connections; larger values
        concentrate traffic on few hot flows, the regime where RSS's
        load-oblivious hashing hurts most.
    """

    def __init__(self, n_connections: int, zipf_s: float = 0.0) -> None:
        if n_connections <= 0:
            raise ValueError(f"need at least one connection, got {n_connections}")
        if zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {zipf_s}")
        self.n_connections = int(n_connections)
        self.zipf_s = float(zipf_s)
        if zipf_s == 0.0:
            self._weights: Optional[np.ndarray] = None
        else:
            ranks = np.arange(1, n_connections + 1, dtype=float)
            weights = ranks**-zipf_s
            self._weights = weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a connection id for the next request."""
        if self._weights is None:
            return int(rng.integers(0, self.n_connections))
        return int(rng.choice(self.n_connections, p=self._weights))

    def sample_many(self, rng: np.random.Generator, n: int) -> "list[int]":
        """Draw ``n`` successive connection ids.

        The uniform case uses one vectorized ``integers`` draw, which
        numpy fills from the same bit stream as repeated scalar draws
        (bit-identical, much cheaper).  The skewed case keeps the
        one-at-a-time ``choice`` path to preserve its exact stream.
        """
        if self._weights is None:
            return rng.integers(0, self.n_connections, size=n).tolist()
        sample = self.sample
        return [sample(rng) for _ in range(n)]

    def hash_to_queue(self, connection: int, n_queues: int) -> int:
        """The RSS hash: a stable mapping from flow id to receive queue.

        Uses a Fibonacci-style multiplicative hash so that consecutive
        connection ids do not trivially stripe across queues (real RSS
        uses Toeplitz hashing of the 5-tuple; only stability and
        pseudo-randomness matter here).
        """
        if n_queues <= 0:
            raise ValueError(f"need at least one queue, got {n_queues}")
        return (connection * 2654435761) % (2**32) % n_queues

    @staticmethod
    def uniform(n_connections: int) -> "ConnectionPool":
        """A pool with no skew (each flow equally likely)."""
        return ConnectionPool(n_connections, zipf_s=0.0)

    @staticmethod
    def skewed(n_connections: int, zipf_s: float = 1.1) -> "ConnectionPool":
        """A hot-flow-dominated pool, stressing RSS imbalance."""
        return ConnectionPool(n_connections, zipf_s=zipf_s)

    def popularity(self) -> Sequence[float]:
        """Per-connection traffic share (descending rank order)."""
        if self._weights is None:
            return [1.0 / self.n_connections] * self.n_connections
        return list(self._weights)
