"""The open-loop load generator.

Drives an :class:`~repro.workload.arrivals.ArrivalProcess` into any sink
with an ``offer(request)`` method (in practice, a NIC model).  Open-loop
means arrivals never block on the server -- the standard methodology for
tail-latency studies, and what the paper's load generator does
(Sec. VII-B).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ArrivalProcess
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request, RequestKind
from repro.workload.service import ServiceDistribution


class LoadGenerator:
    """Generates ``n_requests`` requests into ``sink`` on the simulator.

    Parameters
    ----------
    sim, streams:
        Shared simulation kernel and RNG streams ("arrivals", "service",
        "connections" are drawn from here).
    arrivals, service:
        The stochastic workload definition.
    sink:
        Called as ``sink(request)`` at each arrival instant.
    n_requests:
        Total requests to emit; the generator stops afterwards.
    connections:
        Flow pool for RSS steering; defaults to one flow per request id
        slot (effectively uniform).
    request_factory:
        Optional hook that decorates each request (the MICA workload uses
        it to attach keys and operation kinds).
    warmup_fraction:
        Requests arriving in the first fraction are flagged via
        ``warmup_ids`` so analysis can discard transient behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        arrivals: ArrivalProcess,
        service: ServiceDistribution,
        sink: Callable[[Request], None],
        n_requests: int,
        size_bytes: int = 300,
        connections: Optional[ConnectionPool] = None,
        request_factory: Optional[Callable[[Request], None]] = None,
        warmup_fraction: float = 0.0,
    ) -> None:
        if n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction}")
        self.sim = sim
        self.arrivals = arrivals
        self.service = service
        self.sink = sink
        self.n_requests = int(n_requests)
        self.size_bytes = int(size_bytes)
        self.connections = connections or ConnectionPool(max(n_requests, 1))
        self.request_factory = request_factory
        self.warmup_count = int(n_requests * warmup_fraction)

        self._arrival_rng = streams.get("arrivals")
        self._service_rng = streams.get("service")
        self._conn_rng = streams.get("connections")
        self._emitted = 0
        self.requests: List[Request] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first arrival.  Must be called before ``sim.run``."""
        gap = self.arrivals.next_gap(self._arrival_rng)
        self.sim.schedule(gap, self._emit)

    def _emit(self) -> None:
        req = Request(
            req_id=self._emitted,
            arrival=self.sim.now,
            service_time=self.service.sample(self._service_rng),
            size_bytes=self.size_bytes,
            connection=self.connections.sample(self._conn_rng),
            kind=RequestKind.GENERIC,
        )
        if self.request_factory is not None:
            self.request_factory(req)
        self._emitted += 1
        self.requests.append(req)
        self.sink(req)
        if self._emitted < self.n_requests:
            gap = self.arrivals.next_gap(self._arrival_rng)
            self.sim.schedule(gap, self._emit)

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Requests generated so far."""
        return self._emitted

    @property
    def done(self) -> bool:
        """True once all requests have been emitted."""
        return self._emitted >= self.n_requests

    def measured_requests(self) -> List[Request]:
        """Completed requests past the warmup window (analysis input)."""
        return [
            r
            for r in self.requests[self.warmup_count :]
            if r.completed and not r.dropped
        ]
