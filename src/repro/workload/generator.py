"""The open-loop load generator.

Drives an :class:`~repro.workload.arrivals.ArrivalProcess` into any sink
with an ``offer(request)`` method (in practice, a NIC model).  Open-loop
means arrivals never block on the server -- the standard methodology for
tail-latency studies, and what the paper's load generator does
(Sec. VII-B).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ArrivalProcess
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request
from repro.workload.service import ServiceDistribution

#: Draws are prefetched from each RNG stream in chunks of this size.
#: Batch draws consume the same bit stream as scalar draws (numpy fills
#: arrays sequentially), so prefetching is bit-identical -- it only
#: amortizes the per-call numpy overhead across the chunk.  Chunks are
#: capped at the number of draws the scalar path would make, so total
#: stream consumption is unchanged too.
_RNG_BATCH = 256


class LoadGenerator:
    """Generates ``n_requests`` requests into ``sink`` on the simulator.

    Parameters
    ----------
    sim, streams:
        Shared simulation kernel and RNG streams ("arrivals", "service",
        "connections" are drawn from here).
    arrivals, service:
        The stochastic workload definition.
    sink:
        Called as ``sink(request)`` at each arrival instant.
    n_requests:
        Total requests to emit; the generator stops afterwards.
    connections:
        Flow pool for RSS steering; defaults to one flow per request id
        slot (effectively uniform).
    request_factory:
        Optional hook that decorates each request (the MICA workload uses
        it to attach keys and operation kinds).
    warmup_fraction:
        Requests arriving in the first fraction are flagged via
        ``warmup_ids`` so analysis can discard transient behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        arrivals: ArrivalProcess,
        service: ServiceDistribution,
        sink: Callable[[Request], None],
        n_requests: int,
        size_bytes: int = 300,
        connections: Optional[ConnectionPool] = None,
        request_factory: Optional[Callable[[Request], None]] = None,
        warmup_fraction: float = 0.0,
    ) -> None:
        if n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(f"warmup_fraction must be in [0,1), got {warmup_fraction}")
        self.sim = sim
        self.arrivals = arrivals
        self.service = service
        self.sink = sink
        self.n_requests = int(n_requests)
        self.size_bytes = int(size_bytes)
        self.connections = connections or ConnectionPool(max(n_requests, 1))
        self.request_factory = request_factory
        self.warmup_count = int(n_requests * warmup_fraction)

        self._arrival_rng = streams.get("arrivals")
        self._service_rng = streams.get("service")
        self._conn_rng = streams.get("connections")
        self._emitted = 0
        self.requests: List[Request] = []

        # Per-stream prefetch buffers (see _RNG_BATCH).  Each stream
        # needs exactly n_requests draws over the generator's lifetime.
        self._gap_buf: List[float] = []
        self._gap_i = 0
        self._gap_drawn = 0
        self._svc_buf: List[float] = []
        self._svc_i = 0
        self._svc_drawn = 0
        self._conn_buf: List[int] = []
        self._conn_i = 0
        self._conn_drawn = 0

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        i = self._gap_i
        buf = self._gap_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self.n_requests - self._gap_drawn)
            buf = self._gap_buf = self.arrivals.next_gaps(self._arrival_rng, n)
            self._gap_drawn += n
            i = 0
        self._gap_i = i + 1
        return buf[i]

    def _next_service(self) -> float:
        i = self._svc_i
        buf = self._svc_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self.n_requests - self._svc_drawn)
            buf = self._svc_buf = self.service.sample_many(self._service_rng, n)
            self._svc_drawn += n
            i = 0
        self._svc_i = i + 1
        return buf[i]

    def _next_connection(self) -> int:
        i = self._conn_i
        buf = self._conn_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self.n_requests - self._conn_drawn)
            buf = self._conn_buf = self.connections.sample_many(self._conn_rng, n)
            self._conn_drawn += n
            i = 0
        self._conn_i = i + 1
        return buf[i]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first arrival.  Must be called before ``sim.run``."""
        self.sim.schedule(self._next_gap(), self._emit)

    def _emit(self) -> None:
        req = Request(
            req_id=self._emitted,
            arrival=self.sim.now,
            service_time=self._next_service(),
            size_bytes=self.size_bytes,
            connection=self._next_connection(),
        )
        if self.request_factory is not None:
            self.request_factory(req)
        self._emitted += 1
        self.requests.append(req)
        self.sink(req)
        if self._emitted < self.n_requests:
            self.sim.schedule(self._next_gap(), self._emit)

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Requests generated so far."""
        return self._emitted

    @property
    def done(self) -> bool:
        """True once all requests have been emitted."""
        return self._emitted >= self.n_requests

    def measured_requests(self) -> List[Request]:
        """Completed requests past the warmup window (analysis input)."""
        return [
            r
            for r in self.requests[self.warmup_count :]
            if r.completed and not r.dropped
        ]
