"""Job-structured requests: scatter-gather fan-out and multi-core gangs.

A :class:`Job` owns ``k`` sub-requests.  Two orthogonal axes generalize
the flat one-request/one-core model:

* **Fan-out** (scatter-gather, the tail-at-scale regime of RackSched's
  request model): a job scatters ``k`` sibling sub-requests across the
  fabric at one arrival instant and completes on the *last* response.
  Job latency is the max over siblings, so the job-level tail inflates
  roughly by the harmonic number ``H_k`` relative to a single request
  (see :func:`repro.core.prediction.harmonic_number`).
* **Core demand** (gang admission, per "Zero Queueing for Multi-Server
  Jobs"): a job demands ``c`` cores *simultaneously* for its span.  The
  scheduler holds it at the head of its queue until ``c`` cores are
  idle, then occupies all of them -- the primary sub-request carries the
  work, ``c - 1`` *gang shadows* (see :func:`make_gang_shadow`) occupy
  the remaining cores for exactly the same span.

Compilation contract: a trivial :class:`JobShape` (fan-out 1, demand 1)
compiles down to today's flat ``Request`` path -- ``run_workload``
bypasses this module entirely, drawing nothing from the ``"jobs"``
stream, so existing runs stay bit-identical.

Determinism: all job shapes are pre-drawn from the dedicated ``"jobs"``
RNG stream at generator construction (one batch for fan-outs, one for
core demands), so the workload streams ("arrivals", "service",
"connections") see exactly the draw sequence the flat generator would
see for the same number of emissions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ArrivalProcess
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request
from repro.workload.service import ServiceDistribution

#: Gang shadows get req_ids derived from the primary's id at this
#: stride, so a shadow id can never collide with another primary's
#: shadows; it also bounds the per-job core demand.
GANG_SHADOW_STRIDE = 64

#: Parent-job trace marks live in their own id space, far above both
#: generator req_ids and the retry client's attempt ids (2**32), so
#: per-request and per-job telescoping spans never collide.
JOB_TRACE_ID_BASE = 2**33

#: Batch size for prefetching per-stream draws (mirrors the flat
#: generator's ``_RNG_BATCH``; stream-exact, see generator.py).
_RNG_BATCH = 256


# ----------------------------------------------------------------------
# Degree distributions
# ----------------------------------------------------------------------
class DegreeDistribution(abc.ABC):
    """An integer-valued distribution for fan-out / core-demand degrees.

    Separate from :class:`~repro.workload.service.ServiceDistribution`
    because degrees are small positive integers drawn once per *job*
    (not per sub-request) from the dedicated ``"jobs"`` stream.
    """

    @abc.abstractmethod
    def sample_many(self, rng: np.random.Generator, n: int) -> List[int]:
        """Draw ``n`` degrees (consumes the stream iff non-degenerate)."""

    @property
    @abc.abstractmethod
    def max_value(self) -> int:
        """Largest degree this distribution can produce."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected degree."""


class FixedDegree(DegreeDistribution):
    """Every job gets the same degree.  Draws nothing from the stream,
    so ``FixedDegree(1)`` is exactly the flat-request model."""

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"degree must be >= 1, got {k}")
        self.k = int(k)

    def sample_many(self, rng: np.random.Generator, n: int) -> List[int]:
        return [self.k] * n

    @property
    def max_value(self) -> int:
        return self.k

    @property
    def mean(self) -> float:
        return float(self.k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedDegree({self.k})"


class ChoiceDegree(DegreeDistribution):
    """Degrees drawn from a finite weighted support (one draw per job)."""

    def __init__(
        self,
        values: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not values:
            raise ValueError("need at least one degree value")
        self.values = tuple(int(v) for v in values)
        if any(v < 1 for v in self.values):
            raise ValueError(f"degrees must be >= 1, got {self.values}")
        if weights is None:
            self.weights: Tuple[float, ...] = tuple(
                1.0 / len(self.values) for _ in self.values
            )
        else:
            if len(weights) != len(values):
                raise ValueError("weights must match values in length")
            total = float(sum(weights))
            if total <= 0 or any(w < 0 for w in weights):
                raise ValueError(f"weights must be non-negative, got {weights}")
            self.weights = tuple(float(w) / total for w in weights)

    def sample_many(self, rng: np.random.Generator, n: int) -> List[int]:
        idx = rng.choice(len(self.values), size=n, p=list(self.weights))
        return [self.values[int(i)] for i in idx]

    @property
    def max_value(self) -> int:
        return max(self.values)

    @property
    def mean(self) -> float:
        return float(sum(v * w for v, w in zip(self.values, self.weights)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChoiceDegree({self.values}, {self.weights})"


class UniformDegree(DegreeDistribution):
    """Degrees uniform on the integers ``[lo, hi]`` (one draw per job)."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo < 1 or hi < lo:
            raise ValueError(f"need 1 <= lo <= hi, got [{lo}, {hi}]")
        self.lo = int(lo)
        self.hi = int(hi)

    def sample_many(self, rng: np.random.Generator, n: int) -> List[int]:
        return [int(v) for v in rng.integers(self.lo, self.hi + 1, size=n)]

    @property
    def max_value(self) -> int:
        return self.hi

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformDegree({self.lo}, {self.hi})"


# ----------------------------------------------------------------------
# Job shape (workload-level configuration)
# ----------------------------------------------------------------------
@dataclass
class JobShape:
    """Declarative job structure attached to a workload.

    Attributes
    ----------
    fanout:
        Sub-requests per job (scatter-gather width).  The job completes
        when the *last* sibling terminates.
    core_demand:
        Cores each sub-request occupies simultaneously (gang width).
        Demands above 1 require a gang-capable scheduler
        (:func:`system_supports_gang`).
    sibling_connections:
        ``"shared"`` -- all siblings of a job carry the job's one flow
        id, so hash steering pins the whole scatter to one destination
        (the tail-at-scale blow-up case); ``"distinct"`` -- each sibling
        draws its own flow id, so even hash steering spreads them.
    """

    fanout: DegreeDistribution = field(default_factory=FixedDegree)
    core_demand: DegreeDistribution = field(default_factory=FixedDegree)
    sibling_connections: str = "shared"

    def __post_init__(self) -> None:
        if self.sibling_connections not in ("shared", "distinct"):
            raise ValueError(
                "sibling_connections must be 'shared' or 'distinct', "
                f"got {self.sibling_connections!r}"
            )
        if self.core_demand.max_value > GANG_SHADOW_STRIDE:
            raise ValueError(
                f"core demand {self.core_demand.max_value} exceeds the "
                f"gang-width limit {GANG_SHADOW_STRIDE}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when every job is one sub-request on one core -- the
        shape that compiles down to the flat ``Request`` path."""
        return (
            isinstance(self.fanout, FixedDegree)
            and self.fanout.k == 1
            and isinstance(self.core_demand, FixedDegree)
            and self.core_demand.k == 1
        )


# ----------------------------------------------------------------------
# Job record
# ----------------------------------------------------------------------
class Job:
    """One job and its lifecycle: ``fanout`` sub-requests scattered at
    ``arrival``, complete at the last sibling's terminal.

    Ducks the measurement interface of :class:`Request` (``completed``,
    ``dropped``, ``finished``, ``arrival``) so the latency summarizers
    in :mod:`repro.analysis.metrics` work on job lists unchanged.
    """

    __slots__ = (
        "job_id", "arrival", "fanout", "core_demand", "connection",
        "sub_ids", "terminals", "failed_subs", "finished",
    )

    def __init__(
        self,
        job_id: int,
        arrival: float,
        fanout: int,
        core_demand: int,
        connection: int,
        sub_ids: Tuple[int, ...],
    ) -> None:
        self.job_id = job_id
        self.arrival = arrival
        self.fanout = fanout
        self.core_demand = core_demand
        self.connection = connection
        self.sub_ids = sub_ids
        #: Siblings that reached a terminal state (completed or dropped).
        self.terminals = 0
        #: Siblings that terminated without completing.
        self.failed_subs = 0
        #: Time of the last sibling terminal, once all arrived.
        self.finished: Optional[float] = None

    @property
    def dropped(self) -> bool:
        """A job is dropped iff any sibling failed (all-or-nothing)."""
        return self.finished is not None and self.failed_subs > 0

    @property
    def completed(self) -> bool:
        return self.finished is not None and self.failed_subs == 0

    @property
    def latency(self) -> float:
        """Job latency: first scatter to last sibling response, in ns."""
        if self.finished is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finished - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = (
            "done" if self.completed
            else ("dropped" if self.dropped else "open")
        )
        return (
            f"<Job #{self.job_id} k={self.fanout} c={self.core_demand} "
            f"{self.terminals}/{self.fanout} {status}>"
        )


class JobTracker:
    """Maps sub-request terminals back to their jobs.

    Fault-free runs attach via the system's completion/drop hooks (one
    terminal per sub-request, exactly).  Faulted runs attach via
    :attr:`RetryClient.logical_hooks` instead -- each sub-request is an
    independent logical request there, with its own timeout/retry/dedup
    lifecycle, and the client's logical verdict is the sub-terminal.

    Telemetry: when tracing is on, the tracker emits parent-job spans
    under ``JOB_TRACE_ID_BASE + job_id`` -- a ``job_scatter`` mark at
    arrival, one ``sub_response`` per sibling terminal, ``job_complete``
    at the last -- whose telescoping spans sum exactly to job latency.
    """

    def __init__(self, sim: Simulator, trace=None) -> None:
        from repro.telemetry import NULL_SINK

        self.sim = sim
        self.trace = trace if trace is not None else NULL_SINK
        self.jobs: List[Job] = []
        self._by_sub = {}

    # ------------------------------------------------------------------
    def register(self, job: Job) -> None:
        self.jobs.append(job)
        for sub_id in job.sub_ids:
            self._by_sub[sub_id] = job
        trace = self.trace
        if trace.enabled and trace.sampled(JOB_TRACE_ID_BASE + job.job_id):
            trace.mark(
                JOB_TRACE_ID_BASE + job.job_id, "job_scatter", job.arrival
            )

    def attach_system(self, system) -> None:
        """Observe sub-request terminals on the fault-free path."""
        system.completion_hooks.append(self._on_sub_completed)
        system.drop_hooks.append(self._on_sub_dropped)

    def attach_client(self, client) -> None:
        """Observe per-sub-request logical verdicts under faults."""
        client.logical_hooks.append(self._on_sub_logical)

    # ------------------------------------------------------------------
    def _on_sub_completed(self, request: Request) -> None:
        self._sub_terminal(request.req_id, ok=True)

    def _on_sub_dropped(self, request: Request) -> None:
        self._sub_terminal(request.req_id, ok=False)

    def _on_sub_logical(self, request: Request, succeeded: bool) -> None:
        self._sub_terminal(request.req_id, ok=succeeded)

    def _sub_terminal(self, sub_id: int, ok: bool) -> None:
        job = self._by_sub.get(sub_id)
        if job is None:
            return  # not a tracked sub-request (e.g. synthetic test traffic)
        job.terminals += 1
        if not ok:
            job.failed_subs += 1
        now = self.sim.now
        trace = self.trace
        tracing = trace.enabled and trace.sampled(
            JOB_TRACE_ID_BASE + job.job_id
        )
        if tracing:
            trace.mark(JOB_TRACE_ID_BASE + job.job_id, "sub_response", now)
        if job.terminals >= job.fanout:
            job.finished = now
            if tracing:
                trace.mark(JOB_TRACE_ID_BASE + job.job_id, "job_complete", now)

    # ------------------------------------------------------------------
    @property
    def completed_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.completed)

    @property
    def dropped_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.dropped)


# ----------------------------------------------------------------------
# Job-structured load generation
# ----------------------------------------------------------------------
class JobLoadGenerator:
    """Open-loop generator that scatters whole jobs into ``sink``.

    One arrival-gap draw and (with shared sibling connections) one flow
    draw per *job*; one service draw per *sub-request*; all siblings are
    offered at the same arrival instant.  ``n_jobs`` counts jobs, and
    :attr:`total_subrequests` (known at construction, since all shapes
    are pre-drawn from the ``"jobs"`` stream) is what the system's
    ``expect()`` must be armed with.

    Duck-compatible with :class:`~repro.workload.generator.LoadGenerator`
    where ``run_workload`` needs it (``start``, ``requests``,
    ``measured_requests``).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        arrivals: ArrivalProcess,
        service: ServiceDistribution,
        sink: Callable[[Request], None],
        n_jobs: int,
        shape: JobShape,
        tracker: JobTracker,
        size_bytes: int = 300,
        connections: Optional[ConnectionPool] = None,
        request_factory: Optional[Callable[[Request], None]] = None,
        warmup_fraction: float = 0.0,
    ) -> None:
        if n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must be in [0,1), got {warmup_fraction}"
            )
        self.sim = sim
        self.arrivals = arrivals
        self.service = service
        self.sink = sink
        self.n_jobs = int(n_jobs)
        self.shape = shape
        self.tracker = tracker
        self.size_bytes = int(size_bytes)
        self.request_factory = request_factory
        self.warmup_jobs = int(n_jobs * warmup_fraction)

        # All job shapes come from the dedicated "jobs" stream, drawn
        # up-front: total_subrequests is then known before the first
        # arrival, which expect() needs, and the workload streams are
        # consumed in exactly the per-draw order documented above.
        jobs_rng = streams.get("jobs")
        self._fanouts = shape.fanout.sample_many(jobs_rng, self.n_jobs)
        self._demands = shape.core_demand.sample_many(jobs_rng, self.n_jobs)
        self.total_subrequests = int(sum(self._fanouts))

        self._shared_conn = shape.sibling_connections == "shared"
        conn_draws = self.n_jobs if self._shared_conn else self.total_subrequests
        self.connections = connections or ConnectionPool(max(conn_draws, 1))
        self._conn_draws = conn_draws

        self._arrival_rng = streams.get("arrivals")
        self._service_rng = streams.get("service")
        self._conn_rng = streams.get("connections")
        self._emitted_jobs = 0
        self._next_req_id = 0
        self.jobs: List[Job] = []
        self.requests: List[Request] = []

        # Per-stream prefetch buffers (stream-exact batching; see
        # generator._RNG_BATCH).
        self._gap_buf: List[float] = []
        self._gap_i = 0
        self._gap_drawn = 0
        self._svc_buf: List[float] = []
        self._svc_i = 0
        self._svc_drawn = 0
        self._conn_buf: List[int] = []
        self._conn_i = 0
        self._conn_drawn = 0

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        i = self._gap_i
        buf = self._gap_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self.n_jobs - self._gap_drawn)
            buf = self._gap_buf = self.arrivals.next_gaps(self._arrival_rng, n)
            self._gap_drawn += n
            i = 0
        self._gap_i = i + 1
        return buf[i]

    def _next_service(self) -> float:
        i = self._svc_i
        buf = self._svc_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self.total_subrequests - self._svc_drawn)
            buf = self._svc_buf = self.service.sample_many(self._service_rng, n)
            self._svc_drawn += n
            i = 0
        self._svc_i = i + 1
        return buf[i]

    def _next_connection(self) -> int:
        i = self._conn_i
        buf = self._conn_buf
        if i >= len(buf):
            n = min(_RNG_BATCH, self._conn_draws - self._conn_drawn)
            buf = self._conn_buf = self.connections.sample_many(
                self._conn_rng, n
            )
            self._conn_drawn += n
            i = 0
        self._conn_i = i + 1
        return buf[i]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first scatter.  Must be called before ``sim.run``."""
        self.sim.schedule(self._next_gap(), self._emit)

    def _emit(self) -> None:
        j = self._emitted_jobs
        k = self._fanouts[j]
        demand = self._demands[j]
        now = self.sim.now
        shared_conn = self._next_connection() if self._shared_conn else None
        first_id = self._next_req_id
        self._next_req_id += k
        job = Job(
            job_id=j,
            arrival=now,
            fanout=k,
            core_demand=demand,
            connection=shared_conn if shared_conn is not None else first_id,
            sub_ids=tuple(range(first_id, first_id + k)),
        )
        self.jobs.append(job)
        self.tracker.register(job)
        for i in range(k):
            req = Request(
                req_id=first_id + i,
                arrival=now,
                service_time=self._next_service(),
                size_bytes=self.size_bytes,
                connection=(
                    shared_conn
                    if shared_conn is not None
                    else self._next_connection()
                ),
                job_id=j,
                fanout=k,
                sibling_index=i,
                core_demand=demand,
            )
            if self.request_factory is not None:
                self.request_factory(req)
            self.requests.append(req)
            self.sink(req)
        self._emitted_jobs += 1
        if self._emitted_jobs < self.n_jobs:
            self.sim.schedule(self._next_gap(), self._emit)

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Jobs generated so far."""
        return self._emitted_jobs

    @property
    def done(self) -> bool:
        return self._emitted_jobs >= self.n_jobs

    def measured_requests(self) -> List[Request]:
        """Completed sub-requests of post-warmup jobs (analysis input)."""
        warmup = self.warmup_jobs
        return [
            r
            for r in self.requests
            if r.job_id is not None
            and r.job_id >= warmup
            and r.completed
            and not r.dropped
        ]

    def measured_jobs(self) -> List[Job]:
        """Completed jobs past the warmup window (job-level analysis)."""
        return [j for j in self.jobs[self.warmup_jobs:] if j.completed]


# ----------------------------------------------------------------------
# Gang shadows
# ----------------------------------------------------------------------
def make_gang_shadow(primary: Request, index: int) -> Request:
    """A placeholder occupying one secondary core of a gang.

    The shadow runs for exactly the primary's service time but is fenced
    out of system-level accounting (``gang_shadow`` short-circuits
    ``RpcSystem._request_completed``): stats, hooks, latency histograms
    and run termination only ever see the primary.  Shadow req_ids are
    negative and derived from the primary at :data:`GANG_SHADOW_STRIDE`,
    so they are distinct per (primary, slot) and can never collide with
    generator or retry-attempt ids.
    """
    if not 1 <= index < GANG_SHADOW_STRIDE:
        raise ValueError(
            f"gang shadow index must be in [1, {GANG_SHADOW_STRIDE}), "
            f"got {index}"
        )
    shadow = Request(
        req_id=-((primary.req_id + 1) * GANG_SHADOW_STRIDE + index),
        arrival=primary.arrival,
        service_time=primary.service_time,
        size_bytes=primary.size_bytes,
        connection=primary.connection,
        job_id=primary.job_id,
        fanout=primary.fanout,
        sibling_index=primary.sibling_index,
        core_demand=primary.core_demand,
        gang_shadow=True,
    )
    shadow.enqueued = primary.enqueued
    return shadow


def system_supports_gang(system) -> bool:
    """True when ``system`` (recursively, for cluster/datacenter tiers)
    admits multi-core gang jobs -- every leaf scheduler must declare
    ``supports_gang``."""
    if getattr(system, "supports_gang", False):
        return True
    members = getattr(system, "servers", None)
    if members:
        return all(system_supports_gang(member) for member in members)
    return False


__all__ = [
    "GANG_SHADOW_STRIDE",
    "JOB_TRACE_ID_BASE",
    "DegreeDistribution",
    "FixedDegree",
    "ChoiceDegree",
    "UniformDegree",
    "JobShape",
    "Job",
    "JobTracker",
    "JobLoadGenerator",
    "make_gang_shadow",
    "system_supports_gang",
]
