"""The RPC request record.

A :class:`Request` is the unit of work that flows NIC -> queue -> core.
It doubles as the measurement record: the analysis package reads its
timestamps after the simulation ends.  Latency is *server-side* exactly
as the paper measures it (Sec. VII-B): from NIC arrival to the moment
response buffers are freed on completion.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

#: Requests are allocated millions of times per sweep, so the record is
#: slotted wherever the runtime supports it (``dataclass(slots=True)``
#: needs Python 3.10).  Slots shave both allocation time and per-request
#: memory; behavior is identical either way.
_SLOTTED = {"slots": True} if sys.version_info >= (3, 10) else {}


class RequestKind(enum.Enum):
    """Application-level operation carried by the RPC."""

    GENERIC = "generic"
    GET = "get"
    SET = "set"
    SCAN = "scan"
    DELETE = "delete"


@dataclass(**_SLOTTED)
class Request:
    """One RPC request and its lifecycle timestamps (all in ns).

    Attributes
    ----------
    req_id:
        Monotonically increasing identity, assigned by the load generator.
    arrival:
        Time the request reached the NIC (start of the latency clock).
    service_time:
        Intrinsic on-core processing time, drawn from the workload's
        service distribution (or derived from the KVS operation).
    size_bytes:
        Wire size of the request; drives PCIe / NIC transfer costs.
    connection:
        Flow identity used by RSS-style hashing.
    kind / key:
        Application payload for the MICA end-to-end experiments.
    enqueued / started / finished:
        Set by the scheduler/core as the request progresses.  ``started``
        is the *first* time the request occupied a core (preemption does
        not reset it).
    queue_len_at_arrival:
        Length of the queue the request joined, sampled at arrival --
        the predictor variable of the Fig. 7 threshold study.
    logical_id / attempt / server_id:
        Fault-injection lineage: the originating logical request id, the
        retry attempt number (0 = original send), and the rack server
        this attempt was delivered to.  All unset outside fault runs.
    migrations:
        Number of times an Altocumulus MIGRATE moved this request.
    steals:
        Number of times work stealing moved this request (ZygOS model).
    no_migration_eta:
        Counterfactual completion-time estimate captured at migration
        time; enables the Fig. 12 effectiveness breakdown.
    extra_latency:
        Added on-core overhead (preemption switches, remote EREW
        accesses, ...) accumulated during execution.
    job_id / fanout / sibling_index:
        Job structure (:mod:`repro.workload.jobs`): the owning job, its
        scatter-gather width, and this sub-request's position in it.
        All unset (``job_id is None``, ``fanout == 1``) for flat
        requests -- the compiled-down single-sub-request case.
    core_demand:
        Cores this request occupies simultaneously (gang width); 1 for
        everything outside multi-core-job workloads.
    gang_shadow:
        True for the placeholder requests occupying a gang's secondary
        cores; fenced out of all system-level accounting.
    """

    req_id: int
    arrival: float
    service_time: float
    size_bytes: int = 300
    connection: int = 0
    kind: RequestKind = RequestKind.GENERIC
    key: Optional[bytes] = None
    value: Optional[bytes] = None

    enqueued: Optional[float] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    core_id: Optional[int] = None
    group_id: Optional[int] = None
    queue_len_at_arrival: Optional[int] = None
    logical_id: Optional[int] = None
    attempt: int = 0
    server_id: Optional[int] = None
    migrations: int = 0
    steals: int = 0
    dropped: bool = False
    no_migration_eta: Optional[float] = None
    extra_latency: float = 0.0
    remaining: float = field(default=0.0)
    app_result: Any = None
    job_id: Optional[int] = None
    fanout: int = 1
    sibling_index: int = 0
    core_demand: int = 1
    gang_shadow: bool = False

    def __post_init__(self) -> None:
        if self.service_time < 0:
            raise ValueError(f"service time must be >= 0, got {self.service_time}")
        self.remaining = self.service_time

    # ------------------------------------------------------------------
    # Derived measurements
    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        """Server-side latency (NIC arrival -> buffers freed), in ns."""
        if self.finished is None:
            raise ValueError(f"request {self.req_id} has not finished")
        return self.finished - self.arrival

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting before first occupying a core, in ns."""
        if self.started is None:
            raise ValueError(f"request {self.req_id} never started")
        return self.started - self.arrival

    @property
    def completed(self) -> bool:
        return self.finished is not None

    def violates(self, slo_ns: float) -> bool:
        """Did this request exceed the SLO latency target?"""
        return self.completed and self.latency > slo_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.completed else ("dropped" if self.dropped else "open")
        return (
            f"<Request #{self.req_id} {self.kind.value} "
            f"arr={self.arrival:.0f} svc={self.service_time:.0f} {status}>"
        )
