"""Service-time distributions.

The evaluation uses the canonical distribution set from the RPC
scheduling literature (Sec. IV-A, Sec. VIII-A):

* :class:`Fixed` -- deterministic service time (e.g. 850 ns eRPC
  requests in Fig. 13a).
* :class:`Uniform` -- uniform over an interval around the mean.
* :class:`Bimodal` -- the high-dispersion short/long mix, e.g.
  99.5% x 0.5 us GET/SET and 0.5% x 500 us SCAN in Fig. 10.
* :class:`Exponential` / :class:`Lognormal` -- used in sensitivity and
  calibration studies.
* :class:`TraceService` -- replay of recorded service times.

Each distribution exposes its analytic ``mean`` so SLO targets (L x mean)
and offered load (lambda x mean / k) can be computed without sampling.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np


class ServiceDistribution(abc.ABC):
    """Samples per-request on-core service times (ns)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time in nanoseconds."""

    def sample_many(self, rng: np.random.Generator, n: int) -> "list[float]":
        """Draw ``n`` successive service times.

        The default is exactly ``n`` :meth:`sample` calls, so values and
        RNG stream consumption match one-at-a-time draws.  Distributions
        backed by a single numpy call override this with a vectorized
        draw, which numpy fills from the same bit stream -- identical
        values, far less per-call overhead.
        """
        sample = self.sample
        return [sample(rng) for _ in range(n)]

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean service time in nanoseconds."""

    @property
    def squared_cv(self) -> float:
        """Squared coefficient of variation (variance / mean^2).

        Defaults to a Monte-Carlo estimate; subclasses with closed forms
        override it.  Used by the queueing-theoretic threshold model to
        adjust for non-Markovian service.
        """
        rng = np.random.default_rng(12345)
        samples = np.array([self.sample(rng) for _ in range(20000)])
        m = samples.mean()
        if m == 0:
            return 0.0
        return float(samples.var() / (m * m))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} mean={self.mean:.1f}ns>"


class Fixed(ServiceDistribution):
    """Deterministic service time."""

    def __init__(self, value_ns: float) -> None:
        if value_ns < 0:
            raise ValueError(f"service time must be >= 0, got {value_ns}")
        self.value_ns = float(value_ns)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value_ns

    def sample_many(self, rng: np.random.Generator, n: int) -> "list[float]":
        return [self.value_ns] * n

    @property
    def mean(self) -> float:
        return self.value_ns

    @property
    def squared_cv(self) -> float:
        return 0.0


class Uniform(ServiceDistribution):
    """Uniform service time over ``[low_ns, high_ns]``."""

    def __init__(self, low_ns: float, high_ns: float) -> None:
        if not 0 <= low_ns <= high_ns:
            raise ValueError(f"need 0 <= low <= high, got [{low_ns}, {high_ns}]")
        self.low_ns = float(low_ns)
        self.high_ns = float(high_ns)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_ns, self.high_ns))

    @property
    def mean(self) -> float:
        return (self.low_ns + self.high_ns) / 2.0

    @property
    def squared_cv(self) -> float:
        m = self.mean
        if m == 0:
            return 0.0
        var = (self.high_ns - self.low_ns) ** 2 / 12.0
        return var / (m * m)


class Bimodal(ServiceDistribution):
    """Short/long mix: ``short_ns`` w.p. ``1 - long_fraction`` else ``long_ns``.

    The Fig. 10 configuration is ``Bimodal(500, 500_000, 0.005)``:
    99.5% of requests take 0.5 us and 0.5% take 500 us.
    """

    def __init__(self, short_ns: float, long_ns: float, long_fraction: float) -> None:
        if not 0 <= long_fraction <= 1:
            raise ValueError(f"long_fraction must be in [0,1], got {long_fraction}")
        if short_ns < 0 or long_ns < 0:
            raise ValueError("service times must be >= 0")
        self.short_ns = float(short_ns)
        self.long_ns = float(long_ns)
        self.long_fraction = float(long_fraction)

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.long_fraction:
            return self.long_ns
        return self.short_ns

    @property
    def mean(self) -> float:
        p = self.long_fraction
        return (1.0 - p) * self.short_ns + p * self.long_ns

    @property
    def squared_cv(self) -> float:
        p = self.long_fraction
        m = self.mean
        if m == 0:
            return 0.0
        second_moment = (1.0 - p) * self.short_ns**2 + p * self.long_ns**2
        return (second_moment - m * m) / (m * m)


class Exponential(ServiceDistribution):
    """Memoryless service time with the given mean."""

    def __init__(self, mean_ns: float) -> None:
        if mean_ns <= 0:
            raise ValueError(f"mean must be positive, got {mean_ns}")
        self.mean_ns = float(mean_ns)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_ns))

    def sample_many(self, rng: np.random.Generator, n: int) -> "list[float]":
        return rng.exponential(self.mean_ns, size=n).tolist()

    @property
    def mean(self) -> float:
        return self.mean_ns

    @property
    def squared_cv(self) -> float:
        return 1.0


class Lognormal(ServiceDistribution):
    """Lognormal service time parameterised by mean and sigma of log-space.

    Heavy-tailed but not bimodal; used in calibration/ablation studies.
    """

    def __init__(self, mean_ns: float, sigma: float = 1.0) -> None:
        if mean_ns <= 0:
            raise ValueError(f"mean must be positive, got {mean_ns}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.mean_ns = float(mean_ns)
        self.sigma = float(sigma)
        # Choose mu so that E[X] = exp(mu + sigma^2/2) equals mean_ns.
        self._mu = math.log(mean_ns) - sigma * sigma / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    @property
    def mean(self) -> float:
        return self.mean_ns

    @property
    def squared_cv(self) -> float:
        return math.exp(self.sigma * self.sigma) - 1.0


class TraceService(ServiceDistribution):
    """Replays a recorded sequence of service times, cycling if exhausted."""

    def __init__(self, samples_ns: Sequence[float]) -> None:
        if len(samples_ns) == 0:
            raise ValueError("trace must contain at least one sample")
        arr = np.asarray(samples_ns, dtype=float)
        if (arr < 0).any():
            raise ValueError("trace contains negative service times")
        self._samples = arr
        self._index = 0

    def sample(self, rng: np.random.Generator) -> float:
        value = float(self._samples[self._index])
        self._index = (self._index + 1) % len(self._samples)
        return value

    @property
    def mean(self) -> float:
        return float(self._samples.mean())

    @property
    def squared_cv(self) -> float:
        m = self.mean
        if m == 0:
            return 0.0
        return float(self._samples.var() / (m * m))
