"""Multi-tenant traffic classes: production-shaped load for the fabric.

A datacenter fabric never serves one uniform request stream: it serves
*tenants*, each with its own traffic share, latency SLO, key-popularity
skew, and connection count.  This module models that mix declaratively:

* :class:`TenantClass` -- one tenant's traffic contract (share of the
  offered load, SLO target, Zipf skew over its own flows, how many
  logical connections it keeps open).
* :class:`TenantMix` -- a validated set of tenant classes.  It owns the
  partition of the global connection-id space into contiguous per-tenant
  blocks, so a request's tenant is recoverable from its ``connection``
  field alone (``tenant_of``) -- no per-request tagging, no new fields
  on the hot-path :class:`~repro.workload.request.Request`.
* :class:`TenantConnectionPool` -- a drop-in
  :class:`~repro.workload.connections.ConnectionPool` that first picks a
  tenant by traffic share, then a flow within the tenant by its own Zipf
  law.  Both picks are folded into **one** uniform draw per request
  (inverse-CDF in both stages), so the pool consumes exactly one stream
  value per request regardless of tenant count -- the same
  chunk-invariant determinism contract the base pool's batched sampling
  relies on -- and scales to millions of logical connections because
  sampling is a binary search, never a linear scan.
* :class:`SuperposedArrivals` -- the merge of per-tenant arrival
  processes into one aggregate :class:`~repro.workload.arrivals.ArrivalProcess`
  (e.g. one bursty MMPP tenant riding on Poisson background tenants).
* :func:`tenant_slo_summary` -- per-tenant SLO attainment and latency
  percentiles over a finished request set, the accounting the
  datacenter tier folds into ``stats.extra``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.workload.arrivals import ArrivalProcess
from repro.workload.connections import ConnectionPool
from repro.workload.request import Request

#: Tenant names become metric-name segments (``tenant.<name>.slo_met``),
#: so they must be valid lowercase identifiers.
_TENANT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class TenantClass:
    """One tenant's traffic contract.

    Attributes
    ----------
    name:
        Lowercase identifier; doubles as the metric namespace segment.
    share:
        Fraction of the offered load this tenant contributes, in (0, 1].
        A mix's shares must sum to 1.
    slo_ns:
        The tenant's latency SLO target (attainment = fraction of its
        completed requests at or under this).
    zipf_s:
        Key/flow skew *within* the tenant: 0 = uniform over its
        connections, larger = hot-flow dominated (same convention as
        :class:`~repro.workload.connections.ConnectionPool`).
    n_connections:
        Logical connections the tenant keeps open.  Only a cumulative
        weight array scales with this, so millions are fine.
    """

    name: str
    share: float
    slo_ns: float
    zipf_s: float = 0.0
    n_connections: int = 1024

    def __post_init__(self) -> None:
        if not _TENANT_NAME_RE.match(self.name):
            raise ValueError(
                f"tenant name {self.name!r} must match {_TENANT_NAME_RE.pattern}"
            )
        if not 0 < self.share <= 1:
            raise ValueError(f"share must be in (0, 1], got {self.share}")
        if self.slo_ns <= 0:
            raise ValueError(f"slo_ns must be positive, got {self.slo_ns}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if self.n_connections <= 0:
            raise ValueError(
                f"need at least one connection, got {self.n_connections}"
            )


class TenantMix:
    """A validated tenant set plus the connection-space partition.

    Tenant ``t`` owns the contiguous connection-id block
    ``[offset(t), offset(t) + n_connections(t))``; blocks are laid out in
    declaration order.  ``tenant_of`` inverts the mapping with one binary
    search.
    """

    def __init__(self, tenants: Iterable[TenantClass]) -> None:
        self.tenants: Tuple[TenantClass, ...] = tuple(tenants)
        if not self.tenants:
            raise ValueError("a tenant mix needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        total_share = sum(t.share for t in self.tenants)
        if abs(total_share - 1.0) > 1e-9:
            raise ValueError(
                f"tenant shares must sum to 1, got {total_share:.6f}"
            )
        self._shares = np.array([t.share for t in self.tenants], dtype=float)
        #: Cumulative share edges; the last edge is forced to exactly 1.0
        #: so a uniform draw in [0, 1) always lands in some tenant.
        self._cum_shares = np.cumsum(self._shares)
        self._cum_shares[-1] = 1.0
        counts = np.array([t.n_connections for t in self.tenants], dtype=np.int64)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))

    @property
    def names(self) -> List[str]:
        return [t.name for t in self.tenants]

    @property
    def total_connections(self) -> int:
        return int(self._offsets[-1])

    def offset(self, tenant: int) -> int:
        """First connection id owned by ``tenant``."""
        return int(self._offsets[tenant])

    def tenant_of(self, connection: int) -> int:
        """Index of the tenant owning ``connection``."""
        if not 0 <= connection < self.total_connections:
            raise ValueError(
                f"connection {connection} outside [0, {self.total_connections})"
            )
        return int(np.searchsorted(self._offsets, connection, side="right")) - 1

    def __len__(self) -> int:
        return len(self.tenants)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{t.name}:{t.share:.0%}" for t in self.tenants
        )
        return f"<TenantMix {parts}>"


class TenantConnectionPool(ConnectionPool):
    """Connection sampling over a tenant mix, one uniform draw each.

    Each draw ``u ~ U[0, 1)`` is consumed twice by inverse-CDF: the
    tenant is ``searchsorted(cum_shares, u)``, and the residual
    ``v = (u - lo) / share`` -- itself uniform in [0, 1) -- picks the
    flow inside the tenant through the tenant's own Zipf inverse CDF
    (or a plain scaling for uniform tenants).  Consuming exactly one
    stream value per request keeps batched sampling bit-identical to
    scalar sampling, the contract the load generator's prefetch relies
    on.
    """

    def __init__(self, mix: Union[TenantMix, Sequence[TenantClass]]) -> None:
        if not isinstance(mix, TenantMix):
            mix = TenantMix(mix)
        self.mix = mix
        self.n_connections = mix.total_connections
        self.zipf_s = 0.0  # per-tenant skew lives in the mix
        self._weights = None  # base-class uniform marker (unused paths)
        #: Per-tenant cumulative flow-popularity CDF (None = uniform).
        self._tenant_cdf: List[object] = []
        for t in mix.tenants:
            if t.zipf_s == 0.0:
                self._tenant_cdf.append(None)
            else:
                ranks = np.arange(1, t.n_connections + 1, dtype=float)
                weights = ranks**-t.zipf_s
                self._tenant_cdf.append(np.cumsum(weights / weights.sum()))

    def _flows_from_uniform(
        self, tenant: int, v: np.ndarray
    ) -> np.ndarray:
        """Map uniforms in [0, 1) to flow indices within ``tenant``."""
        n = self.mix.tenants[tenant].n_connections
        cdf = self._tenant_cdf[tenant]
        if cdf is None:
            idx = (v * n).astype(np.int64)
        else:
            idx = np.searchsorted(cdf, v, side="right")
        # Float roundoff at the top edge must not escape the block.
        return np.minimum(idx, n - 1)

    def sample_many(self, rng: np.random.Generator, n: int) -> "list[int]":
        u = rng.random(n)
        tenant = np.searchsorted(self.mix._cum_shares, u, side="right")
        lo = self.mix._cum_shares - self.mix._shares
        v = (u - lo[tenant]) / self.mix._shares[tenant]
        out = np.empty(n, dtype=np.int64)
        for t in range(len(self.mix)):
            mask = tenant == t
            if not mask.any():
                continue
            out[mask] = self.mix.offset(t) + self._flows_from_uniform(
                t, v[mask]
            )
        return out.tolist()

    def sample(self, rng: np.random.Generator) -> int:
        return self.sample_many(rng, 1)[0]

    def popularity(self) -> Sequence[float]:
        """Per-connection traffic share, in connection-id order."""
        shares: List[float] = []
        for t, cdf in zip(self.mix.tenants, self._tenant_cdf):
            if cdf is None:
                shares.extend([t.share / t.n_connections] * t.n_connections)
            else:
                pmf = np.diff(np.concatenate(([0.0], cdf)))
                shares.extend((t.share * pmf).tolist())
        return shares


class SuperposedArrivals(ArrivalProcess):
    """The superposition (merge) of several arrival processes.

    Emits the union of the component processes' arrival instants, so a
    tenant mix can combine, say, one diurnal MMPP tenant with Poisson
    background tenants into the single gap stream the load generator
    pulls.  Component draws interleave deterministically on the shared
    stream in next-arrival order, and the internal clock makes batched
    ``next_gaps`` bit-identical to scalar draws.
    """

    def __init__(self, processes: Sequence[ArrivalProcess]) -> None:
        self.processes = list(processes)
        if not self.processes:
            raise ValueError("superposition needs at least one process")
        self._now_ns = 0.0
        self._next_at: List[float] = []

    def next_gap(self, rng: np.random.Generator) -> float:
        if not self._next_at:
            self._next_at = [
                self._now_ns + p.next_gap(rng) for p in self.processes
            ]
        i = min(range(len(self._next_at)), key=self._next_at.__getitem__)
        at = self._next_at[i]
        gap = at - self._now_ns
        self._now_ns = at
        self._next_at[i] = at + self.processes[i].next_gap(rng)
        return gap

    @property
    def mean_rate(self) -> float:
        return sum(p.mean_rate for p in self.processes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SuperposedArrivals of {len(self.processes)}>"


def tenant_slo_summary(
    requests: Sequence[Request], mix: TenantMix
) -> Dict[str, Dict[str, float]]:
    """Per-tenant SLO attainment and latency over finished requests.

    Returns ``{tenant_name: {completed, slo_met, attainment, p50_ns,
    p99_ns}}``.  Attainment is the fraction of the tenant's completed
    requests with latency at or under its ``slo_ns`` (1.0 for a tenant
    that saw no traffic: an idle tenant has no violations).
    """
    # Imported here: the analysis package itself imports the workload
    # package (request records), so a module-scope import would cycle.
    from repro.analysis.metrics import summarize_latencies

    buckets: List[List[Request]] = [[] for _ in mix.tenants]
    for r in requests:
        if r.finished is None:
            continue
        buckets[mix.tenant_of(r.connection)].append(r)
    out: Dict[str, Dict[str, float]] = {}
    for tenant, bucket in zip(mix.tenants, buckets):
        met = sum(1 for r in bucket if r.latency <= tenant.slo_ns)
        lat = summarize_latencies(bucket)
        out[tenant.name] = {
            "completed": len(bucket),
            "slo_met": met,
            "attainment": met / len(bucket) if bucket else 1.0,
            "p50_ns": lat.p50,
            "p99_ns": lat.p99,
        }
    return out
