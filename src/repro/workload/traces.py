"""Trace record and replay.

A trace is the minimal description of an offered workload: per-request
inter-arrival gaps, service times, sizes and connections.  Persisting
traces lets the Fig. 12 replay study feed *identical* request streams
through different configurations, exactly as the paper replays the same
400 K RPCs across migration periods.

Format: NumPy ``.npz`` with parallel arrays.  Human-inspectable via
``numpy.load`` and stable across platforms.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

_REQUIRED_FIELDS = ("gaps_ns", "service_ns", "size_bytes", "connection")


@dataclass
class Trace:
    """Parallel per-request arrays describing an offered workload."""

    gaps_ns: np.ndarray
    service_ns: np.ndarray
    size_bytes: np.ndarray
    connection: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.gaps_ns),
            len(self.service_ns),
            len(self.size_bytes),
            len(self.connection),
        }
        if len(lengths) != 1:
            raise ValueError(f"trace arrays have mismatched lengths: {lengths}")
        if len(self.gaps_ns) == 0:
            raise ValueError("trace is empty")

    def __len__(self) -> int:
        return len(self.gaps_ns)

    @property
    def mean_rate_rps(self) -> float:
        """Average offered arrival rate in requests/second."""
        total_ns = float(self.gaps_ns.sum())
        if total_ns <= 0:
            raise ValueError("trace spans zero time")
        return len(self) / total_ns * 1e9

    @property
    def mean_service_ns(self) -> float:
        return float(self.service_ns.mean())


def build_trace(
    gaps_ns: Sequence[float],
    service_ns: Sequence[float],
    size_bytes: Sequence[int] = (),
    connection: Sequence[int] = (),
) -> Trace:
    """Assemble a :class:`Trace`, filling defaults for optional columns."""
    n = len(gaps_ns)
    sizes = np.asarray(size_bytes if len(size_bytes) else [300] * n, dtype=np.int64)
    conns = np.asarray(connection if len(connection) else list(range(n)), dtype=np.int64)
    return Trace(
        gaps_ns=np.asarray(gaps_ns, dtype=float),
        service_ns=np.asarray(service_ns, dtype=float),
        size_bytes=sizes,
        connection=conns,
    )


def save_trace(path: str, trace: Trace) -> None:
    """Persist a trace to ``path`` (``.npz`` is appended if missing)."""
    np.savez_compressed(
        path,
        gaps_ns=trace.gaps_ns,
        service_ns=trace.service_ns,
        size_bytes=trace.size_bytes,
        connection=trace.connection,
    )


def load_trace(path: str) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        missing = [f for f in _REQUIRED_FIELDS if f not in data]
        if missing:
            raise ValueError(f"trace file {path} is missing fields: {missing}")
        return Trace(
            gaps_ns=data["gaps_ns"],
            service_ns=data["service_ns"],
            size_bytes=data["size_bytes"],
            connection=data["connection"],
        )
