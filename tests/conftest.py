"""Shared fixtures for the test suite."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def streams():
    """Deterministic random streams with a fixed master seed."""
    return RandomStreams(12345)


def make_request(req_id=0, arrival=0.0, service_time=1000.0, **kwargs):
    """Convenience request constructor for unit tests."""
    from repro.workload.request import Request

    return Request(req_id=req_id, arrival=arrival, service_time=service_time,
                   **kwargs)
